//! Parameterised DSP workload kernels for the FPFA mapping flow.
//!
//! The paper motivates the FPFA with the word-level DSP kernels of 3G/4G
//! wireless terminals (FIR filtering, correlation, transforms). This crate
//! generates those kernels as C-subset sources, together with deterministic
//! input data, so that every experiment in the benchmark harness runs on the
//! same workloads:
//!
//! * [`fir`] — the paper's FIR example (Section V), parameterised by tap
//!   count;
//! * [`dot_product`], [`vector_scale_add`] — inner products and saxpy;
//! * [`iir_biquad`] — a direct-form-I biquad section;
//! * [`moving_average`], [`horner`], [`power_sum`] — sliding windows and
//!   polynomial evaluation;
//! * [`fft_butterfly_stage`] — one radix-2 butterfly stage on interleaved
//!   real/imaginary arrays;
//! * [`dct4`] — a 4-point DCT-II with fixed-point constant coefficients;
//! * [`matmul`] — small dense matrix multiplication;
//! * [`conv2d_3x3`] — a 3×3 convolution over a small image.
//!
//! [`registry`] returns the default benchmark suite used by the experiment
//! tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;

pub use kernels::{
    conv2d_3x3, dct4, dot_product, fft_butterfly_stage, fir, horner, iir_biquad, matmul,
    moving_average, multi_tile_registry, power_sum, registry, test_signal, vector_scale_add,
    Kernel,
};
