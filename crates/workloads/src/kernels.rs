//! Kernel generators.

use std::fmt;
use std::fmt::Write as _;

/// A benchmark kernel: C-subset source plus deterministic input data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Kernel {
    /// Short kernel name (used as a table row label).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// C-subset source text for the frontend.
    pub source: String,
    /// Input arrays: `(array name, contents)`. The contents are loaded at the
    /// array's base address as assigned by the frontend.
    pub arrays: Vec<(String, Vec<i64>)>,
    /// Scalar kernel inputs by name.
    pub scalars: Vec<(String, i64)>,
}

impl Kernel {
    fn new(name: impl Into<String>, description: impl Into<String>, source: String) -> Self {
        Kernel {
            name: name.into(),
            description: description.into(),
            source,
            arrays: Vec::new(),
            scalars: Vec::new(),
        }
    }

    fn with_array(mut self, name: &str, values: Vec<i64>) -> Self {
        self.arrays.push((name.to_string(), values));
        self
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {}", self.name, self.description)
    }
}

/// Deterministic pseudo-data: small signed values without randomness so every
/// run of every experiment sees identical inputs.  Exported because every
/// tool that simulates a mapped kernel (`fpfa-map --simulate`, the serving
/// daemon's `simulate` knob, the benches) must fill arrays with the *same*
/// signal, or their outputs and checksums silently diverge.
pub fn test_signal(len: usize, phase: i64) -> Vec<i64> {
    (0..len as i64)
        .map(|i| ((i * 7 + phase * 3) % 13) - 6)
        .collect()
}

/// The paper's FIR example (Section V), parameterised by the number of taps.
pub fn fir(taps: usize) -> Kernel {
    let source = format!(
        r#"
        void main() {{
            int a[{taps}];
            int c[{taps}];
            int sum;
            int i;
            sum = 0;
            i = 0;
            while (i < {taps}) {{
                sum = sum + a[i] * c[i];
                i = i + 1;
            }}
        }}
        "#
    );
    Kernel::new(
        format!("fir{taps}"),
        format!("{taps}-tap FIR inner product (the paper's Section V example)"),
        source,
    )
    .with_array("a", test_signal(taps, 0))
    .with_array("c", test_signal(taps, 1))
}

/// Plain dot product of two vectors.
pub fn dot_product(n: usize) -> Kernel {
    let source = format!(
        r#"
        void main() {{
            int x[{n}];
            int y[{n}];
            int acc;
            int i;
            acc = 0;
            for (i = 0; i < {n}; i = i + 1) {{
                acc = acc + x[i] * y[i];
            }}
        }}
        "#
    );
    Kernel::new(
        format!("dot{n}"),
        format!("dot product of two {n}-element vectors"),
        source,
    )
    .with_array("x", test_signal(n, 2))
    .with_array("y", test_signal(n, 3))
}

/// `y[i] = alpha * x[i] + y[i]` (saxpy) with a compile-time alpha.
pub fn vector_scale_add(n: usize, alpha: i64) -> Kernel {
    let source = format!(
        r#"
        void main() {{
            int x[{n}];
            int y[{n}];
            int i;
            for (i = 0; i < {n}; i = i + 1) {{
                y[i] = {alpha} * x[i] + y[i];
            }}
        }}
        "#
    );
    Kernel::new(
        format!("saxpy{n}"),
        format!("y = {alpha}*x + y over {n} elements"),
        source,
    )
    .with_array("x", test_signal(n, 4))
    .with_array("y", test_signal(n, 5))
}

/// A direct-form-I IIR biquad applied to a block of samples.
///
/// Coefficients are fixed small integers (this is a dataflow benchmark, not a
/// numerically meaningful filter).
pub fn iir_biquad(samples: usize) -> Kernel {
    let n = samples;
    let source = format!(
        r#"
        void main() {{
            int x[{n}];
            int y[{n}];
            int i;
            int x1;
            int x2;
            int y1;
            int y2;
            int acc;
            x1 = 0; x2 = 0; y1 = 0; y2 = 0;
            for (i = 0; i < {n}; i = i + 1) {{
                acc = 3 * x[i] + 2 * x1 + x2 - 2 * y1 - y2;
                y[i] = acc;
                x2 = x1;
                x1 = x[i];
                y2 = y1;
                y1 = acc;
            }}
        }}
        "#
    );
    Kernel::new(
        format!("iir{n}"),
        format!("direct-form-I biquad over {n} samples"),
        source,
    )
    .with_array("x", test_signal(n, 6))
}

/// Sliding-window moving average (window of 4, integer arithmetic).
pub fn moving_average(n: usize) -> Kernel {
    let source = format!(
        r#"
        void main() {{
            int x[{n}];
            int y[{n}];
            int i;
            for (i = 3; i < {n}; i = i + 1) {{
                y[i] = (x[i] + x[i - 1] + x[i - 2] + x[i - 3]) / 4;
            }}
        }}
        "#
    );
    Kernel::new(
        format!("mavg{n}"),
        format!("window-4 moving average over {n} samples"),
        source,
    )
    .with_array("x", test_signal(n, 7))
}

/// Horner evaluation of a fixed polynomial at every element of a vector.
pub fn horner(n: usize, degree: usize) -> Kernel {
    // Build the Horner expression ((...(c_d*x + c_{d-1})*x + ...) + c_0).
    let coeffs: Vec<i64> = (0..=degree as i64).map(|i| (i % 5) - 2).collect();
    let mut expr = format!("{}", coeffs[degree]);
    for k in (0..degree).rev() {
        expr = format!("({expr}) * x[i] + {}", coeffs[k]);
    }
    let source = format!(
        r#"
        void main() {{
            int x[{n}];
            int y[{n}];
            int i;
            for (i = 0; i < {n}; i = i + 1) {{
                y[i] = {expr};
            }}
        }}
        "#
    );
    Kernel::new(
        format!("horner{n}x{degree}"),
        format!("degree-{degree} polynomial evaluated at {n} points (Horner)"),
        source,
    )
    .with_array("x", test_signal(n, 8))
}

/// Sum of squares and cubes (exercises deep multiply chains).
pub fn power_sum(n: usize) -> Kernel {
    let source = format!(
        r#"
        void main() {{
            int x[{n}];
            int squares;
            int cubes;
            int i;
            squares = 0;
            cubes = 0;
            for (i = 0; i < {n}; i = i + 1) {{
                squares = squares + x[i] * x[i];
                cubes = cubes + x[i] * x[i] * x[i];
            }}
        }}
        "#
    );
    Kernel::new(
        format!("powsum{n}"),
        format!("sum of squares and cubes over {n} elements"),
        source,
    )
    .with_array("x", test_signal(n, 9))
}

/// One radix-2 butterfly stage over `pairs` complex pairs, with fixed
/// twiddle factors (integer approximation).
pub fn fft_butterfly_stage(pairs: usize) -> Kernel {
    let n = pairs * 2;
    let source = format!(
        r#"
        void main() {{
            int re[{n}];
            int im[{n}];
            int outre[{n}];
            int outim[{n}];
            int i;
            int tr;
            int ti;
            for (i = 0; i < {pairs}; i = i + 1) {{
                tr = re[i + {pairs}] * 3 - im[i + {pairs}] * 2;
                ti = re[i + {pairs}] * 2 + im[i + {pairs}] * 3;
                outre[i] = re[i] + tr;
                outim[i] = im[i] + ti;
                outre[i + {pairs}] = re[i] - tr;
                outim[i + {pairs}] = im[i] - ti;
            }}
        }}
        "#
    );
    Kernel::new(
        format!("fft{n}"),
        format!("one radix-2 butterfly stage over {n} complex points"),
        source,
    )
    .with_array("re", test_signal(n, 10))
    .with_array("im", test_signal(n, 11))
}

/// A 4-point DCT-II with fixed-point coefficients (scaled by 64).
pub fn dct4(blocks: usize) -> Kernel {
    let n = blocks * 4;
    let mut body = String::new();
    for b in 0..blocks {
        let base = b * 4;
        let _ = writeln!(
            body,
            "            y[{o0}] = (x[{i0}] + x[{i1}] + x[{i2}] + x[{i3}]) * 32;",
            o0 = base,
            i0 = base,
            i1 = base + 1,
            i2 = base + 2,
            i3 = base + 3
        );
        let _ = writeln!(
            body,
            "            y[{o1}] = x[{i0}] * 59 + x[{i1}] * 24 - x[{i2}] * 24 - x[{i3}] * 59;",
            o1 = base + 1,
            i0 = base,
            i1 = base + 1,
            i2 = base + 2,
            i3 = base + 3
        );
        let _ = writeln!(
            body,
            "            y[{o2}] = (x[{i0}] - x[{i1}] - x[{i2}] + x[{i3}]) * 32;",
            o2 = base + 2,
            i0 = base,
            i1 = base + 1,
            i2 = base + 2,
            i3 = base + 3
        );
        let _ = writeln!(
            body,
            "            y[{o3}] = x[{i0}] * 24 - x[{i1}] * 59 + x[{i2}] * 59 - x[{i3}] * 24;",
            o3 = base + 3,
            i0 = base,
            i1 = base + 1,
            i2 = base + 2,
            i3 = base + 3
        );
    }
    let source = format!(
        r#"
        void main() {{
            int x[{n}];
            int y[{n}];
{body}        }}
        "#
    );
    Kernel::new(
        format!("dct4x{blocks}"),
        format!("{blocks} block(s) of 4-point DCT-II, fixed-point coefficients"),
        source,
    )
    .with_array("x", test_signal(n, 12))
}

/// Dense matrix multiplication `C = A * B` for small square matrices.
pub fn matmul(n: usize) -> Kernel {
    let elements = n * n;
    let source = format!(
        r#"
        void main() {{
            int a[{elements}];
            int b[{elements}];
            int c[{elements}];
            int i;
            int j;
            int k;
            int acc;
            for (i = 0; i < {n}; i = i + 1) {{
                for (j = 0; j < {n}; j = j + 1) {{
                    acc = 0;
                    for (k = 0; k < {n}; k = k + 1) {{
                        acc = acc + a[i * {n} + k] * b[k * {n} + j];
                    }}
                    c[i * {n} + j] = acc;
                }}
            }}
        }}
        "#
    );
    Kernel::new(
        format!("matmul{n}"),
        format!("{n}x{n} dense matrix multiplication"),
        source,
    )
    .with_array("a", test_signal(elements, 13))
    .with_array("b", test_signal(elements, 14))
}

/// 3×3 convolution over a `width`×`height` image with a fixed kernel.
pub fn conv2d_3x3(width: usize, height: usize) -> Kernel {
    let pixels = width * height;
    let out_w = width - 2;
    let out_h = height - 2;
    let out_pixels = out_w * out_h;
    let source = format!(
        r#"
        void main() {{
            int img[{pixels}];
            int out[{out_pixels}];
            int r;
            int c;
            int acc;
            for (r = 0; r < {out_h}; r = r + 1) {{
                for (c = 0; c < {out_w}; c = c + 1) {{
                    acc = img[r * {width} + c] - 2 * img[r * {width} + c + 1] + img[r * {width} + c + 2];
                    acc = acc + 2 * img[(r + 1) * {width} + c] + 4 * img[(r + 1) * {width} + c + 1] + 2 * img[(r + 1) * {width} + c + 2];
                    acc = acc + img[(r + 2) * {width} + c] - 2 * img[(r + 2) * {width} + c + 1] + img[(r + 2) * {width} + c + 2];
                    out[r * {out_w} + c] = acc;
                }}
            }}
        }}
        "#
    );
    Kernel::new(
        format!("conv{width}x{height}"),
        format!("3x3 convolution over a {width}x{height} image"),
        source,
    )
    .with_array("img", test_signal(pixels, 15))
}

/// The default benchmark suite used by the experiment tables: one
/// representative instance of every kernel family. The first twelve are
/// sized so that the mapped programs stay comfortably inside one tile; the
/// last three (a 64-tap FIR, a 32-point FFT butterfly stage and an 8×8
/// convolution) carry far more parallelism than five ALUs can exploit and
/// exist to exercise the multi-tile partitioner.
pub fn registry() -> Vec<Kernel> {
    vec![
        fir(5),
        fir(16),
        dot_product(8),
        vector_scale_add(8, 3),
        iir_biquad(6),
        moving_average(10),
        horner(6, 4),
        power_sum(6),
        fft_butterfly_stage(4),
        dct4(2),
        matmul(3),
        conv2d_3x3(5, 5),
        fir(64),
        fft_butterfly_stage(16),
        conv2d_3x3(8, 8),
    ]
}

/// The kernels of [`registry`] that exceed one tile's worth of parallelism
/// (the multi-tile acceptance workloads).
pub fn multi_tile_registry() -> Vec<Kernel> {
    vec![fir(64), fft_butterfly_stage(16), conv2d_3x3(8, 8)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfa_cdfg::interp::Interpreter;
    use fpfa_cdfg::Value;

    /// Compiles a kernel and runs its CDFG on the kernel's data.
    fn run_kernel(kernel: &Kernel) -> fpfa_cdfg::interp::RunResult {
        let program = fpfa_frontend::compile(&kernel.source)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", kernel.name));
        let array_refs: Vec<(&str, &[i64])> = kernel
            .arrays
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
            .collect();
        let state = fpfa_frontend::initial_state(&program.layout, &array_refs);
        let mut interp = Interpreter::new(&program.cdfg);
        interp.bind("mem", Value::State(state));
        for (name, value) in &kernel.scalars {
            interp.bind(name.clone(), Value::Word(*value));
        }
        interp
            .run()
            .unwrap_or_else(|e| panic!("{} failed to execute: {e}", kernel.name))
    }

    #[test]
    fn every_registry_kernel_compiles_and_runs() {
        for kernel in registry() {
            let result = run_kernel(&kernel);
            assert!(!result.is_empty(), "{} produced no outputs", kernel.name);
        }
    }

    #[test]
    fn fir_matches_a_direct_computation() {
        let kernel = fir(5);
        let result = run_kernel(&kernel);
        let a = &kernel.arrays[0].1;
        let c = &kernel.arrays[1].1;
        let expected: i64 = a.iter().zip(c.iter()).map(|(x, y)| x * y).sum();
        assert_eq!(result.word("sum"), Some(expected));
    }

    #[test]
    fn dot_product_matches_a_direct_computation() {
        let kernel = dot_product(8);
        let result = run_kernel(&kernel);
        let x = &kernel.arrays[0].1;
        let y = &kernel.arrays[1].1;
        let expected: i64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        assert_eq!(result.word("acc"), Some(expected));
    }

    #[test]
    fn saxpy_writes_every_output_element() {
        let kernel = vector_scale_add(8, 3);
        let program = fpfa_frontend::compile(&kernel.source).unwrap();
        let result = run_kernel(&kernel);
        let mem = result.state("mem").unwrap();
        let x = &kernel.arrays[0].1;
        let y = &kernel.arrays[1].1;
        let y_base = program.layout.array("y").unwrap().base;
        for i in 0..8 {
            assert_eq!(mem.fetch(y_base + i as i64), Some(3 * x[i] + y[i]));
        }
    }

    #[test]
    fn matmul_matches_a_direct_computation() {
        let n = 3usize;
        let kernel = matmul(n);
        let program = fpfa_frontend::compile(&kernel.source).unwrap();
        let result = run_kernel(&kernel);
        let mem = result.state("mem").unwrap();
        let a = &kernel.arrays[0].1;
        let b = &kernel.arrays[1].1;
        let c_base = program.layout.array("c").unwrap().base;
        for i in 0..n {
            for j in 0..n {
                let expected: i64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                assert_eq!(
                    mem.fetch(c_base + (i * n + j) as i64),
                    Some(expected),
                    "c[{i}][{j}]"
                );
            }
        }
    }

    #[test]
    fn moving_average_matches_a_direct_computation() {
        let kernel = moving_average(10);
        let program = fpfa_frontend::compile(&kernel.source).unwrap();
        let result = run_kernel(&kernel);
        let mem = result.state("mem").unwrap();
        let x = &kernel.arrays[0].1;
        let y_base = program.layout.array("y").unwrap().base;
        for i in 3..10usize {
            let expected = (x[i] + x[i - 1] + x[i - 2] + x[i - 3]) / 4;
            assert_eq!(mem.fetch(y_base + i as i64), Some(expected));
        }
    }

    #[test]
    fn conv2d_output_size_is_correct() {
        let kernel = conv2d_3x3(5, 5);
        let program = fpfa_frontend::compile(&kernel.source).unwrap();
        assert_eq!(program.layout.array("out").unwrap().len, 9);
        run_kernel(&kernel);
    }

    #[test]
    fn kernel_names_are_unique() {
        let names: Vec<String> = registry().into_iter().map(|k| k.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn display_mentions_name_and_description() {
        let k = fir(5);
        assert!(k.to_string().contains("fir5"));
        assert!(k.to_string().contains("FIR"));
    }
}
