//! Property tests for the exposition formats: any registered metric set must
//! render valid Prometheus text and JSON that round-trips, and concurrent
//! recording must never lose counts.

use std::thread;

use fpfa_obs::{MetricValue, Registry, Snapshot, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Decl {
    Counter(u64),
    Gauge(u64),
    Histogram(Vec<u64>),
}

fn decl_strategy() -> impl Strategy<Value = Decl> {
    prop_oneof![
        (0u64..1_000_000).prop_map(Decl::Counter),
        (0u64..1_000_000).prop_map(Decl::Gauge),
        prop::collection::vec(0u64..5_000_000, 0..8).prop_map(Decl::Histogram),
    ]
}

fn name_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("serve"),
            Just("cache"),
            Just("map"),
            Just("latency"),
            Just("queue.wait"),
            Just("9weird"),
            Just("p99"),
        ],
        1..3,
    )
    .prop_map(|parts| parts.join("."))
}

fn labels_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(
        (
            prop_oneof![Just("shard"), Just("outcome"), Just("verb")],
            prop_oneof![
                Just("0".to_string()),
                Just("ok".to_string()),
                Just("l0".to_string()),
                Just("with \"quotes\"".to_string()),
                Just("back\\slash\nnewline".to_string()),
            ],
        )
            .prop_map(|(k, v)| (k.to_string(), v)),
        0..3,
    )
}

type MetricDecl = (String, Vec<(String, String)>, Decl);

fn build_registry(decls: &[MetricDecl]) -> Registry {
    let reg = Registry::new();
    for (name, labels, decl) in decls {
        let labels: Vec<(&str, &str)> = labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        match decl {
            Decl::Counter(v) => reg.counter(name, &labels).add(*v),
            Decl::Gauge(v) => reg.gauge(name, &labels).set(*v),
            Decl::Histogram(samples) => {
                let h = reg.histogram(name, &labels);
                for &s in samples {
                    h.record(s);
                }
            }
        }
    }
    reg
}

proptest! {
    #[test]
    fn json_roundtrips_for_any_metric_set(
        decls in prop::collection::vec(
            (name_strategy(), labels_strategy(), decl_strategy()),
            0..12,
        )
    ) {
        // Same (name, labels) may repeat with a different instrument type;
        // keep the first declaration per key so registration stays
        // homogeneous, and merge repeats of the same type like real callers
        // would.
        let mut seen: Vec<(String, Vec<(String, String)>)> = Vec::new();
        let mut kept = Vec::new();
        for (name, mut labels, decl) in decls {
            labels.sort();
            labels.dedup_by(|a, b| a.0 == b.0);
            let key = (name.clone(), labels.clone());
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            kept.push((name, labels, decl));
        }
        let reg = build_registry(&kept);
        let snap = reg.snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).expect("snapshot JSON parses");
        prop_assert_eq!(parsed, snap);
    }

    #[test]
    fn prometheus_text_is_well_formed(
        decls in prop::collection::vec(
            (name_strategy(), labels_strategy(), decl_strategy()),
            0..12,
        )
    ) {
        let mut seen: Vec<(String, Vec<(String, String)>)> = Vec::new();
        let mut kept = Vec::new();
        for (name, mut labels, decl) in decls {
            labels.sort();
            labels.dedup_by(|a, b| a.0 == b.0);
            let key = (name.clone(), labels.clone());
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            kept.push((name, labels, decl));
        }
        let reg = build_registry(&kept);
        let text = reg.render_prometheus();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let family = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                prop_assert!(is_valid_metric_name(family), "bad family `{}`", family);
                prop_assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "bad type `{}`", kind
                );
                prop_assert!(parts.next().is_none(), "trailing tokens in `{}`", line);
                continue;
            }
            // Sample line: name[{labels}] value
            let space = line.rfind(' ').expect("sample line has a value");
            let (series, value) = line.split_at(space);
            prop_assert!(
                value[1..].parse::<u64>().is_ok(),
                "sample value not a u64 in `{}`", line
            );
            let name_end = series.find('{').unwrap_or(series.len());
            prop_assert!(
                is_valid_metric_name(&series[..name_end]),
                "bad series name in `{}`", line
            );
            if name_end < series.len() {
                prop_assert!(series.ends_with('}'), "unterminated labels in `{}`", line);
                let body = &series[name_end + 1..series.len() - 1];
                prop_assert!(labels_well_formed(body), "bad labels in `{}`", line);
            }
        }
    }
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates the inside of a `{...}` label block: `key="value",...` with
/// `\\`, `\"` and `\n` as the only escapes.
fn labels_well_formed(body: &str) -> bool {
    let bytes = body.as_bytes();
    let mut pos = 0;
    loop {
        let key_start = pos;
        while pos < bytes.len() && bytes[pos] != b'=' {
            pos += 1;
        }
        if pos == key_start || pos == bytes.len() {
            return false;
        }
        if !is_valid_metric_name(&body[key_start..pos]) {
            return false;
        }
        pos += 1; // '='
        if pos >= bytes.len() || bytes[pos] != b'"' {
            return false;
        }
        pos += 1;
        loop {
            match bytes.get(pos) {
                Some(b'\\') => {
                    if !matches!(bytes.get(pos + 1), Some(b'\\' | b'"' | b'n')) {
                        return false;
                    }
                    pos += 2;
                }
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(_) => pos += 1,
                None => return false,
            }
        }
        match bytes.get(pos) {
            None => return true,
            Some(b',') => pos += 1,
            Some(_) => return false,
        }
    }
}

#[test]
fn concurrent_recording_never_loses_counts() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 50_000;
    let reg = Registry::new();
    let counter = reg.counter("test.hits", &[]);
    let histogram = reg.histogram("test.latency", &[]);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = counter.clone();
            let histogram = histogram.clone();
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    // Snapshot concurrently with the writers to exercise the lock split.
    let reg_reader = reg.clone();
    let reader = thread::spawn(move || {
        for _ in 0..50 {
            let _ = reg_reader.render_prometheus();
            let _ = reg_reader.render_json();
        }
    });
    for handle in handles {
        handle.join().expect("writer thread");
    }
    reader.join().expect("reader thread");
    assert_eq!(counter.get(), THREADS * PER_THREAD);
    assert_eq!(histogram.count(), THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS * PER_THREAD).sum();
    assert_eq!(histogram.sum(), expected_sum);
    let snap = reg.snapshot();
    let hits = snap
        .metrics
        .iter()
        .find(|m| m.key.name == "test.hits")
        .expect("registered");
    assert_eq!(hits.value, MetricValue::Counter(THREADS * PER_THREAD));
    let lat = snap
        .metrics
        .iter()
        .find(|m| m.key.name == "test.latency")
        .expect("registered");
    match &lat.value {
        MetricValue::Histogram { buckets, sum } => {
            assert_eq!(buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
            assert_eq!(*sum, expected_sum);
            assert_eq!(buckets.len(), HISTOGRAM_BUCKETS);
        }
        other => panic!("unexpected value {other:?}"),
    }
}
