//! `fpfa-obs` — unified observability for the FPFA flow and serving layer.
//!
//! Three pieces, all std-only and allocation-free on the hot path:
//!
//! - [`metrics`]: a [`Registry`] of typed counters, gauges and power-of-two
//!   histograms under stable dotted names with label sets, recorded with
//!   relaxed atomics and rendered as Prometheus-style text or JSON.
//! - [`trace`]: an RAII [`Span`] API over a bounded ring-buffer
//!   [`TraceSink`], attributing named intervals to a per-request trace id.
//! - [`flight`]: a per-shard [`FlightRecorder`] ring of recent request
//!   summaries, dumped as JSON on drain, on SIGUSR1, or on demand.
//!
//! See `docs/OBSERVABILITY.md` at the repository root for the metric name
//! table, the span taxonomy, and the flight-recorder dump schema.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod trace;

pub use flight::{dump_json, FlightEntry, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{
    bucket_of, quantile_upper_bound, Counter, Gauge, Histogram, MetricKey, MetricSnapshot,
    MetricValue, Registry, Snapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{Span, SpanEvent, TraceSink};
