//! Request tracing: a lightweight span API over a fixed-size ring of events.
//!
//! Spans are cheap by construction: a [`SpanEvent`] is `Copy` (static name,
//! four integers), recording appends to a bounded `VecDeque` behind a mutex
//! that is only touched for *sampled* requests, and the RAII [`Span`] guard
//! measures wall time without any allocation.  The sink keeps the most
//! recent `capacity` events; older events are evicted, which is the point —
//! it answers "where did the last few requests' time go", not "archive
//! everything".

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::json;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One recorded span: a named interval attributed to a trace id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanEvent {
    /// Trace id (derived from the v2 request id).
    pub trace_id: u64,
    /// Static span name from the span taxonomy (e.g. `queue.wait`).
    pub name: &'static str,
    /// Span start, microseconds since the sink's epoch.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

struct SinkInner {
    events: VecDeque<SpanEvent>,
    capacity: usize,
}

/// A shared ring-buffer sink for span events.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<Mutex<SinkInner>>,
    epoch: Instant,
}

impl TraceSink {
    /// Creates a sink retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(SinkInner {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
            })),
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the sink was created; span timestamps are
    /// expressed on this clock.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a completed span directly (for intervals measured externally,
    /// e.g. queue wait reconstructed from enqueue/dequeue stamps).
    pub fn record(&self, event: SpanEvent) {
        let mut inner = lock(&self.inner);
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(event);
    }

    /// Opens an RAII span: the interval from now until the guard drops is
    /// recorded under `name` for `trace_id`.
    pub fn enter(&self, trace_id: u64, name: &'static str) -> Span {
        Span {
            sink: self.clone(),
            trace_id,
            name,
            started: Instant::now(),
            start_us: self.now_us(),
        }
    }

    /// Copies out the retained events, oldest first.
    pub fn recent(&self) -> Vec<SpanEvent> {
        lock(&self.inner).events.iter().copied().collect()
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        lock(&self.inner).events.clear();
    }

    /// Renders the retained events as a JSON array (used by the flight
    /// recorder dump).
    pub fn to_json(&self) -> String {
        let events = self.recent();
        let mut out = String::from("[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"trace_id\":{},\"name\":", ev.trace_id);
            json::escape_into(&mut out, ev.name);
            let _ = write!(
                out,
                ",\"start_us\":{},\"dur_us\":{}}}",
                ev.start_us, ev.dur_us
            );
        }
        out.push(']');
        out
    }
}

/// RAII guard created by [`TraceSink::enter`]; records its span on drop.
pub struct Span {
    sink: TraceSink,
    trace_id: u64,
    name: &'static str,
    started: Instant,
    start_us: u64,
}

impl Span {
    /// Microseconds elapsed since the span was opened.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.sink.record(SpanEvent {
            trace_id: self.trace_id,
            name: self.name,
            start_us: self.start_us,
            dur_us: self.elapsed_us(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raii_span_records_on_drop() {
        let sink = TraceSink::new(8);
        {
            let _span = sink.enter(42, "decode");
        }
        let events = sink.recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace_id, 42);
        assert_eq!(events[0].name, "decode");
    }

    #[test]
    fn ring_evicts_oldest() {
        let sink = TraceSink::new(3);
        for i in 0..5u64 {
            sink.record(SpanEvent {
                trace_id: i,
                name: "x",
                start_us: i,
                dur_us: 1,
            });
        }
        let ids: Vec<u64> = sink.recent().iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn json_render_parses() {
        let sink = TraceSink::new(4);
        sink.record(SpanEvent {
            trace_id: 7,
            name: "queue.wait",
            start_us: 10,
            dur_us: 3,
        });
        let doc = json::parse(&sink.to_json()).expect("valid json");
        let items = doc.as_array().expect("array");
        assert_eq!(items.len(), 1);
        let obj = items[0].as_object().expect("object");
        assert_eq!(obj["trace_id"].as_u64(), Some(7));
        assert_eq!(obj["name"].as_str(), Some("queue.wait"));
    }
}
