//! The metrics registry: typed counters, gauges and histograms under stable
//! dotted names with label sets, recorded lock-free on the hot path and
//! rendered in two exposition formats (Prometheus-style text and JSON).
//!
//! Handles returned by [`Registry`] are cheap `Arc` clones around atomics:
//! recording is one or two relaxed atomic ops and never takes the registry
//! lock.  The lock guards only registration and snapshotting — both cold.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::json::{self, JsonValue};

/// Number of power-of-two histogram buckets; bucket `i` counts samples
/// `< 2^i` (the last bucket absorbs everything larger).
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Returns the bucket index for a sample (same law as the wire histogram in
/// the serving protocol: zero lands in bucket 0, `2^i..2^(i+1)` in `i+1`).
pub fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that can move in both directions (e.g. in-flight requests).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one (saturating via wrapping discipline: callers pair every
    /// `dec` with a prior `inc`).
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistoCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl HistoCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A power-of-two histogram handle; recording is two relaxed atomic adds.
#[derive(Clone)]
pub struct Histogram(Arc<HistoCore>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copies the current bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets().iter().sum()
    }
}

/// A metric's identity: dotted name plus sorted `(key, value)` label pairs.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MetricKey {
    /// Dotted metric name, e.g. `serve.map.latency`.
    pub name: String,
    /// Label pairs, sorted by key for a canonical identity.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

type GaugeFn = Box<dyn Fn() -> u64 + Send + Sync>;

enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    GaugeFn(GaugeFn),
    Histogram(Arc<HistoCore>),
}

struct Entry {
    key: MetricKey,
    instrument: Instrument,
}

/// The value captured for one metric at snapshot time.
#[derive(Clone, PartialEq, Debug)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading (stored or callback).
    Gauge(u64),
    /// Histogram reading: bucket counts and the running sum.
    Histogram {
        /// Per-bucket counts (`buckets[i]` counts samples `< 2^i`).
        buckets: [u64; HISTOGRAM_BUCKETS],
        /// Sum of all recorded samples.
        sum: u64,
    },
}

/// One metric in a [`Snapshot`].
#[derive(Clone, PartialEq, Debug)]
pub struct MetricSnapshot {
    /// The metric's identity.
    pub key: MetricKey,
    /// The captured value.
    pub value: MetricValue,
}

/// A point-in-time capture of every registered metric, sorted by key.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Snapshot {
    /// Captured metrics in canonical (sorted) order.
    pub metrics: Vec<MetricSnapshot>,
}

/// The registry: create via [`Registry::new`], clone freely (shared handle).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

#[derive(Default)]
struct RegistryInner {
    entries: Vec<Entry>,
    index: HashMap<MetricKey, usize>,
}

impl RegistryInner {
    /// Finds or inserts the entry for `key`, building the instrument with
    /// `make` on first registration.  Returns the entry index.
    fn register(&mut self, key: MetricKey, make: impl FnOnce() -> Instrument) -> usize {
        if let Some(&idx) = self.index.get(&key) {
            return idx;
        }
        let idx = self.entries.len();
        self.entries.push(Entry {
            key: key.clone(),
            instrument: make(),
        });
        self.index.insert(key, idx);
        idx
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter under `name` with `labels`.
    ///
    /// Registration is idempotent: the same name + label set always yields a
    /// handle onto the same underlying cell.  Registering a name that already
    /// exists with a different instrument type panics — metric families must
    /// be homogeneous.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut inner = lock(&self.inner);
        let idx = inner.register(key, || Instrument::Counter(Arc::new(AtomicU64::new(0))));
        match &inner.entries[idx].instrument {
            Instrument::Counter(cell) => Counter(Arc::clone(cell)),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Registers (or retrieves) a gauge under `name` with `labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut inner = lock(&self.inner);
        let idx = inner.register(key, || Instrument::Gauge(Arc::new(AtomicU64::new(0))));
        match &inner.entries[idx].instrument {
            Instrument::Gauge(cell) => Gauge(Arc::clone(cell)),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Registers a callback gauge evaluated at snapshot time.  Useful for
    /// pulling counters owned by another subsystem without coupling it to
    /// this crate.  Re-registering the same key replaces the callback.
    pub fn gauge_fn(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        let key = MetricKey::new(name, labels);
        let mut inner = lock(&self.inner);
        let idx = inner.register(key, || Instrument::GaugeFn(Box::new(|| 0)));
        match &mut inner.entries[idx].instrument {
            Instrument::GaugeFn(slot) => *slot = Box::new(f),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Registers (or retrieves) a power-of-two histogram under `name`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut inner = lock(&self.inner);
        let idx = inner.register(key, || Instrument::Histogram(Arc::new(HistoCore::new())));
        match &inner.entries[idx].instrument {
            Instrument::Histogram(core) => Histogram(Arc::clone(core)),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Captures every registered metric, sorted by key for deterministic
    /// output.
    pub fn snapshot(&self) -> Snapshot {
        let inner = lock(&self.inner);
        let mut metrics: Vec<MetricSnapshot> = inner
            .entries
            .iter()
            .map(|entry| {
                let value = match &entry.instrument {
                    Instrument::Counter(cell) => MetricValue::Counter(cell.load(Ordering::Relaxed)),
                    Instrument::Gauge(cell) => MetricValue::Gauge(cell.load(Ordering::Relaxed)),
                    Instrument::GaugeFn(f) => MetricValue::Gauge(f()),
                    Instrument::Histogram(core) => MetricValue::Histogram {
                        buckets: std::array::from_fn(|i| core.buckets[i].load(Ordering::Relaxed)),
                        sum: core.sum.load(Ordering::Relaxed),
                    },
                };
                MetricSnapshot {
                    key: entry.key.clone(),
                    value,
                }
            })
            .collect();
        metrics.sort_by(|a, b| a.key.cmp(&b.key));
        Snapshot { metrics }
    }

    /// Zeroes every counter and histogram.  Gauges and callback gauges are
    /// left alone — they describe current state (open connections, cache
    /// occupancy), not accumulated traffic.
    pub fn reset(&self) {
        let inner = lock(&self.inner);
        for entry in &inner.entries {
            match &entry.instrument {
                Instrument::Counter(cell) => cell.store(0, Ordering::Relaxed),
                Instrument::Gauge(_) | Instrument::GaugeFn(_) => {}
                Instrument::Histogram(core) => {
                    for bucket in &core.buckets {
                        bucket.store(0, Ordering::Relaxed);
                    }
                    core.sum.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Renders the current state as Prometheus-style text.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// Renders the current state as JSON.
    pub fn render_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// Maps a dotted metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots become underscores, anything else
/// outside the grammar is folded to `_`, and a leading digit gains a `_`
/// prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else if ok {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn prometheus_label_value(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn prometheus_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&prometheus_name(k));
        out.push('=');
        prometheus_label_value(out, v);
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        prometheus_label_value(out, v);
    }
    out.push('}');
}

/// Upper bound (exclusive power of two) such that at least fraction `q` of
/// the recorded samples fall below it; `None` when the histogram is empty or
/// the quantile lands in the unbounded last bucket.
pub fn quantile_upper_bound(buckets: &[u64; HISTOGRAM_BUCKETS], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let threshold = (total as f64 * q).ceil() as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= threshold.max(1) {
            if i == HISTOGRAM_BUCKETS - 1 {
                return None;
            }
            return Some(1u64 << i);
        }
    }
    None
}

impl Snapshot {
    /// Renders as Prometheus-style text: one `# TYPE` line per family, then
    /// one sample line per labelled series.  Histograms expose cumulative
    /// `_bucket` lines (`le` = exclusive power-of-two upper bound), `_sum`,
    /// `_count`, and — when non-empty — synthetic `_p50`/`_p99`
    /// quantile-upper-bound gauge lines.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for metric in &self.metrics {
            let family = prometheus_name(&metric.key.name);
            match &metric.value {
                MetricValue::Counter(v) => {
                    if family != last_family {
                        let _ = writeln!(out, "# TYPE {family} counter");
                        last_family = family.clone();
                    }
                    out.push_str(&family);
                    prometheus_labels(&mut out, &metric.key.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::Gauge(v) => {
                    if family != last_family {
                        let _ = writeln!(out, "# TYPE {family} gauge");
                        last_family = family.clone();
                    }
                    out.push_str(&family);
                    prometheus_labels(&mut out, &metric.key.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::Histogram { buckets, sum } => {
                    if family != last_family {
                        let _ = writeln!(out, "# TYPE {family} histogram");
                        last_family = family.clone();
                    }
                    let mut cumulative = 0u64;
                    for (i, &count) in buckets.iter().enumerate() {
                        cumulative += count;
                        let le = if i == HISTOGRAM_BUCKETS - 1 {
                            "+Inf".to_string()
                        } else {
                            (1u64 << i).to_string()
                        };
                        let _ = write!(out, "{family}_bucket");
                        prometheus_labels(&mut out, &metric.key.labels, Some(("le", &le)));
                        let _ = writeln!(out, " {cumulative}");
                    }
                    let _ = write!(out, "{family}_sum");
                    prometheus_labels(&mut out, &metric.key.labels, None);
                    let _ = writeln!(out, " {sum}");
                    let _ = write!(out, "{family}_count");
                    prometheus_labels(&mut out, &metric.key.labels, None);
                    let _ = writeln!(out, " {cumulative}");
                    if cumulative > 0 {
                        for (suffix, q) in [("_p50", 0.5), ("_p99", 0.99)] {
                            // The last bucket is unbounded; fall back to the
                            // largest finite bound so the line stays nonzero.
                            let bound = quantile_upper_bound(buckets, q)
                                .unwrap_or(1u64 << (HISTOGRAM_BUCKETS - 1));
                            let _ = write!(out, "{family}{suffix}");
                            prometheus_labels(&mut out, &metric.key.labels, None);
                            let _ = writeln!(out, " {bound}");
                        }
                    }
                }
            }
        }
        out
    }

    /// Renders as JSON: `{"metrics":[{name, labels, type, ...}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, metric) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::escape_into(&mut out, &metric.key.name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in metric.key.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::escape_into(&mut out, k);
                out.push(':');
                json::escape_into(&mut out, v);
            }
            out.push('}');
            match &metric.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"type\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, ",\"type\":\"gauge\",\"value\":{v}");
                }
                MetricValue::Histogram { buckets, sum } => {
                    let _ = write!(out, ",\"type\":\"histogram\",\"sum\":{sum},\"buckets\":[");
                    for (j, b) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`] back into a
    /// snapshot (used by tooling that diffs two scrapes, and by the
    /// round-trip property tests).
    ///
    /// # Errors
    /// A message describing the first structural problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let root = doc.as_object().ok_or("root is not an object")?;
        let metrics_json = root
            .get("metrics")
            .and_then(JsonValue::as_array)
            .ok_or("missing `metrics` array")?;
        let mut metrics = Vec::with_capacity(metrics_json.len());
        for item in metrics_json {
            let obj = item.as_object().ok_or("metric is not an object")?;
            let name = obj
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("metric missing `name`")?
                .to_string();
            let mut labels: Vec<(String, String)> = obj
                .get("labels")
                .and_then(JsonValue::as_object)
                .ok_or("metric missing `labels`")?
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|v| (k.clone(), v.to_string()))
                        .ok_or("label value is not a string")
                })
                .collect::<Result<_, _>>()?;
            labels.sort();
            let kind = obj
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or("metric missing `type`")?;
            let value = match kind {
                "counter" => MetricValue::Counter(
                    obj.get("value")
                        .and_then(JsonValue::as_u64)
                        .ok_or("counter missing `value`")?,
                ),
                "gauge" => MetricValue::Gauge(
                    obj.get("value")
                        .and_then(JsonValue::as_u64)
                        .ok_or("gauge missing `value`")?,
                ),
                "histogram" => {
                    let sum = obj
                        .get("sum")
                        .and_then(JsonValue::as_u64)
                        .ok_or("histogram missing `sum`")?;
                    let raw = obj
                        .get("buckets")
                        .and_then(JsonValue::as_array)
                        .ok_or("histogram missing `buckets`")?;
                    if raw.len() != HISTOGRAM_BUCKETS {
                        return Err(format!("histogram has {} buckets", raw.len()));
                    }
                    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
                    for (slot, item) in buckets.iter_mut().zip(raw) {
                        *slot = item.as_u64().ok_or("bucket is not a number")?;
                    }
                    MetricValue::Histogram { buckets, sum }
                }
                other => return Err(format!("unknown metric type `{other}`")),
            };
            metrics.push(MetricSnapshot {
                key: MetricKey { name, labels },
                value,
            });
        }
        Ok(Snapshot { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let reg = Registry::new();
        let c = reg.counter("serve.accepted", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("serve.in_flight", &[]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        // Idempotent registration returns the same cell.
        assert_eq!(reg.counter("serve.accepted", &[]).get(), 5);
    }

    #[test]
    fn histogram_matches_wire_bucket_law() {
        let h = Registry::new().histogram("serve.map.latency", &[]);
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1 << 30); // clamped to last bucket
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[2], 2);
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 6 + (1 << 30));
    }

    #[test]
    fn gauge_fn_evaluates_at_snapshot() {
        let reg = Registry::new();
        let cell = Arc::new(AtomicU64::new(7));
        let peek = Arc::clone(&cell);
        reg.gauge_fn("cache.entries", &[], move || peek.load(Ordering::Relaxed));
        let find = |snap: &Snapshot| match &snap
            .metrics
            .iter()
            .find(|m| m.key.name == "cache.entries")
            .expect("registered")
            .value
        {
            MetricValue::Gauge(v) => *v,
            other => panic!("unexpected value {other:?}"),
        };
        assert_eq!(find(&reg.snapshot()), 7);
        cell.store(11, Ordering::Relaxed);
        assert_eq!(find(&reg.snapshot()), 11);
    }

    #[test]
    fn reset_zeroes_counters_but_keeps_gauges() {
        let reg = Registry::new();
        let c = reg.counter("serve.accepted", &[]);
        let g = reg.gauge("serve.open", &[]);
        let h = reg.histogram("serve.lat", &[]);
        c.add(9);
        g.set(3);
        h.record(100);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 3);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn prometheus_text_has_expected_lines() {
        let reg = Registry::new();
        reg.counter("serve.served", &[("outcome", "ok")]).add(3);
        let h = reg.histogram("serve.queue.wait", &[]);
        h.record(5);
        h.record(9);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE serve_served counter"));
        assert!(text.contains("serve_served{outcome=\"ok\"} 3"));
        assert!(text.contains("# TYPE serve_queue_wait histogram"));
        assert!(text.contains("serve_queue_wait_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_queue_wait_sum 14"));
        assert!(text.contains("serve_queue_wait_count 2"));
        assert!(text.contains("serve_queue_wait_p99 16"));
    }

    #[test]
    fn empty_histogram_emits_no_quantiles() {
        let reg = Registry::new();
        reg.histogram("serve.queue.wait", &[]);
        let text = reg.render_prometheus();
        assert!(text.contains("serve_queue_wait_count 0"));
        assert!(!text.contains("_p99"));
    }

    #[test]
    fn json_roundtrips() {
        let reg = Registry::new();
        reg.counter("a.b", &[("k", "v with \"quotes\"")]).add(42);
        reg.gauge("c.d", &[]).set(7);
        reg.histogram("e.f", &[("shard", "0")]).record(100);
        let snap = reg.snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).expect("round-trip");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn quantile_bounds_follow_distribution() {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets[3] = 99; // 99 samples < 8
        buckets[10] = 1; // 1 sample in [512, 1024)
        assert_eq!(quantile_upper_bound(&buckets, 0.5), Some(8));
        assert_eq!(quantile_upper_bound(&buckets, 0.999), Some(1 << 10));
        assert_eq!(quantile_upper_bound(&[0; HISTOGRAM_BUCKETS], 0.5), None);
    }
}
