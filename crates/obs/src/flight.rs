//! The flight recorder: a fixed-size ring of recent request summaries so a
//! production incident leaves evidence.
//!
//! Each serving shard owns one [`FlightRecorder`]; every finished request
//! pushes a `Copy` [`FlightEntry`] (trace id, verb, outcome, queue wait,
//! service time, bytes).  The ring is dumped as JSON on graceful drain, on
//! SIGUSR1, and on demand through the `dump` protocol verb.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

use crate::json;

/// Default number of entries retained per shard.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One finished request, as remembered by the flight recorder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlightEntry {
    /// Trace id (the v2 request id).
    pub id: u64,
    /// Request verb (`map`, `batch`, `stats`, ...).
    pub verb: &'static str,
    /// Outcome label (`ok`, `l0`, `error`, `rejected`, ...).
    pub outcome: &'static str,
    /// Time spent queued before a worker picked the job up, in microseconds
    /// (zero for inline/fast-path requests that never queue).
    pub queue_us: u64,
    /// End-to-end service time in microseconds.
    pub e2e_us: u64,
    /// Response bytes written for this request.
    pub bytes: u64,
    /// Completion timestamp, microseconds on the recorder owner's clock.
    pub at_us: u64,
}

/// A bounded ring of [`FlightEntry`] values; `record` is one short
/// uncontended mutex hold (the ring is per shard).
pub struct FlightRecorder {
    inner: Mutex<VecDeque<FlightEntry>>,
    capacity: usize,
}

impl FlightRecorder {
    /// Creates a recorder retaining the most recent `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity,
        }
    }

    /// Records one finished request, evicting the oldest entry when full.
    pub fn record(&self, entry: FlightEntry) {
        let mut ring = lock(&self.inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Copies out the retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        lock(&self.inner).iter().copied().collect()
    }

    /// Drops all retained entries.
    pub fn clear(&self) {
        lock(&self.inner).clear();
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

fn entry_json(out: &mut String, entry: &FlightEntry) {
    let _ = write!(out, "{{\"id\":{},\"verb\":", entry.id);
    json::escape_into(out, entry.verb);
    out.push_str(",\"outcome\":");
    json::escape_into(out, entry.outcome);
    let _ = write!(
        out,
        ",\"queue_us\":{},\"e2e_us\":{},\"bytes\":{},\"at_us\":{}}}",
        entry.queue_us, entry.e2e_us, entry.bytes, entry.at_us
    );
}

/// Renders a full flight-recorder dump: per-shard recent entries plus the
/// sampled trace events (pass an empty string to omit them).
///
/// Schema: `{"shards":[{"shard":N,"recent":[entry,...]}],"traces":[...]}`
/// where `traces` is the JSON produced by `TraceSink::to_json`.
pub fn dump_json(shards: &[(usize, Vec<FlightEntry>)], traces_json: &str) -> String {
    let mut out = String::from("{\"shards\":[");
    for (i, (shard, entries)) in shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"shard\":{shard},\"recent\":[");
        for (j, entry) in entries.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            entry_json(&mut out, entry);
        }
        out.push_str("]}");
    }
    out.push_str("],\"traces\":");
    if traces_json.is_empty() {
        out.push_str("[]");
    } else {
        out.push_str(traces_json);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> FlightEntry {
        FlightEntry {
            id,
            verb: "map",
            outcome: "ok",
            queue_us: 5,
            e2e_us: 120,
            bytes: 64,
            at_us: 1_000 + id,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let rec = FlightRecorder::new(2);
        rec.record(entry(1));
        rec.record(entry(2));
        rec.record(entry(3));
        let ids: Vec<u64> = rec.snapshot().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn dump_is_valid_json() {
        let rec = FlightRecorder::new(4);
        rec.record(entry(9));
        let doc = dump_json(&[(0, rec.snapshot())], "");
        let parsed = json::parse(&doc).expect("valid json");
        let root = parsed.as_object().expect("object");
        let shards = root["shards"].as_array().expect("shards");
        assert_eq!(shards.len(), 1);
        let shard = shards[0].as_object().expect("shard object");
        assert_eq!(shard["shard"].as_u64(), Some(0));
        let recent = shard["recent"].as_array().expect("recent");
        assert_eq!(recent.len(), 1);
        assert_eq!(
            recent[0].as_object().expect("entry")["id"].as_u64(),
            Some(9)
        );
        assert_eq!(root["traces"].as_array().map(<[_]>::len), Some(0));
    }
}
