//! A minimal JSON layer: string escaping for the renderers and a small
//! recursive-descent parser for the snapshot round-trip.
//!
//! The workspace has no crates.io access (no serde), and the observability
//! layer only needs the subset of JSON it emits itself: objects, arrays,
//! strings, and unsigned/signed integers.  The parser accepts standard JSON
//! for those shapes (including `\uXXXX` escapes and arbitrary whitespace) and
//! rejects everything else with a positioned error string.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (the subset the observability formats use).
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// A JSON object; key order is normalised (sorted) by the map.
    Object(BTreeMap<String, JsonValue>),
    /// A JSON array.
    Array(Vec<JsonValue>),
    /// A JSON string.
    String(String),
    /// A JSON number (integral; the formats emit no fractions).
    Number(i128),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The object map, when this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array elements, when this value is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a `u64`, when this value is a non-negative integer in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }
}

/// Appends `value` to `out` as a quoted JSON string with all mandatory
/// escapes (`"` `\` and control characters).
pub fn escape_into(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
/// A human-readable message naming the byte offset of the first problem.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at offset {start}"))?;
        text.parse::<i128>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at offset {start}"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at offset {}", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("bad \\u at offset {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u at offset {}", self.pos))?;
                            // Surrogates never appear in the emitted formats;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips_through_parse() {
        for raw in [
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "tab\tnl\n",
            "ünïcode",
        ] {
            let mut doc = String::new();
            escape_into(&mut doc, raw);
            assert_eq!(parse(&doc).unwrap(), JsonValue::String(raw.to_string()));
        }
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#" {"a": [1, 2, {"b": "c"}], "n": -5, "t": true, "z": null} "#;
        let value = parse(doc).unwrap();
        let map = value.as_object().unwrap();
        assert_eq!(map["n"], JsonValue::Number(-5));
        assert_eq!(map["a"].as_array().unwrap().len(), 3);
        assert_eq!(map["t"], JsonValue::Bool(true));
        assert_eq!(map["z"], JsonValue::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "\"open", "12x", "{\"a\"}", "{} trailing"] {
            assert!(parse(bad).is_err(), "{bad} should not parse");
        }
    }
}
