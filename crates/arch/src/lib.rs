//! Structural model of the FPFA processor tile.
//!
//! Section II of *"Mapping Applications to an FPFA Tile"* describes the
//! target: a tile with **five identical Processing Parts (PPs)** sharing a
//! control unit. Each PP contains
//!
//! * an ALU whose data-path can chain a small number of word operations per
//!   cycle (e.g. a multiply feeding an add),
//! * four input register banks `Ra`, `Rb`, `Rc`, `Rd` of four registers each,
//! * two local memories `MEM1`, `MEM2` of 512 words each.
//!
//! A crossbar switch lets every ALU write its result to any register bank or
//! memory in the tile.
//!
//! This crate models the tile's *structure and capacities* — the register
//! files, memories, crossbar and ALU capability limits that the resource
//! allocator must respect — plus a parameterised energy model. The dynamic
//! behaviour (executing a mapped program cycle by cycle) lives in `fpfa-sim`,
//! and the mapping decisions (which operation runs on which ALU in which
//! cycle) live in `fpfa-core`.
//!
//! # Example
//!
//! ```
//! use fpfa_arch::{TileConfig, Tile};
//!
//! let config = TileConfig::paper();        // the DATE'03 tile
//! assert_eq!(config.num_pps, 5);
//! assert_eq!(config.regs_per_bank, 4);
//! let tile = Tile::new(config);
//! assert_eq!(tile.processing_parts().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod array;
pub mod config;
pub mod crossbar;
pub mod energy;
pub mod error;
pub mod memory;
pub mod pp;
pub mod regbank;
pub mod tile;

pub use alu::{AluCapability, AluClass};
pub use array::{ArrayConfig, TileArray, TileId};
pub use config::TileConfig;
pub use crossbar::Crossbar;
pub use energy::{EnergyModel, EnergyReport, EventCounts};
pub use error::ArchError;
pub use memory::{LocalMemory, MemId, MemRef};
pub use pp::{PpId, ProcessingPart};
pub use regbank::{RegBankName, RegRef, RegisterBank};
pub use tile::Tile;
