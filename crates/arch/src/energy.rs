//! Relative energy model.
//!
//! The paper argues that exploiting *locality of reference* (keeping operands
//! in the small register banks instead of re-reading them from memory) saves
//! energy. We cannot measure the silicon, so we use a parameterised relative
//! model: each architectural event has a cost in arbitrary energy units, with
//! the usual ordering `register access < memory access < crossbar transfer`
//! taken from the CGRA literature. Only *relative* comparisons between two
//! mappings of the same kernel are meaningful.

use std::fmt;

/// Energy cost (arbitrary units) per architectural event.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnergyModel {
    /// Cost of one ALU operation.
    pub alu_op: f64,
    /// Cost of reading one register.
    pub reg_read: f64,
    /// Cost of writing one register.
    pub reg_write: f64,
    /// Cost of reading one local-memory word.
    pub mem_read: f64,
    /// Cost of writing one local-memory word.
    pub mem_write: f64,
    /// Cost of routing one value over the crossbar.
    pub crossbar_transfer: f64,
    /// Cost of routing one value over the inter-tile interconnect (the most
    /// expensive transfer: it leaves the tile).
    pub inter_tile_transfer: f64,
    /// Static cost per executed clock cycle (control unit, clock tree).
    pub cycle_overhead: f64,
}

impl EnergyModel {
    /// Default model: memory accesses are an order of magnitude more
    /// expensive than register accesses.
    pub fn default_model() -> Self {
        EnergyModel {
            alu_op: 1.0,
            reg_read: 0.2,
            reg_write: 0.3,
            mem_read: 2.5,
            mem_write: 3.0,
            crossbar_transfer: 0.6,
            inter_tile_transfer: 4.0,
            cycle_overhead: 0.5,
        }
    }

    /// Computes the total energy of an event census.
    pub fn total(&self, counts: &EventCounts) -> f64 {
        self.alu_op * counts.alu_ops as f64
            + self.reg_read * counts.reg_reads as f64
            + self.reg_write * counts.reg_writes as f64
            + self.mem_read * counts.mem_reads as f64
            + self.mem_write * counts.mem_writes as f64
            + self.crossbar_transfer * counts.crossbar_transfers as f64
            + self.inter_tile_transfer * counts.inter_tile_transfers as f64
            + self.cycle_overhead * counts.cycles as f64
    }

    /// Builds a full report (per-category breakdown plus total).
    pub fn report(&self, counts: EventCounts) -> EnergyReport {
        EnergyReport {
            counts,
            total: self.total(&counts),
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::default_model()
    }
}

/// Census of architectural events over one simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EventCounts {
    /// Executed clock cycles.
    pub cycles: u64,
    /// ALU operations executed.
    pub alu_ops: u64,
    /// Register reads.
    pub reg_reads: u64,
    /// Register writes.
    pub reg_writes: u64,
    /// Local memory reads.
    pub mem_reads: u64,
    /// Local memory writes.
    pub mem_writes: u64,
    /// Values routed over the crossbar.
    pub crossbar_transfers: u64,
    /// Values routed over the inter-tile interconnect.
    pub inter_tile_transfers: u64,
}

impl EventCounts {
    /// Sum of register and memory accesses (reads + writes).
    pub fn total_accesses(&self) -> u64 {
        self.reg_reads + self.reg_writes + self.mem_reads + self.mem_writes
    }

    /// Fraction of operand reads served from registers rather than memory
    /// (the locality-of-reference metric of experiment T2). `None` when no
    /// reads happened.
    pub fn register_hit_rate(&self) -> Option<f64> {
        let reads = self.reg_reads + self.mem_reads;
        if reads == 0 {
            None
        } else {
            Some(self.reg_reads as f64 / reads as f64)
        }
    }
}

/// An event census together with its energy total.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnergyReport {
    /// The architectural event counts.
    pub counts: EventCounts,
    /// Total energy in arbitrary units.
    pub total: f64,
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles {:6}  alu {:6}  reg r/w {:5}/{:5}  mem r/w {:5}/{:5}  xbar {:5}  inter-tile {:5}",
            self.counts.cycles,
            self.counts.alu_ops,
            self.counts.reg_reads,
            self.counts.reg_writes,
            self.counts.mem_reads,
            self.counts.mem_writes,
            self.counts.crossbar_transfers,
            self.counts.inter_tile_transfers
        )?;
        write!(f, "total energy {:.1} units", self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_weighted_sums() {
        let model = EnergyModel::default_model();
        let counts = EventCounts {
            cycles: 10,
            alu_ops: 20,
            reg_reads: 30,
            reg_writes: 10,
            mem_reads: 5,
            mem_writes: 5,
            crossbar_transfers: 8,
            inter_tile_transfers: 3,
        };
        let expected = 1.0 * 20.0
            + 0.2 * 30.0
            + 0.3 * 10.0
            + 2.5 * 5.0
            + 3.0 * 5.0
            + 0.6 * 8.0
            + 4.0 * 3.0
            + 0.5 * 10.0;
        assert!((model.total(&counts) - expected).abs() < 1e-9);
        let report = model.report(counts);
        assert!((report.total - expected).abs() < 1e-9);
        assert!(report.to_string().contains("total energy"));
    }

    #[test]
    fn register_hits_are_cheaper_than_memory_hits() {
        let model = EnergyModel::default_model();
        let from_regs = EventCounts {
            cycles: 10,
            alu_ops: 10,
            reg_reads: 20,
            ..EventCounts::default()
        };
        let from_mem = EventCounts {
            cycles: 10,
            alu_ops: 10,
            mem_reads: 20,
            ..EventCounts::default()
        };
        assert!(model.total(&from_regs) < model.total(&from_mem));
    }

    #[test]
    fn hit_rate_metric() {
        let counts = EventCounts {
            reg_reads: 6,
            mem_reads: 2,
            ..EventCounts::default()
        };
        assert!((counts.register_hit_rate().unwrap() - 0.75).abs() < 1e-9);
        assert_eq!(EventCounts::default().register_hit_rate(), None);
        assert_eq!(counts.total_accesses(), 8);
    }
}
