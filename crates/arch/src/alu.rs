//! ALU capability description.
//!
//! The FPFA ALU (described in detail in the companion architecture papers) is
//! a two-level data-path: a first level that can perform multiplications and
//! other word operations on the four register-bank inputs, and a second level
//! that can combine intermediate results (e.g. a multiply feeding an add, the
//! classic MAC pattern of DSP kernels). The clustering phase of the mapper
//! packs CDFG operations into groups that fit this data-path; the
//! [`AluCapability`] type states what "fits" means.

use std::fmt;

/// Coarse classification of word operations by the ALU level that can execute
/// them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluClass {
    /// Multiplications — executed by the level-1 multiplier array.
    Multiply,
    /// Additive/logical/comparison operations — executable on either level.
    General,
    /// Memory interface operations (`ST`, `FE`, `DEL`) — use the PP's local
    /// memory ports rather than the arithmetic data-path.
    MemoryAccess,
    /// Multiplexer / selection.
    Select,
}

impl fmt::Display for AluClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluClass::Multiply => "multiply",
            AluClass::General => "general",
            AluClass::MemoryAccess => "memory",
            AluClass::Select => "select",
        };
        f.write_str(s)
    }
}

/// What a single ALU can execute within one clock cycle.
///
/// The clustering phase groups dependent CDFG operations into a cluster that
/// one ALU executes in one cycle; a cluster is feasible when it respects these
/// limits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AluCapability {
    /// Maximum number of external word inputs a cluster may consume. The FPFA
    /// ALU reads from its four input register banks, so the default is 4.
    pub max_inputs: usize,
    /// Maximum number of chained (dependent) operations in one cluster — the
    /// depth of the ALU data-path. The default of 2 models the
    /// multiply-accumulate pattern (level-1 multiply feeding a level-2 add).
    pub max_depth: usize,
    /// Maximum total number of operations in one cluster. The default of 3
    /// allows two independent level-1 operations feeding one level-2
    /// operation (e.g. the FFT butterfly `a*w + b`-style groups).
    pub max_ops: usize,
    /// Maximum number of multiplications per cluster (the multiplier array is
    /// the scarce resource).
    pub max_multiplies: usize,
    /// Maximum number of external results a cluster may produce (write-back
    /// ports towards the crossbar).
    pub max_outputs: usize,
    /// Maximum number of memory-access operations (`ST`/`FE`/`DEL`) per
    /// cluster; memory operations occupy a memory port of the PP.
    pub max_memory_ops: usize,
}

impl AluCapability {
    /// Capability of the FPFA ALU as used throughout the paper's flow.
    pub fn paper() -> Self {
        AluCapability {
            max_inputs: 4,
            max_depth: 2,
            max_ops: 3,
            max_multiplies: 2,
            max_outputs: 2,
            max_memory_ops: 2,
        }
    }

    /// A deliberately minimal ALU executing exactly one operation per cycle.
    ///
    /// Used by the "no clustering" ablation baseline.
    pub fn single_op() -> Self {
        AluCapability {
            max_inputs: 4,
            max_depth: 1,
            max_ops: 1,
            max_multiplies: 1,
            max_outputs: 1,
            max_memory_ops: 1,
        }
    }

    /// Checks a cluster summary against the capability.
    ///
    /// Returns `None` when the cluster fits, otherwise a human-readable reason
    /// why it does not.
    pub fn check(
        &self,
        inputs: usize,
        depth: usize,
        ops: usize,
        multiplies: usize,
        outputs: usize,
        memory_ops: usize,
    ) -> Option<String> {
        if inputs > self.max_inputs {
            return Some(format!("{inputs} inputs exceed limit {}", self.max_inputs));
        }
        if depth > self.max_depth {
            return Some(format!("depth {depth} exceeds limit {}", self.max_depth));
        }
        if ops > self.max_ops {
            return Some(format!("{ops} operations exceed limit {}", self.max_ops));
        }
        if multiplies > self.max_multiplies {
            return Some(format!(
                "{multiplies} multiplies exceed limit {}",
                self.max_multiplies
            ));
        }
        if outputs > self.max_outputs {
            return Some(format!(
                "{outputs} outputs exceed limit {}",
                self.max_outputs
            ));
        }
        if memory_ops > self.max_memory_ops {
            return Some(format!(
                "{memory_ops} memory operations exceed limit {}",
                self.max_memory_ops
            ));
        }
        None
    }
}

impl Default for AluCapability {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capability_accepts_mac() {
        let cap = AluCapability::paper();
        // multiply + add chained: 2 ops, depth 2, 3 inputs, 1 multiply.
        assert!(cap.check(3, 2, 2, 1, 1, 0).is_none());
    }

    #[test]
    fn paper_capability_rejects_deep_chains() {
        let cap = AluCapability::paper();
        let reason = cap.check(4, 3, 3, 1, 1, 0);
        assert!(reason.unwrap().contains("depth 3"));
    }

    #[test]
    fn single_op_rejects_any_grouping() {
        let cap = AluCapability::single_op();
        assert!(cap.check(2, 1, 1, 0, 1, 0).is_none());
        assert!(cap.check(3, 2, 2, 1, 1, 0).is_some());
    }

    #[test]
    fn limits_are_reported_in_order() {
        let cap = AluCapability::paper();
        assert!(cap.check(5, 1, 1, 0, 1, 0).unwrap().contains("inputs"));
        assert!(cap.check(4, 1, 4, 0, 1, 0).unwrap().contains("operations"));
        assert!(cap.check(4, 1, 3, 3, 1, 0).unwrap().contains("multiplies"));
        assert!(cap.check(4, 1, 3, 2, 3, 0).unwrap().contains("outputs"));
        assert!(cap.check(4, 1, 3, 2, 2, 3).unwrap().contains("memory"));
    }

    #[test]
    fn display_of_classes() {
        assert_eq!(AluClass::Multiply.to_string(), "multiply");
        assert_eq!(AluClass::MemoryAccess.to_string(), "memory");
    }
}
