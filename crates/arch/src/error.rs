//! Error type for architecture-model operations.

use std::fmt;

/// Errors raised by the structural tile model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ArchError {
    /// A processing-part index is out of range for the tile configuration.
    UnknownPp(usize),
    /// A tile index is out of range for the array configuration.
    UnknownTile(usize),
    /// The inter-tile interconnect cannot accept more transfers this cycle.
    InterconnectOversubscribed {
        /// Number of simultaneous transfers requested.
        requested: usize,
        /// Number of links available per cycle.
        available: usize,
    },
    /// A register reference addresses a bank or register that does not exist.
    InvalidRegister {
        /// Description of the offending reference.
        reference: String,
    },
    /// A memory reference addresses a memory or word that does not exist.
    InvalidMemory {
        /// Description of the offending reference.
        reference: String,
    },
    /// A memory port was used more times in one cycle than it physically has.
    PortConflict {
        /// Description of the conflicting resource.
        resource: String,
        /// Number of uses requested this cycle.
        requested: usize,
        /// Number of ports available.
        available: usize,
    },
    /// The crossbar does not have enough buses for the requested transfers.
    CrossbarOversubscribed {
        /// Number of simultaneous transfers requested.
        requested: usize,
        /// Number of buses available.
        available: usize,
    },
    /// The tile configuration itself is inconsistent (zero PPs, zero-size
    /// memory, ...).
    InvalidConfig(String),
    /// A value was read from a register or memory word that was never
    /// written.
    UninitializedRead {
        /// Description of the location.
        location: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::UnknownPp(i) => write!(f, "processing part {i} does not exist"),
            ArchError::UnknownTile(i) => write!(f, "tile {i} does not exist"),
            ArchError::InterconnectOversubscribed {
                requested,
                available,
            } => write!(
                f,
                "inter-tile interconnect oversubscribed: {requested} transfers requested, {available} links"
            ),
            ArchError::InvalidRegister { reference } => {
                write!(f, "invalid register reference {reference}")
            }
            ArchError::InvalidMemory { reference } => {
                write!(f, "invalid memory reference {reference}")
            }
            ArchError::PortConflict {
                resource,
                requested,
                available,
            } => write!(
                f,
                "port conflict on {resource}: {requested} accesses requested, {available} ports"
            ),
            ArchError::CrossbarOversubscribed {
                requested,
                available,
            } => write!(
                f,
                "crossbar oversubscribed: {requested} transfers requested, {available} buses"
            ),
            ArchError::InvalidConfig(reason) => write!(f, "invalid tile configuration: {reason}"),
            ArchError::UninitializedRead { location } => {
                write!(f, "read of uninitialised location {location}")
            }
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ArchError::UnknownPp(7).to_string(),
            "processing part 7 does not exist"
        );
        assert!(ArchError::CrossbarOversubscribed {
            requested: 12,
            available: 10
        }
        .to_string()
        .contains("12 transfers"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ArchError>();
    }
}
