//! Register banks of a processing part.
//!
//! Each PP has four input register banks named `Ra`, `Rb`, `Rc`, `Rd`; each
//! bank holds four registers. The ALU of a PP reads its operands from its own
//! register banks only — values produced elsewhere must first be moved into a
//! register (via the crossbar) or fetched from a local memory. The resource
//! allocator's job (Fig. 5 of the paper) is to schedule those moves early
//! enough.

use crate::error::ArchError;
use std::fmt;

/// Name of one of the four input register banks of a PP.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RegBankName {
    /// Bank `Ra` (feeds ALU input a).
    Ra,
    /// Bank `Rb` (feeds ALU input b).
    Rb,
    /// Bank `Rc` (feeds ALU input c).
    Rc,
    /// Bank `Rd` (feeds ALU input d).
    Rd,
}

impl RegBankName {
    /// All bank names in ALU-input order.
    pub const ALL: [RegBankName; 4] = [
        RegBankName::Ra,
        RegBankName::Rb,
        RegBankName::Rc,
        RegBankName::Rd,
    ];

    /// Index of the bank (0 for `Ra` … 3 for `Rd`).
    pub fn index(self) -> usize {
        match self {
            RegBankName::Ra => 0,
            RegBankName::Rb => 1,
            RegBankName::Rc => 2,
            RegBankName::Rd => 3,
        }
    }

    /// Bank with the given index.
    ///
    /// # Panics
    /// Panics when `index >= 4`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }
}

impl fmt::Display for RegBankName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegBankName::Ra => "Ra",
            RegBankName::Rb => "Rb",
            RegBankName::Rc => "Rc",
            RegBankName::Rd => "Rd",
        };
        f.write_str(s)
    }
}

/// Reference to one register of one bank of one PP.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegRef {
    /// Processing part owning the register.
    pub pp: usize,
    /// Register bank within the PP.
    pub bank: RegBankName,
    /// Register index within the bank.
    pub index: usize,
}

impl RegRef {
    /// Creates a register reference.
    pub fn new(pp: usize, bank: RegBankName, index: usize) -> Self {
        RegRef { pp, bank, index }
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pp{}.{}[{}]", self.pp, self.bank, self.index)
    }
}

/// One register bank: a small array of word registers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegisterBank {
    name: RegBankName,
    regs: Vec<Option<i64>>,
}

impl RegisterBank {
    /// Creates an empty bank with `size` registers.
    pub fn new(name: RegBankName, size: usize) -> Self {
        RegisterBank {
            name,
            regs: vec![None; size],
        }
    }

    /// Name of the bank.
    pub fn name(&self) -> RegBankName {
        self.name
    }

    /// Number of registers in the bank.
    pub fn size(&self) -> usize {
        self.regs.len()
    }

    /// Number of registers currently holding a value.
    pub fn occupied(&self) -> usize {
        self.regs.iter().filter(|r| r.is_some()).count()
    }

    /// Writes `value` to register `index`.
    ///
    /// # Errors
    /// [`ArchError::InvalidRegister`] when the index is out of range.
    pub fn write(&mut self, index: usize, value: i64) -> Result<(), ArchError> {
        let size = self.size();
        let slot = self
            .regs
            .get_mut(index)
            .ok_or_else(|| ArchError::InvalidRegister {
                reference: format!("{}[{index}] (bank size {size})", self.name),
            })?;
        *slot = Some(value);
        Ok(())
    }

    /// Reads register `index`.
    ///
    /// # Errors
    /// * [`ArchError::InvalidRegister`] when the index is out of range;
    /// * [`ArchError::UninitializedRead`] when the register was never written.
    pub fn read(&self, index: usize) -> Result<i64, ArchError> {
        let slot = self
            .regs
            .get(index)
            .ok_or_else(|| ArchError::InvalidRegister {
                reference: format!("{}[{index}] (bank size {})", self.name, self.size()),
            })?;
        slot.ok_or_else(|| ArchError::UninitializedRead {
            location: format!("{}[{index}]", self.name),
        })
    }

    /// Clears register `index` (frees the slot).
    ///
    /// # Errors
    /// [`ArchError::InvalidRegister`] when the index is out of range.
    pub fn clear(&mut self, index: usize) -> Result<(), ArchError> {
        let size = self.size();
        let slot = self
            .regs
            .get_mut(index)
            .ok_or_else(|| ArchError::InvalidRegister {
                reference: format!("{}[{index}] (bank size {size})", self.name),
            })?;
        *slot = None;
        Ok(())
    }

    /// Index of a free register, if any.
    pub fn free_slot(&self) -> Option<usize> {
        self.regs.iter().position(Option::is_none)
    }

    /// `true` when every register holds a value.
    pub fn is_full(&self) -> bool {
        self.free_slot().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_name_indexing() {
        for (i, name) in RegBankName::ALL.into_iter().enumerate() {
            assert_eq!(name.index(), i);
            assert_eq!(RegBankName::from_index(i), name);
        }
        assert_eq!(RegBankName::Ra.to_string(), "Ra");
    }

    #[test]
    fn write_read_clear() {
        let mut bank = RegisterBank::new(RegBankName::Rb, 4);
        assert_eq!(bank.size(), 4);
        assert_eq!(bank.occupied(), 0);
        bank.write(2, 77).unwrap();
        assert_eq!(bank.read(2).unwrap(), 77);
        assert_eq!(bank.occupied(), 1);
        bank.clear(2).unwrap();
        assert!(matches!(
            bank.read(2),
            Err(ArchError::UninitializedRead { .. })
        ));
    }

    #[test]
    fn out_of_range_accesses_fail() {
        let mut bank = RegisterBank::new(RegBankName::Ra, 4);
        assert!(matches!(
            bank.write(4, 1),
            Err(ArchError::InvalidRegister { .. })
        ));
        assert!(matches!(
            bank.read(9),
            Err(ArchError::InvalidRegister { .. })
        ));
        assert!(matches!(
            bank.clear(4),
            Err(ArchError::InvalidRegister { .. })
        ));
    }

    #[test]
    fn free_slot_tracking() {
        let mut bank = RegisterBank::new(RegBankName::Rd, 2);
        assert_eq!(bank.free_slot(), Some(0));
        bank.write(0, 1).unwrap();
        assert_eq!(bank.free_slot(), Some(1));
        bank.write(1, 2).unwrap();
        assert!(bank.is_full());
        assert_eq!(bank.free_slot(), None);
    }

    #[test]
    fn reg_ref_display() {
        let r = RegRef::new(3, RegBankName::Rc, 1);
        assert_eq!(r.to_string(), "pp3.Rc[1]");
    }
}
