//! Processing part: one ALU plus its register banks and local memories.

use crate::config::TileConfig;
use crate::error::ArchError;
use crate::memory::{LocalMemory, MemId};
use crate::regbank::{RegBankName, RegisterBank};

/// Index of a processing part within its tile.
pub type PpId = usize;

/// One processing part: the storage attached to one ALU.
///
/// The arithmetic behaviour of the ALU is modelled by the simulator; this
/// type holds the PP's state (register banks and local memories) and enforces
/// their capacities.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcessingPart {
    id: PpId,
    banks: Vec<RegisterBank>,
    memories: Vec<LocalMemory>,
}

impl ProcessingPart {
    /// Creates an empty processing part according to the tile configuration.
    pub fn new(id: PpId, config: &TileConfig) -> Self {
        let banks = (0..config.banks_per_pp)
            .map(|i| RegisterBank::new(RegBankName::from_index(i % 4), config.regs_per_bank))
            .collect();
        let memories = (0..config.mems_per_pp)
            .map(|i| LocalMemory::new(MemId::from_index(i % 2), config.mem_words))
            .collect();
        ProcessingPart {
            id,
            banks,
            memories,
        }
    }

    /// Index of this PP within its tile.
    pub fn id(&self) -> PpId {
        self.id
    }

    /// Register banks of this PP.
    pub fn banks(&self) -> &[RegisterBank] {
        &self.banks
    }

    /// Local memories of this PP.
    pub fn memories(&self) -> &[LocalMemory] {
        &self.memories
    }

    /// Mutable access to a register bank by name.
    ///
    /// # Errors
    /// [`ArchError::InvalidRegister`] when the PP has no bank with that name.
    pub fn bank_mut(&mut self, name: RegBankName) -> Result<&mut RegisterBank, ArchError> {
        let id = self.id;
        self.banks
            .iter_mut()
            .find(|b| b.name() == name)
            .ok_or_else(|| ArchError::InvalidRegister {
                reference: format!("pp{id}.{name}"),
            })
    }

    /// Access to a register bank by name.
    ///
    /// # Errors
    /// [`ArchError::InvalidRegister`] when the PP has no bank with that name.
    pub fn bank(&self, name: RegBankName) -> Result<&RegisterBank, ArchError> {
        self.banks
            .iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| ArchError::InvalidRegister {
                reference: format!("pp{}.{name}", self.id),
            })
    }

    /// Mutable access to a local memory by id.
    ///
    /// # Errors
    /// [`ArchError::InvalidMemory`] when the PP has no memory with that id.
    pub fn memory_mut(&mut self, mem: MemId) -> Result<&mut LocalMemory, ArchError> {
        let id = self.id;
        self.memories
            .iter_mut()
            .find(|m| m.id() == mem)
            .ok_or_else(|| ArchError::InvalidMemory {
                reference: format!("pp{id}.{mem}"),
            })
    }

    /// Access to a local memory by id.
    ///
    /// # Errors
    /// [`ArchError::InvalidMemory`] when the PP has no memory with that id.
    pub fn memory(&self, mem: MemId) -> Result<&LocalMemory, ArchError> {
        self.memories
            .iter()
            .find(|m| m.id() == mem)
            .ok_or_else(|| ArchError::InvalidMemory {
                reference: format!("pp{}.{mem}", self.id),
            })
    }

    /// Total number of registers currently holding a value.
    pub fn registers_occupied(&self) -> usize {
        self.banks.iter().map(RegisterBank::occupied).sum()
    }

    /// Total number of memory words currently holding a value.
    pub fn memory_words_occupied(&self) -> usize {
        self.memories.iter().map(LocalMemory::occupied).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pp_is_built_from_config() {
        let pp = ProcessingPart::new(2, &TileConfig::paper());
        assert_eq!(pp.id(), 2);
        assert_eq!(pp.banks().len(), 4);
        assert_eq!(pp.memories().len(), 2);
        assert_eq!(pp.registers_occupied(), 0);
        assert_eq!(pp.memory_words_occupied(), 0);
    }

    #[test]
    fn bank_and_memory_lookup() {
        let mut pp = ProcessingPart::new(0, &TileConfig::paper());
        pp.bank_mut(RegBankName::Rc).unwrap().write(1, 5).unwrap();
        assert_eq!(pp.bank(RegBankName::Rc).unwrap().read(1).unwrap(), 5);
        pp.memory_mut(MemId::Mem2).unwrap().write(100, 7).unwrap();
        assert_eq!(pp.memory(MemId::Mem2).unwrap().read(100).unwrap(), 7);
        assert_eq!(pp.registers_occupied(), 1);
        assert_eq!(pp.memory_words_occupied(), 1);
    }

    #[test]
    fn missing_bank_is_reported() {
        let config = TileConfig::paper().with_register_files(1, 4);
        let mut pp = ProcessingPart::new(0, &config);
        assert!(pp.bank(RegBankName::Ra).is_ok());
        assert!(matches!(
            pp.bank_mut(RegBankName::Rd),
            Err(ArchError::InvalidRegister { .. })
        ));
    }

    #[test]
    fn missing_memory_is_reported() {
        let config = TileConfig::paper().with_memories(1, 16);
        let pp = ProcessingPart::new(0, &config);
        assert!(pp.memory(MemId::Mem1).is_ok());
        assert!(matches!(
            pp.memory(MemId::Mem2),
            Err(ArchError::InvalidMemory { .. })
        ));
    }
}
