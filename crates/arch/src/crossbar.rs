//! Crossbar switch connecting ALU outputs to register banks and memories.
//!
//! The paper: *"A crossbar-switch makes flexible routing between the ALUs,
//! registers and memories possible. The crossbar enables an ALU to write back
//! their result to any register or memory within a tile."* The crossbar has a
//! bounded number of buses; the resource allocator must not schedule more
//! simultaneous transfers than there are buses, and the simulator re-checks
//! this every cycle.

use crate::error::ArchError;

/// Book-keeping for crossbar bus usage within one clock cycle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Crossbar {
    buses: usize,
    in_use: usize,
    /// Total number of transfers routed over the lifetime of the crossbar
    /// (for energy accounting).
    total_transfers: u64,
}

impl Crossbar {
    /// Creates a crossbar with `buses` global buses.
    pub fn new(buses: usize) -> Self {
        Crossbar {
            buses,
            in_use: 0,
            total_transfers: 0,
        }
    }

    /// Number of buses.
    pub fn buses(&self) -> usize {
        self.buses
    }

    /// Number of buses claimed in the current cycle.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total transfers routed since construction.
    pub fn total_transfers(&self) -> u64 {
        self.total_transfers
    }

    /// Claims one bus for a transfer in the current cycle.
    ///
    /// # Errors
    /// [`ArchError::CrossbarOversubscribed`] when all buses are already used
    /// this cycle.
    pub fn claim(&mut self) -> Result<(), ArchError> {
        if self.in_use >= self.buses {
            return Err(ArchError::CrossbarOversubscribed {
                requested: self.in_use + 1,
                available: self.buses,
            });
        }
        self.in_use += 1;
        self.total_transfers += 1;
        Ok(())
    }

    /// Claims `n` buses at once.
    ///
    /// # Errors
    /// [`ArchError::CrossbarOversubscribed`] when fewer than `n` buses are
    /// free; no bus is claimed in that case.
    pub fn claim_many(&mut self, n: usize) -> Result<(), ArchError> {
        if self.in_use + n > self.buses {
            return Err(ArchError::CrossbarOversubscribed {
                requested: self.in_use + n,
                available: self.buses,
            });
        }
        self.in_use += n;
        self.total_transfers += n as u64;
        Ok(())
    }

    /// Releases all buses at the end of a cycle.
    pub fn next_cycle(&mut self) {
        self.in_use = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_up_to_capacity() {
        let mut xb = Crossbar::new(3);
        assert_eq!(xb.buses(), 3);
        xb.claim().unwrap();
        xb.claim().unwrap();
        xb.claim().unwrap();
        assert_eq!(xb.in_use(), 3);
        assert!(matches!(
            xb.claim(),
            Err(ArchError::CrossbarOversubscribed { .. })
        ));
    }

    #[test]
    fn next_cycle_frees_buses() {
        let mut xb = Crossbar::new(1);
        xb.claim().unwrap();
        xb.next_cycle();
        xb.claim().unwrap();
        assert_eq!(xb.total_transfers(), 2);
    }

    #[test]
    fn claim_many_is_atomic() {
        let mut xb = Crossbar::new(4);
        xb.claim_many(3).unwrap();
        let err = xb.claim_many(2).unwrap_err();
        assert!(matches!(err, ArchError::CrossbarOversubscribed { .. }));
        // Nothing was claimed by the failing call.
        assert_eq!(xb.in_use(), 3);
        xb.claim().unwrap();
    }
}
