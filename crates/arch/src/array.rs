//! The FPFA tile array: N tiles behind an inter-tile interconnect.
//!
//! The paper maps kernels onto *one* tile, but the architecture it describes
//! is an array of identical tiles connected by a (slower, narrower)
//! inter-tile network. This module models the structural side of that array:
//! how many tiles there are, how many words the interconnect can move per
//! clock cycle, and how many cycles a word is in flight between two tiles.
//!
//! The cost asymmetry the partitioner exploits is captured here: an
//! intra-tile crossbar transfer costs one cycle and little energy, while an
//! inter-tile transfer occupies a link for a cycle, arrives
//! [`ArrayConfig::hop_latency`] cycles later, and is the most expensive event
//! in the [`EnergyModel`](crate::EnergyModel).

use crate::config::TileConfig;
use crate::error::ArchError;
use crate::tile::Tile;
use std::fmt;

/// Identifier of a tile inside an array (a plain index, like
/// [`PpId`](crate::PpId)).
pub type TileId = usize;

/// Structural parameters of the inter-tile array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArrayConfig {
    /// Number of tiles in the array.
    pub num_tiles: usize,
    /// Words the inter-tile interconnect can accept per clock cycle (across
    /// the whole array).
    pub links_per_cycle: usize,
    /// Cycles a word is in flight between two tiles: a value departing in
    /// cycle `c` is readable at the destination from cycle
    /// `c + hop_latency + 1` on.
    pub hop_latency: usize,
}

impl ArrayConfig {
    /// A degenerate single-tile array (the paper's setting).
    pub fn single_tile() -> Self {
        ArrayConfig {
            num_tiles: 1,
            links_per_cycle: 4,
            hop_latency: 2,
        }
    }

    /// An array of `num_tiles` tiles with the default interconnect (four
    /// links per cycle, two cycles of hop latency).
    pub fn with_tiles(num_tiles: usize) -> Self {
        ArrayConfig {
            num_tiles,
            ..Self::single_tile()
        }
    }

    /// Overrides the interconnect bandwidth.
    pub fn with_links_per_cycle(mut self, links: usize) -> Self {
        self.links_per_cycle = links;
        self
    }

    /// Overrides the hop latency.
    pub fn with_hop_latency(mut self, latency: usize) -> Self {
        self.hop_latency = latency;
        self
    }

    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    /// [`ArchError::InvalidConfig`] describing the first problem found.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.num_tiles == 0 {
            return Err(ArchError::InvalidConfig(
                "the array needs at least one tile".into(),
            ));
        }
        if self.num_tiles > 1 && self.links_per_cycle == 0 {
            return Err(ArchError::InvalidConfig(
                "a multi-tile array needs at least one inter-tile link".into(),
            ));
        }
        Ok(())
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self::single_tile()
    }
}

/// A complete FPFA tile array: the storage state of every tile plus the
/// interconnect parameters.
#[derive(Clone, PartialEq, Debug)]
pub struct TileArray {
    array: ArrayConfig,
    tile_config: TileConfig,
    tiles: Vec<Tile>,
}

impl TileArray {
    /// Creates an array of empty, identical tiles.
    ///
    /// # Errors
    /// [`ArchError::InvalidConfig`] when either configuration is invalid.
    pub fn new(tile_config: TileConfig, array: ArrayConfig) -> Result<Self, ArchError> {
        tile_config.validate()?;
        array.validate()?;
        let tiles = (0..array.num_tiles)
            .map(|_| Tile::new(tile_config))
            .collect();
        Ok(TileArray {
            array,
            tile_config,
            tiles,
        })
    }

    /// The array configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.array
    }

    /// The configuration shared by every tile.
    pub fn tile_config(&self) -> &TileConfig {
        &self.tile_config
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// `true` when the array has no tiles (never the case for constructed
    /// arrays).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// The tiles of the array.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Access to one tile.
    ///
    /// # Errors
    /// [`ArchError::UnknownTile`] when the index is out of range.
    pub fn tile(&self, id: TileId) -> Result<&Tile, ArchError> {
        self.tiles.get(id).ok_or(ArchError::UnknownTile(id))
    }

    /// Mutable access to one tile.
    ///
    /// # Errors
    /// [`ArchError::UnknownTile`] when the index is out of range.
    pub fn tile_mut(&mut self, id: TileId) -> Result<&mut Tile, ArchError> {
        self.tiles.get_mut(id).ok_or(ArchError::UnknownTile(id))
    }

    /// Total ALU count across the array.
    pub fn total_alus(&self) -> usize {
        self.array.num_tiles * self.tile_config.num_pps
    }

    /// Human-readable inventory of the array.
    pub fn inventory(&self) -> String {
        let mut out = format!(
            "FPFA array: {} tile(s), {} ALUs total\n",
            self.array.num_tiles,
            self.total_alus()
        );
        out.push_str(&format!(
            "  interconnect: {} link(s)/cycle, hop latency {} cycle(s)\n",
            self.array.links_per_cycle, self.array.hop_latency
        ));
        out.push_str(&format!(
            "  per tile: {} PPs, {} registers, {} memory words",
            self.tile_config.num_pps,
            self.tile_config.total_registers(),
            self.tile_config.total_memory_words()
        ));
        out
    }
}

impl fmt::Display for TileArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.inventory())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regbank::RegBankName;

    #[test]
    fn four_tile_array_has_independent_tiles() {
        let mut array = TileArray::new(TileConfig::paper(), ArrayConfig::with_tiles(4)).unwrap();
        assert_eq!(array.len(), 4);
        assert_eq!(array.total_alus(), 20);
        array
            .tile_mut(2)
            .unwrap()
            .pp_mut(0)
            .unwrap()
            .bank_mut(RegBankName::Ra)
            .unwrap()
            .write(0, 7)
            .unwrap();
        assert_eq!(
            array.tile(2).unwrap().pp(0).unwrap().registers_occupied(),
            1
        );
        assert_eq!(
            array.tile(0).unwrap().pp(0).unwrap().registers_occupied(),
            0
        );
        assert!(matches!(array.tile(4), Err(ArchError::UnknownTile(4))));
    }

    #[test]
    fn invalid_array_configurations_are_rejected() {
        assert!(ArrayConfig::with_tiles(0).validate().is_err());
        assert!(ArrayConfig::with_tiles(2)
            .with_links_per_cycle(0)
            .validate()
            .is_err());
        // A single tile needs no interconnect.
        assert!(ArrayConfig::single_tile()
            .with_links_per_cycle(0)
            .validate()
            .is_ok());
        assert!(TileArray::new(
            TileConfig::paper().with_num_pps(0),
            ArrayConfig::single_tile()
        )
        .is_err());
    }

    #[test]
    fn inventory_mentions_the_interconnect() {
        let array = TileArray::new(TileConfig::paper(), ArrayConfig::with_tiles(3)).unwrap();
        let inv = array.to_string();
        assert!(inv.contains("3 tile(s)"));
        assert!(inv.contains("15 ALUs"));
        assert!(inv.contains("hop latency 2"));
    }

    #[test]
    fn builder_overrides() {
        let config = ArrayConfig::with_tiles(2)
            .with_links_per_cycle(8)
            .with_hop_latency(1);
        assert_eq!(config.links_per_cycle, 8);
        assert_eq!(config.hop_latency, 1);
        assert!(config.validate().is_ok());
    }
}
