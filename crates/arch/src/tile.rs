//! The FPFA tile: five processing parts behind a crossbar.

use crate::config::TileConfig;
use crate::crossbar::Crossbar;
use crate::error::ArchError;
use crate::pp::{PpId, ProcessingPart};
use std::fmt;

/// A complete FPFA tile instance: storage state of every PP plus the
/// crossbar.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tile {
    config: TileConfig,
    pps: Vec<ProcessingPart>,
    crossbar: Crossbar,
}

impl Tile {
    /// Creates an empty tile from a configuration.
    ///
    /// # Panics
    /// Panics when the configuration is invalid; call
    /// [`TileConfig::validate`] first when the configuration comes from
    /// untrusted input.
    pub fn new(config: TileConfig) -> Self {
        config
            .validate()
            .expect("tile configuration must be valid; validate() before constructing");
        let pps = (0..config.num_pps)
            .map(|i| ProcessingPart::new(i, &config))
            .collect();
        let crossbar = Crossbar::new(config.crossbar_buses);
        Tile {
            config,
            pps,
            crossbar,
        }
    }

    /// The configuration this tile was built from.
    pub fn config(&self) -> &TileConfig {
        &self.config
    }

    /// The processing parts of the tile.
    pub fn processing_parts(&self) -> &[ProcessingPart] {
        &self.pps
    }

    /// Access to one processing part.
    ///
    /// # Errors
    /// [`ArchError::UnknownPp`] when the index is out of range.
    pub fn pp(&self, id: PpId) -> Result<&ProcessingPart, ArchError> {
        self.pps.get(id).ok_or(ArchError::UnknownPp(id))
    }

    /// Mutable access to one processing part.
    ///
    /// # Errors
    /// [`ArchError::UnknownPp`] when the index is out of range.
    pub fn pp_mut(&mut self, id: PpId) -> Result<&mut ProcessingPart, ArchError> {
        self.pps.get_mut(id).ok_or(ArchError::UnknownPp(id))
    }

    /// The crossbar book-keeping.
    pub fn crossbar(&self) -> &Crossbar {
        &self.crossbar
    }

    /// Mutable crossbar book-keeping (used by the simulator).
    pub fn crossbar_mut(&mut self) -> &mut Crossbar {
        &mut self.crossbar
    }

    /// Human-readable inventory of the tile (the "Fig. 1" table).
    pub fn inventory(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        out.push_str(&format!("FPFA tile: {} processing parts\n", c.num_pps));
        out.push_str(&format!(
            "  per PP: 1 ALU (<= {} ops/cycle, depth {}), {} register banks x {} registers, {} memories x {} words\n",
            c.alu.max_ops, c.alu.max_depth, c.banks_per_pp, c.regs_per_bank, c.mems_per_pp, c.mem_words
        ));
        out.push_str(&format!(
            "  crossbar: {} buses; memory ports per cycle: {}; register write ports: {}\n",
            c.crossbar_buses, c.mem_ports, c.regbank_write_ports
        ));
        out.push_str(&format!(
            "  totals: {} registers, {} memory words",
            c.total_registers(),
            c.total_memory_words()
        ));
        out
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.inventory())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regbank::RegBankName;

    #[test]
    fn paper_tile_has_five_pps() {
        let tile = Tile::new(TileConfig::paper());
        assert_eq!(tile.processing_parts().len(), 5);
        assert_eq!(tile.crossbar().buses(), 10);
        assert!(tile.pp(4).is_ok());
        assert!(matches!(tile.pp(5), Err(ArchError::UnknownPp(5))));
    }

    #[test]
    fn pp_state_is_independent() {
        let mut tile = Tile::new(TileConfig::paper());
        tile.pp_mut(0)
            .unwrap()
            .bank_mut(RegBankName::Ra)
            .unwrap()
            .write(0, 11)
            .unwrap();
        assert_eq!(tile.pp(0).unwrap().registers_occupied(), 1);
        assert_eq!(tile.pp(1).unwrap().registers_occupied(), 0);
    }

    #[test]
    fn inventory_mentions_key_figures() {
        let tile = Tile::new(TileConfig::paper());
        let inv = tile.inventory();
        assert!(inv.contains("5 processing parts"));
        assert!(inv.contains("512 words"));
        assert!(inv.contains("80 registers"));
        assert_eq!(tile.to_string(), inv);
    }

    #[test]
    #[should_panic(expected = "tile configuration must be valid")]
    fn invalid_config_panics_on_construction() {
        let _ = Tile::new(TileConfig::paper().with_num_pps(0));
    }
}
