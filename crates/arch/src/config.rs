//! Tile configuration: the structural parameters of an FPFA tile.

use crate::alu::AluCapability;
use crate::error::ArchError;

/// Structural parameters of one FPFA tile.
///
/// [`TileConfig::paper`] reproduces the tile of the DATE'03 paper (five PPs,
/// four banks of four registers, two memories of 512 words). Other
/// configurations are useful for design-space exploration and for the
/// deliberately undersized tiles used in failure-injection tests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TileConfig {
    /// Number of processing parts (ALUs) in the tile.
    pub num_pps: usize,
    /// Number of input register banks per PP.
    pub banks_per_pp: usize,
    /// Number of registers per bank.
    pub regs_per_bank: usize,
    /// Number of local memories per PP.
    pub mems_per_pp: usize,
    /// Number of words per local memory.
    pub mem_words: usize,
    /// Number of global crossbar buses available per cycle.
    pub crossbar_buses: usize,
    /// Read/write ports per local memory per cycle.
    pub mem_ports: usize,
    /// Write ports per register bank per cycle.
    pub regbank_write_ports: usize,
    /// How far ahead of its use an input may be moved into a register
    /// (the "four steps before" window of Fig. 5).
    pub input_move_window: usize,
    /// What one ALU may execute in a single cycle.
    pub alu: AluCapability,
}

impl TileConfig {
    /// The tile described in the paper.
    pub fn paper() -> Self {
        TileConfig {
            num_pps: 5,
            banks_per_pp: 4,
            regs_per_bank: 4,
            mems_per_pp: 2,
            mem_words: 512,
            crossbar_buses: 10,
            mem_ports: 1,
            regbank_write_ports: 1,
            input_move_window: 4,
            alu: AluCapability::paper(),
        }
    }

    /// A single-PP tile used as the sequential baseline.
    pub fn single_alu() -> Self {
        TileConfig {
            num_pps: 1,
            ..Self::paper()
        }
    }

    /// Overrides the number of processing parts.
    pub fn with_num_pps(mut self, num_pps: usize) -> Self {
        self.num_pps = num_pps;
        self
    }

    /// Overrides the ALU capability.
    pub fn with_alu(mut self, alu: AluCapability) -> Self {
        self.alu = alu;
        self
    }

    /// Overrides the register-file shape.
    pub fn with_register_files(mut self, banks: usize, regs_per_bank: usize) -> Self {
        self.banks_per_pp = banks;
        self.regs_per_bank = regs_per_bank;
        self
    }

    /// Overrides the local memory shape.
    pub fn with_memories(mut self, mems: usize, words: usize) -> Self {
        self.mems_per_pp = mems;
        self.mem_words = words;
        self
    }

    /// Overrides the crossbar width.
    pub fn with_crossbar_buses(mut self, buses: usize) -> Self {
        self.crossbar_buses = buses;
        self
    }

    /// Overrides the allocator's input-move look-back window.
    pub fn with_input_move_window(mut self, window: usize) -> Self {
        self.input_move_window = window;
        self
    }

    /// Total number of registers in the tile.
    pub fn total_registers(&self) -> usize {
        self.num_pps * self.banks_per_pp * self.regs_per_bank
    }

    /// Total number of memory words in the tile.
    pub fn total_memory_words(&self) -> usize {
        self.num_pps * self.mems_per_pp * self.mem_words
    }

    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    /// [`ArchError::InvalidConfig`] describing the first problem found.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.num_pps == 0 {
            return Err(ArchError::InvalidConfig(
                "tile needs at least one PP".into(),
            ));
        }
        if self.banks_per_pp == 0 || self.regs_per_bank == 0 {
            return Err(ArchError::InvalidConfig(
                "each PP needs at least one register".into(),
            ));
        }
        if self.mems_per_pp == 0 || self.mem_words == 0 {
            return Err(ArchError::InvalidConfig(
                "each PP needs at least one memory word".into(),
            ));
        }
        if self.crossbar_buses == 0 {
            return Err(ArchError::InvalidConfig(
                "the crossbar needs at least one bus".into(),
            ));
        }
        if self.mem_ports == 0 || self.regbank_write_ports == 0 {
            return Err(ArchError::InvalidConfig(
                "memories and register banks need at least one port".into(),
            ));
        }
        if self.alu.max_ops == 0 || self.alu.max_inputs == 0 {
            return Err(ArchError::InvalidConfig(
                "the ALU must execute at least one operation with one input".into(),
            ));
        }
        Ok(())
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_fig1() {
        let c = TileConfig::paper();
        assert_eq!(c.num_pps, 5);
        assert_eq!(c.banks_per_pp, 4);
        assert_eq!(c.regs_per_bank, 4);
        assert_eq!(c.mems_per_pp, 2);
        assert_eq!(c.mem_words, 512);
        assert_eq!(c.total_registers(), 5 * 4 * 4);
        assert_eq!(c.total_memory_words(), 5 * 2 * 512);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_style_overrides() {
        let c = TileConfig::paper()
            .with_num_pps(3)
            .with_register_files(2, 2)
            .with_memories(1, 64)
            .with_crossbar_buses(4)
            .with_input_move_window(2)
            .with_alu(AluCapability::single_op());
        assert_eq!(c.num_pps, 3);
        assert_eq!(c.total_registers(), 12);
        assert_eq!(c.total_memory_words(), 192);
        assert_eq!(c.crossbar_buses, 4);
        assert_eq!(c.input_move_window, 2);
        assert_eq!(c.alu.max_ops, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(TileConfig::paper().with_num_pps(0).validate().is_err());
        assert!(TileConfig::paper()
            .with_register_files(0, 4)
            .validate()
            .is_err());
        assert!(TileConfig::paper().with_memories(2, 0).validate().is_err());
        assert!(TileConfig::paper()
            .with_crossbar_buses(0)
            .validate()
            .is_err());
    }

    #[test]
    fn single_alu_baseline() {
        let c = TileConfig::single_alu();
        assert_eq!(c.num_pps, 1);
        assert!(c.validate().is_ok());
    }
}
