//! Local memories of a processing part.
//!
//! Each PP contains two local memories, `MEM1` and `MEM2`, of 512 words each.
//! The allocator places statespace tuples (array elements, spilled values)
//! into these memories; the simulator enforces the single read/write port per
//! memory per cycle.

use crate::error::ArchError;
use std::fmt;

/// Identifier of one of the two local memories of a PP.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemId {
    /// First local memory (`MEM1`).
    Mem1,
    /// Second local memory (`MEM2`).
    Mem2,
}

impl MemId {
    /// Both memory identifiers.
    pub const ALL: [MemId; 2] = [MemId::Mem1, MemId::Mem2];

    /// Index of the memory (0 or 1).
    pub fn index(self) -> usize {
        match self {
            MemId::Mem1 => 0,
            MemId::Mem2 => 1,
        }
    }

    /// Memory with the given index.
    ///
    /// # Panics
    /// Panics when `index >= 2`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }
}

impl fmt::Display for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemId::Mem1 => f.write_str("MEM1"),
            MemId::Mem2 => f.write_str("MEM2"),
        }
    }
}

/// Reference to one word of one local memory of one PP.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MemRef {
    /// Processing part owning the memory.
    pub pp: usize,
    /// Which of the two local memories.
    pub mem: MemId,
    /// Word offset inside the memory.
    pub offset: usize,
}

impl MemRef {
    /// Creates a memory reference.
    pub fn new(pp: usize, mem: MemId, offset: usize) -> Self {
        MemRef { pp, mem, offset }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pp{}.{}[{}]", self.pp, self.mem, self.offset)
    }
}

/// One local memory: an array of words with an occupancy map.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalMemory {
    id: MemId,
    words: Vec<Option<i64>>,
}

impl LocalMemory {
    /// Creates an empty memory with `size` words.
    pub fn new(id: MemId, size: usize) -> Self {
        LocalMemory {
            id,
            words: vec![None; size],
        }
    }

    /// Identifier of this memory.
    pub fn id(&self) -> MemId {
        self.id
    }

    /// Capacity in words.
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Number of words currently holding a value.
    pub fn occupied(&self) -> usize {
        self.words.iter().filter(|w| w.is_some()).count()
    }

    /// Writes `value` at `offset`.
    ///
    /// # Errors
    /// [`ArchError::InvalidMemory`] when the offset is out of range.
    pub fn write(&mut self, offset: usize, value: i64) -> Result<(), ArchError> {
        let size = self.size();
        let id = self.id;
        let slot = self
            .words
            .get_mut(offset)
            .ok_or_else(|| ArchError::InvalidMemory {
                reference: format!("{id}[{offset}] (size {size})"),
            })?;
        *slot = Some(value);
        Ok(())
    }

    /// Reads the word at `offset`.
    ///
    /// # Errors
    /// * [`ArchError::InvalidMemory`] when the offset is out of range;
    /// * [`ArchError::UninitializedRead`] when the word was never written.
    pub fn read(&self, offset: usize) -> Result<i64, ArchError> {
        let slot = self
            .words
            .get(offset)
            .ok_or_else(|| ArchError::InvalidMemory {
                reference: format!("{}[{offset}] (size {})", self.id, self.size()),
            })?;
        slot.ok_or_else(|| ArchError::UninitializedRead {
            location: format!("{}[{offset}]", self.id),
        })
    }

    /// Clears the word at `offset`.
    ///
    /// # Errors
    /// [`ArchError::InvalidMemory`] when the offset is out of range.
    pub fn clear(&mut self, offset: usize) -> Result<(), ArchError> {
        let size = self.size();
        let id = self.id;
        let slot = self
            .words
            .get_mut(offset)
            .ok_or_else(|| ArchError::InvalidMemory {
                reference: format!("{id}[{offset}] (size {size})"),
            })?;
        *slot = None;
        Ok(())
    }

    /// Offset of a free word, if any.
    pub fn free_slot(&self) -> Option<usize> {
        self.words.iter().position(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_id_round_trip() {
        assert_eq!(MemId::Mem1.index(), 0);
        assert_eq!(MemId::from_index(1), MemId::Mem2);
        assert_eq!(MemId::Mem2.to_string(), "MEM2");
    }

    #[test]
    fn write_read_clear() {
        let mut mem = LocalMemory::new(MemId::Mem1, 8);
        assert_eq!(mem.size(), 8);
        mem.write(3, -9).unwrap();
        assert_eq!(mem.read(3).unwrap(), -9);
        assert_eq!(mem.occupied(), 1);
        mem.clear(3).unwrap();
        assert!(matches!(
            mem.read(3),
            Err(ArchError::UninitializedRead { .. })
        ));
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut mem = LocalMemory::new(MemId::Mem2, 4);
        assert!(matches!(
            mem.write(4, 0),
            Err(ArchError::InvalidMemory { .. })
        ));
        assert!(matches!(mem.read(99), Err(ArchError::InvalidMemory { .. })));
    }

    #[test]
    fn free_slot_skips_occupied_words() {
        let mut mem = LocalMemory::new(MemId::Mem1, 3);
        mem.write(0, 1).unwrap();
        assert_eq!(mem.free_slot(), Some(1));
        mem.write(1, 2).unwrap();
        mem.write(2, 3).unwrap();
        assert_eq!(mem.free_slot(), None);
    }

    #[test]
    fn mem_ref_display() {
        assert_eq!(MemRef::new(0, MemId::Mem2, 17).to_string(), "pp0.MEM2[17]");
    }
}
