//! The mapping daemon: a fixed worker-thread pool behind a bounded job
//! queue, serving the framed protocol of [`crate::protocol`] over TCP.
//!
//! Life of a request:
//!
//! 1. The acceptor thread hands each connection to a connection thread,
//!    which reads frames and decodes requests.
//! 2. Cheap verbs (`stats`, `health`, `reset`, `shutdown`) are answered on
//!    the connection thread itself.
//! 3. Mapping verbs (`map`, `batch`) go through **admission control**: the
//!    job is pushed onto a bounded queue with a non-blocking `try_push`.  A
//!    full queue answers [`WireError::Overloaded`] *immediately* — the
//!    server sheds load instead of buffering without bound, and the client
//!    keeps a healthy connection to back off on.
//! 4. A worker pops the job, first checking its **deadline budget**: a job
//!    that waited out its budget in the queue is answered
//!    [`WireError::DeadlineExceeded`] without being mapped (mapping it late
//!    would waste a worker on an answer nobody is waiting for).
//! 5. The worker maps through the shared [`MappingService`] — every worker
//!    and every knob configuration shares one content-addressed cache — and
//!    replies through the job's channel back to the connection thread.
//!
//! **Graceful shutdown** (the `shutdown` verb or [`ServerHandle::shutdown`])
//! stops the acceptor, lets the workers drain every already-admitted job,
//! answers new mapping requests with [`WireError::ShuttingDown`], and joins
//! every thread before [`Server::run`] returns.

use crate::protocol::{
    program_digest, write_frame, BatchEntrySummary, BatchSummary, CacheFlavor, FrameError,
    HealthSummary, Histogram, KernelSource, MapKnobs, MapSummary, Request, Response, SimSummary,
    StatsSummary, WireError, HISTOGRAM_BUCKETS,
};
use fpfa_core::flow::KernelSpec;
use fpfa_core::pipeline::MappingResult;
use fpfa_core::service::MappingService;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Upper bound on the tile-array size a request may ask for (a typed
/// `Invalid` rejection, so a stray knob cannot make a worker build an
/// arbitrarily large array model).
pub const MAX_TILES: u32 = 64;
/// Upper bound on per-request batch size.
pub const MAX_BATCH_KERNELS: usize = 1024;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tuning knobs of the daemon.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads mapping kernels (≥ 1).
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with `Overloaded`.
    pub queue_depth: usize,
    /// Deadline budget applied when a request carries `deadline_ms == 0`.
    /// [`Duration::ZERO`] means "no deadline".
    pub default_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_depth: 64,
            default_deadline: Duration::from_secs(5),
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded job queue (the admission-control primitive)
// ---------------------------------------------------------------------------

/// Why [`JobQueue::try_push`] refused an item.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushRefused {
    /// The queue holds `capacity` items; shed the load.
    Full,
    /// The queue was closed for shutdown.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: producers never block (admission control wants an
/// immediate full/empty verdict), consumers block until an item arrives or
/// the queue is closed *and* drained.
pub(crate) struct JobQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

fn lock_state<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Queue state is a VecDeque plus a flag; a panicking holder cannot leave
    // either torn, so a poisoned lock stays usable.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<T> JobQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        JobQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Admits `item` unless the queue is at capacity or closed.  Never
    /// blocks — this is the admission-control decision point.
    pub(crate) fn try_push(&self, item: T) -> Result<(), PushRefused> {
        let mut state = lock_state(&self.state);
        if state.closed {
            return Err(PushRefused::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushRefused::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; `None` once the queue is closed
    /// and fully drained (workers use this as their exit signal, which is
    /// what makes shutdown drain in-flight work instead of dropping it).
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = lock_state(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the queue: producers are refused, consumers drain what is
    /// left and then see `None`.
    pub(crate) fn close(&self) {
        lock_state(&self.state).closed = true;
        self.available.notify_all();
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        lock_state(&self.state).items.len()
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Atomics-backed latency histogram (same bucket layout as the wire
/// [`Histogram`]).
#[derive(Debug)]
struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, micros: u64) {
        self.buckets[Histogram::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        Histogram {
            buckets: self
                .buckets
                .iter()
                .map(|bucket| bucket.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// The daemon's counters, all atomics so every thread updates them without
/// locking.
#[derive(Debug)]
pub struct ServerStats {
    connections: AtomicU64,
    accepted: AtomicU64,
    served_ok: AtomicU64,
    served_err: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_shutdown: AtomicU64,
    in_flight: AtomicU64,
    map_latency: AtomicHistogram,
    batch_latency: AtomicHistogram,
}

impl ServerStats {
    fn new() -> Self {
        ServerStats {
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            served_ok: AtomicU64::new(0),
            served_err: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            map_latency: AtomicHistogram::new(),
            batch_latency: AtomicHistogram::new(),
        }
    }

    fn reset(&self) {
        for counter in [
            &self.connections,
            &self.accepted,
            &self.served_ok,
            &self.served_err,
            &self.rejected_overload,
            &self.rejected_deadline,
            &self.rejected_shutdown,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
        self.map_latency.reset();
        self.batch_latency.reset();
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

enum Work {
    One(KernelSource),
    Many(Vec<KernelSource>),
}

struct Job {
    work: Work,
    knobs: MapKnobs,
    admitted: Instant,
    reply: mpsc::SyncSender<Response>,
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

struct Inner {
    base: MappingService,
    config: ServerConfig,
    queue: JobQueue<Job>,
    stats: ServerStats,
    shutting_down: AtomicBool,
    started: Instant,
}

impl Inner {
    /// The service for one request's knobs: the base service's cache shared
    /// under a mapper derived from the daemon's configured mapper.  `tiles`
    /// / `pps` of `0` inherit the daemon defaults; the boolean toggles can
    /// only disable features relative to them.  Building a mapper is a
    /// couple of copies, so no per-knob memoisation is needed.
    fn service_for(&self, knobs: &MapKnobs) -> MappingService {
        let mut mapper = self.base.mapper().clone();
        if knobs.pps != 0 {
            let config = self.base.mapper().config().with_num_pps(knobs.pps as usize);
            mapper = mapper.with_config(config);
        }
        if knobs.tiles != 0 {
            mapper = mapper.with_tiles(knobs.tiles as usize);
        }
        if !knobs.clustering {
            mapper = mapper.without_clustering();
        }
        if !knobs.locality {
            mapper = mapper.without_locality();
        }
        self.base.with_mapper(mapper)
    }

    fn deadline_of(&self, knobs: &MapKnobs) -> Duration {
        if knobs.deadline_ms > 0 {
            Duration::from_millis(u64::from(knobs.deadline_ms))
        } else {
            self.config.default_deadline
        }
    }

    fn stats_summary(&self) -> StatsSummary {
        let cache = self.base.stats();
        StatsSummary {
            connections: self.stats.connections.load(Ordering::Relaxed),
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            served_ok: self.stats.served_ok.load(Ordering::Relaxed),
            served_err: self.stats.served_err.load(Ordering::Relaxed),
            rejected_overload: self.stats.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: self.stats.rejected_deadline.load(Ordering::Relaxed),
            rejected_shutdown: self.stats.rejected_shutdown.load(Ordering::Relaxed),
            workers: self.config.workers as u64,
            queue_depth: self.config.queue_depth as u64,
            cache_mapping_hits: cache.mapping_hits,
            cache_mapping_misses: cache.mapping_misses,
            cache_post_hits: cache.post_transform_hits,
            cache_post_misses: cache.post_transform_misses,
            cache_entries: cache.entries,
            cache_capacity: self.base.cache().capacity() as u64,
            map_latency: self.stats.map_latency.snapshot(),
            batch_latency: self.stats.batch_latency.snapshot(),
        }
    }
}

/// A bound-but-not-yet-running daemon (bind first so callers can learn the
/// OS-assigned port of `addr:0` before serving).
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

/// Control handle for a daemon running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the daemon is serving on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful shutdown (idempotent): stop accepting, drain the
    /// queue, answer new work with `ShuttingDown`.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.inner, self.addr);
    }

    /// A snapshot of the daemon's statistics (same payload as the `stats`
    /// verb, without a connection).
    pub fn stats(&self) -> StatsSummary {
        self.inner.stats_summary()
    }

    /// Waits for the daemon to finish draining and exit; returns the final
    /// statistics.
    pub fn join(self) -> StatsSummary {
        let _ = self.thread.join();
        self.inner.stats_summary()
    }
}

fn initiate_shutdown(inner: &Inner, addr: SocketAddr) {
    if inner.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    inner.queue.close();
    // Unblock the acceptor: it re-checks the flag per connection, so one
    // throwaway connection is enough.
    let _ = TcpStream::connect(addr);
}

impl Server {
    /// Binds the daemon to `addr` (use port 0 for an OS-assigned port).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        service: MappingService,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
            default_deadline: config.default_deadline,
        };
        Ok(Server {
            listener,
            inner: Arc::new(Inner {
                base: service,
                config,
                queue: JobQueue::new(config.queue_depth),
                stats: ServerStats::new(),
                shutting_down: AtomicBool::new(false),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a graceful shutdown completes: workers spawned, every
    /// connection handled, queue drained, all threads joined.
    ///
    /// # Errors
    /// Propagates socket errors from the accept loop.
    pub fn run(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut workers = Vec::with_capacity(self.inner.config.workers);
        for _ in 0..self.inner.config.workers {
            let inner = Arc::clone(&self.inner);
            workers.push(std::thread::spawn(move || worker_loop(&inner)));
        }

        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut outcome = Ok(());
        for stream in self.listener.incoming() {
            if self.inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let inner = Arc::clone(&self.inner);
                    connections.push(std::thread::spawn(move || {
                        serve_connection(&inner, stream, addr);
                    }));
                    // Reap finished connection threads so a long-lived
                    // daemon does not accumulate handles.
                    connections.retain(|handle| !handle.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    initiate_shutdown(&self.inner, addr);
                    outcome = Err(e);
                    break;
                }
            }
        }

        // Drain: the queue is closed, workers finish every admitted job,
        // connection threads notice the flag within one read-poll interval.
        self.inner.queue.close();
        for handle in workers {
            let _ = handle.join();
        }
        for handle in connections {
            let _ = handle.join();
        }
        outcome
    }

    /// Runs the daemon on a background thread, returning a control handle.
    ///
    /// # Errors
    /// Propagates socket errors discovered while reading the bound address.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let inner = Arc::clone(&self.inner);
        let thread = std::thread::spawn(move || {
            // The handle owns shutdown; accept-loop errors end the thread.
            let _ = self.run();
        });
        Ok(ServerHandle {
            addr,
            inner,
            thread,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

fn worker_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        process_job(inner, job);
        inner.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn process_job(inner: &Inner, job: Job) {
    let deadline = inner.deadline_of(&job.knobs);
    let waited = job.admitted.elapsed();
    if !deadline.is_zero() && waited > deadline {
        inner
            .stats
            .rejected_deadline
            .fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(Response::Error(WireError::DeadlineExceeded {
            budget_ms: deadline.as_millis() as u64,
        }));
        return;
    }

    let service = inner.service_for(&job.knobs);
    let response = match &job.work {
        Work::One(kernel) => match serve_map(&service, kernel, &job.knobs, job.admitted) {
            Ok(summary) => {
                inner.stats.served_ok.fetch_add(1, Ordering::Relaxed);
                Response::Mapped(summary)
            }
            Err(error) => {
                inner.stats.served_err.fetch_add(1, Ordering::Relaxed);
                Response::Error(error)
            }
        },
        Work::Many(kernels) => {
            let specs: Vec<KernelSpec> = kernels
                .iter()
                .map(|k| KernelSpec::new(k.name.clone(), k.source.clone()))
                .collect();
            let report = service.map_many(&specs);
            if report.failed() == 0 {
                inner.stats.served_ok.fetch_add(1, Ordering::Relaxed);
            } else {
                inner.stats.served_err.fetch_add(1, Ordering::Relaxed);
            }
            let entries = report
                .entries
                .iter()
                .map(|entry| BatchEntrySummary {
                    name: entry.name.clone(),
                    outcome: match &entry.outcome {
                        Ok(result) => Ok(summarize(&entry.name, result, None, job.admitted)),
                        Err(error) => Err(error.to_string()),
                    },
                })
                .collect();
            Response::Batch(BatchSummary {
                entries,
                wall_micros: report.wall.as_micros() as u64,
                deduped: report.deduped as u64,
            })
        }
    };

    let micros = job.admitted.elapsed().as_micros() as u64;
    match &job.work {
        Work::One(_) => inner.stats.map_latency.record(micros),
        Work::Many(_) => inner.stats.batch_latency.record(micros),
    }
    let _ = job.reply.send(response);
}

fn serve_map(
    service: &MappingService,
    kernel: &KernelSource,
    knobs: &MapKnobs,
    admitted: Instant,
) -> Result<MapSummary, WireError> {
    let result = service
        .map_source(&kernel.source)
        .map_err(|error| WireError::MapFailed {
            name: kernel.name.clone(),
            error: error.to_string(),
        })?;
    let sim = if knobs.simulate {
        Some(simulate(&result).map_err(|error| WireError::MapFailed {
            name: kernel.name.clone(),
            error,
        })?)
    } else {
        None
    };
    Ok(summarize(&kernel.name, &result, sim, admitted))
}

fn summarize(
    name: &str,
    result: &MappingResult,
    sim: Option<SimSummary>,
    admitted: Instant,
) -> MapSummary {
    let report = &result.report;
    MapSummary {
        name: name.to_string(),
        digest: program_digest(result),
        operations: report.operations as u64,
        clusters: report.clusters as u64,
        levels: report.levels as u64,
        cycles: report.cycles as u64,
        tiles: report.tiles.max(1) as u64,
        inter_tile_transfers: report.inter_tile_transfers as u64,
        cache: CacheFlavor::from(report.cache),
        sim,
        server_micros: admitted.elapsed().as_micros() as u64,
    }
}

fn simulate(mapping: &MappingResult) -> Result<SimSummary, String> {
    let mut inputs = fpfa_sim::SimInputs::new();
    for (phase, sym) in mapping.layout.arrays().iter().enumerate() {
        inputs.statespace.store_array(
            sym.base,
            &fpfa_workloads::test_signal(sym.len, phase as i64),
        );
    }
    for name in &mapping.program.scalar_input_names {
        inputs.scalars.insert(name.clone(), 1);
    }
    let outcome = match &mapping.multi {
        Some(multi) => fpfa_sim::MultiSimulator::new(&multi.program)
            .run(&inputs)
            .map_err(|e| e.to_string())?,
        None => fpfa_sim::Simulator::new(&mapping.program)
            .run(&inputs)
            .map_err(|e| e.to_string())?,
    };
    let checksum = outcome
        .scalars
        .values()
        .fold(0i64, |acc, v| acc.wrapping_add(*v));
    Ok(SimSummary {
        cycles: outcome.counts.cycles,
        checksum,
    })
}

// ---------------------------------------------------------------------------
// Connection side
// ---------------------------------------------------------------------------

/// How long a connection thread blocks on a read before re-checking the
/// shutdown flag (bounds how long shutdown waits for idle connections).
const READ_POLL: Duration = Duration::from_millis(100);

/// How long a draining connection keeps serving after shutdown begins, so
/// in-flight clients receive their typed `ShuttingDown` answers instead of
/// a closed socket (bounds total shutdown latency for clients that linger).
const DRAIN_GRACE: Duration = Duration::from_secs(1);

fn serve_connection(inner: &Inner, stream: TcpStream, addr: SocketAddr) {
    inner.stats.connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // Wait for the first byte of a frame under the poll timeout (so the
        // thread can notice a shutdown), then read the rest patiently — a
        // timeout mid-frame must not desynchronise the stream.
        let mut first = [0u8; 1];
        match reader.read(&mut first) {
            Ok(0) => break, // clean EOF between frames
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    let deadline =
                        *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        let mut rest = [0u8; 3];
        if read_exact_patient(&mut reader, &mut rest).is_err() {
            break;
        }
        let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
        if len > crate::protocol::MAX_FRAME_LEN {
            // The peer is off the rails; answer once, then hang up (the
            // rest of the stream cannot be re-synchronised).
            let response = Response::Error(WireError::Invalid(format!(
                "frame of {len} bytes exceeds the limit"
            )));
            let _ = send(&mut writer, &response);
            break;
        }
        let mut payload = vec![0u8; len];
        if read_exact_patient(&mut reader, &mut payload).is_err() {
            break;
        }
        let response = match Request::decode(&payload) {
            Ok(request) => match dispatch(inner, request, addr) {
                Some(response) => response,
                None => break, // client went away mid-request
            },
            Err(error) => Response::Error(WireError::Invalid(error.to_string())),
        };
        if send(&mut writer, &response).is_err() {
            break;
        }
    }
}

/// How long the server tolerates a peer stalling in the middle of a frame
/// before dropping the connection.
const FRAME_PATIENCE: Duration = Duration::from_secs(10);

/// `read_exact` over a socket with a read timeout: retries timeouts (the
/// poll interval is a liveness mechanism, not a protocol deadline) until
/// [`FRAME_PATIENCE`] is exhausted.
fn read_exact_patient(reader: &mut impl io::Read, buf: &mut [u8]) -> io::Result<()> {
    let started = Instant::now();
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if started.elapsed() > FRAME_PATIENCE {
                    return Err(io::ErrorKind::TimedOut.into());
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn send(writer: &mut BufWriter<TcpStream>, response: &Response) -> Result<(), FrameError> {
    write_frame(writer, &response.encode())?;
    writer.flush()?;
    Ok(())
}

/// Handles one decoded request; `None` when the reply channel died (the
/// connection dropped while its job was queued).
fn dispatch(inner: &Inner, request: Request, addr: SocketAddr) -> Option<Response> {
    match request {
        Request::Stats => Some(Response::Stats(inner.stats_summary())),
        Request::Health => Some(Response::Health(HealthSummary {
            uptime_micros: inner.started.elapsed().as_micros() as u64,
            in_flight: inner.stats.in_flight.load(Ordering::Relaxed),
            draining: inner.shutting_down.load(Ordering::SeqCst),
        })),
        Request::Reset => {
            let dropped = inner.base.clear_cache() as u64;
            inner.base.cache().reset_stats();
            inner.stats.reset();
            Some(Response::ResetDone {
                dropped_entries: dropped,
            })
        }
        Request::Shutdown => {
            initiate_shutdown(inner, addr);
            Some(Response::ShutdownStarted)
        }
        Request::Map { kernel, knobs } => {
            if let Err(reason) = validate(&knobs, 1) {
                return Some(Response::Error(WireError::Invalid(reason)));
            }
            submit(inner, Work::One(kernel), knobs)
        }
        Request::Batch { kernels, knobs } => {
            if kernels.is_empty() {
                return Some(Response::Error(WireError::Invalid(
                    "empty batch".to_string(),
                )));
            }
            if let Err(reason) = validate(&knobs, kernels.len()) {
                return Some(Response::Error(WireError::Invalid(reason)));
            }
            if knobs.simulate {
                return Some(Response::Error(WireError::Invalid(
                    "simulate is not supported for batches".to_string(),
                )));
            }
            submit(inner, Work::Many(kernels), knobs)
        }
    }
}

fn validate(knobs: &MapKnobs, batch_len: usize) -> Result<(), String> {
    if knobs.tiles > MAX_TILES {
        return Err(format!(
            "tiles {} exceeds the {MAX_TILES} limit",
            knobs.tiles
        ));
    }
    if batch_len > MAX_BATCH_KERNELS {
        return Err(format!(
            "batch of {batch_len} kernels exceeds the {MAX_BATCH_KERNELS} limit"
        ));
    }
    Ok(())
}

/// Admission control: try to enqueue, answer `Overloaded`/`ShuttingDown`
/// immediately when refused, otherwise wait for the worker's reply.
fn submit(inner: &Inner, work: Work, knobs: MapKnobs) -> Option<Response> {
    if inner.shutting_down.load(Ordering::SeqCst) {
        inner
            .stats
            .rejected_shutdown
            .fetch_add(1, Ordering::Relaxed);
        return Some(Response::Error(WireError::ShuttingDown));
    }
    let (reply, receive) = mpsc::sync_channel(1);
    let job = Job {
        work,
        knobs,
        admitted: Instant::now(),
        reply,
    };
    inner.stats.in_flight.fetch_add(1, Ordering::Relaxed);
    match inner.queue.try_push(job) {
        Ok(()) => {
            inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
            receive.recv().ok()
        }
        Err(refused) => {
            inner.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
            Some(match refused {
                PushRefused::Full => {
                    inner
                        .stats
                        .rejected_overload
                        .fetch_add(1, Ordering::Relaxed);
                    Response::Error(WireError::Overloaded {
                        queue_depth: inner.config.queue_depth as u64,
                    })
                }
                PushRefused::Closed => {
                    inner
                        .stats
                        .rejected_shutdown
                        .fetch_add(1, Ordering::Relaxed);
                    Response::Error(WireError::ShuttingDown)
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_admission_is_immediate_and_bounded() {
        let queue: JobQueue<u32> = JobQueue::new(2);
        assert_eq!(queue.try_push(1), Ok(()));
        assert_eq!(queue.try_push(2), Ok(()));
        assert_eq!(queue.try_push(3), Err(PushRefused::Full));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.try_push(3), Ok(()));
        queue.close();
        assert_eq!(queue.try_push(4), Err(PushRefused::Closed));
        // Closing drains what was admitted before signalling exit.
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn queue_pop_blocks_until_push() {
        let queue: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(1));
        let popper = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.try_push(7), Ok(()));
        assert_eq!(popper.join().unwrap(), Some(7));

        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn knob_validation_rejects_out_of_range() {
        let good = MapKnobs::default();
        assert!(validate(&good, 1).is_ok());
        // 0 is the "inherit the daemon default" sentinel, not an error.
        let inherit_tiles = MapKnobs { tiles: 0, ..good };
        assert!(validate(&inherit_tiles, 1).is_ok());
        let huge = MapKnobs {
            tiles: MAX_TILES + 1,
            ..good
        };
        assert!(validate(&huge, 1).is_err());
        assert!(validate(&good, MAX_BATCH_KERNELS + 1).is_err());
    }
}
