//! The mapping daemon: event-driven I/O shards over a fixed worker pool,
//! serving protocol v2 of [`crate::protocol`] over TCP.
//!
//! Life of a request:
//!
//! 1. The acceptor thread round-robins each accepted connection to an **I/O
//!    shard** (`--shards`); the shard owns the socket for its whole life —
//!    read buffer, write buffer, handshake state and in-flight count all
//!    live in the shard's slab, so no per-connection thread or lock exists.
//! 2. Each shard runs a nonblocking readiness loop ([`crate::sys::Poller`]:
//!    `epoll` on Linux, `poll(2)` elsewhere on Unix).  Frames are decoded
//!    as they arrive; a connection may **pipeline** any number of requests.
//! 3. The first frame must be the v2 hello; anything else (including a bare
//!    v1 request) is answered with a typed
//!    [`WireError::UnsupportedVersion`] and the connection is closed.
//! 4. Cheap verbs (`stats`, `health`, `reset`, `shutdown`) are answered
//!    inline on the shard.  `map` requests first consult the shard's
//!    **warm summary table** (a private, epoch-invalidated digest of past
//!    answers) and then probe the shared mapping cache — both answer inline
//!    without queueing, which is the common warm-traffic fast path.
//! 5. Cold work goes through **admission control**: the job is pushed onto
//!    a bounded queue with a non-blocking `try_push`.  A full queue answers
//!    [`WireError::Overloaded`] *immediately* — the server sheds load
//!    instead of buffering without bound.
//! 6. A worker pops the job, first checking its **deadline budget** (a job
//!    that waited out its budget in the queue is answered
//!    [`WireError::DeadlineExceeded`] without being mapped), maps through
//!    the shared [`MappingService`], and pushes the finished response onto
//!    the owning shard's completion queue, waking its poller.  The shard
//!    writes it back — so responses complete **out of order** relative to
//!    their submission, matched to requests by the echoed id.
//!
//! Latency histograms measure frame-decode → response write-back, so time
//! spent queueing (and time a response waits behind a slow client's socket)
//! is part of every observation.
//!
//! **Graceful shutdown** (the `shutdown` verb or [`ServerHandle::shutdown`])
//! stops the acceptor, lets the workers drain every already-admitted job,
//! answers new mapping requests with [`WireError::ShuttingDown`], keeps
//! connections alive for a configurable grace window so drained responses
//! reach their clients, and joins every thread before [`Server::run`]
//! returns.

use crate::protocol::{
    decode_request_frame, encode_response_frame, program_digest, request_id_of, BatchEntrySummary,
    BatchSummary, CacheFlavor, FrameBuffer, HealthSummary, Hello, HelloAck, Histogram,
    KernelSource, MapKnobs, MapSummary, MetricsFormat, Request, Response, ShardStatsSummary,
    SimSummary, StatsSummary, WireError, PROTOCOL_VERSION, UNKNOWN_REQUEST_ID,
};
use crate::sys::{Event, Interest, Poller, WakeSender, Waker, WAKE_TOKEN};
use fpfa_core::flow::KernelSpec;
use fpfa_core::pipeline::MappingResult;
use fpfa_core::service::MappingService;
use fpfa_obs::{FlightEntry, FlightRecorder, Registry, SpanEvent, TraceSink};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Upper bound on the tile-array size a request may ask for (a typed
/// `Invalid` rejection, so a stray knob cannot make a worker build an
/// arbitrarily large array model).
pub const MAX_TILES: u32 = 64;
/// Upper bound on per-request batch size.
pub const MAX_BATCH_KERNELS: usize = 1024;
/// Upper bound on queued (worker-path) requests one connection may have in
/// flight; advertised in the [`HelloAck`] so clients can self-limit.
pub const MAX_CONN_IN_FLIGHT: u32 = 1024;

/// Cap on the auto-selected shard count (`shards == 0`).
const MAX_AUTO_SHARDS: usize = 8;
/// Cap on an explicitly requested shard count.
const MAX_SHARDS: usize = 64;
/// Read chunk per `read(2)` on a readable connection.
const READ_CHUNK: usize = 64 * 1024;
/// Per-shard warm-table entry cap; reaching it clears the table (it re-warms
/// from the shared cache in one probe per kernel).
const WARM_CAPACITY: usize = 4096;
/// A connection whose un-flushed write buffer exceeds this is dropped: the
/// peer is pipelining requests without reading responses.
const WBUF_LIMIT: usize = 64 * 1024 * 1024;
/// Poll timeout while draining, bounding how often shards re-check the
/// shutdown conditions.
const SHUTDOWN_POLL: Duration = Duration::from_millis(25);
/// Span events retained by the trace ring (each is a few dozen bytes; the
/// ring answers "where did the last sampled requests' time go").
const TRACE_RING_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tuning knobs of the daemon.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads mapping kernels (≥ 1).
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with `Overloaded`.
    pub queue_depth: usize,
    /// Deadline budget applied when a request carries `deadline_ms == 0`.
    /// [`Duration::ZERO`] means "no deadline".
    pub default_deadline: Duration,
    /// I/O shards owning connections; `0` selects one per available core,
    /// capped at 8.
    pub shards: usize,
    /// How long draining connections keep being served after shutdown
    /// begins, so lingering clients receive typed `ShuttingDown` answers
    /// instead of a closed socket.
    pub drain_grace: Duration,
    /// Trace-sampling rate: every Nth request id is traced (span events go
    /// to the ring-buffer sink and slow-request lines carry a per-stage
    /// breakdown).  `0` disables tracing entirely.
    pub trace_sample: u32,
    /// A request whose decode → write-back latency exceeds this threshold
    /// is logged on stderr with its span breakdown.  [`Duration::ZERO`]
    /// disables slow-request logging.
    pub slow_threshold: Duration,
    /// Flight-recorder entries retained per I/O shard.
    pub flight_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_depth: 64,
            default_deadline: Duration::from_secs(5),
            shards: 0,
            drain_grace: Duration::from_secs(1),
            trace_sample: 0,
            slow_threshold: Duration::ZERO,
            flight_capacity: fpfa_obs::DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

fn effective_shards(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_AUTO_SHARDS)
    } else {
        requested.min(MAX_SHARDS)
    }
}

// ---------------------------------------------------------------------------
// Bounded job queue (the admission-control primitive)
// ---------------------------------------------------------------------------

/// Why [`JobQueue::try_push`] refused an item.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushRefused {
    /// The queue holds `capacity` items; shed the load.
    Full,
    /// The queue was closed for shutdown.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: producers never block (admission control wants an
/// immediate full/empty verdict), consumers block until an item arrives or
/// the queue is closed *and* drained.
pub(crate) struct JobQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

fn lock_state<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Every structure behind these locks (queues, inboxes) cannot be left
    // torn by a panicking holder, so a poisoned lock stays usable.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<T> JobQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        JobQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Admits `item` unless the queue is at capacity or closed.  Never
    /// blocks — this is the admission-control decision point.
    pub(crate) fn try_push(&self, item: T) -> Result<(), PushRefused> {
        let mut state = lock_state(&self.state);
        if state.closed {
            return Err(PushRefused::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushRefused::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; `None` once the queue is closed
    /// and fully drained (workers use this as their exit signal, which is
    /// what makes shutdown drain in-flight work instead of dropping it).
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = lock_state(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the queue: producers are refused, consumers drain what is
    /// left and then see `None`.
    pub(crate) fn close(&self) {
        lock_state(&self.state).closed = true;
        self.available.notify_all();
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        lock_state(&self.state).items.len()
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// The daemon's counters: typed handles onto the shared [`Registry`], so
/// the hot path records with relaxed atomics while the `metrics` verb and
/// `--metrics-file` snapshots read the very same cells.  The 26-field wire
/// [`StatsSummary`] is now a *view* over this registry, assembled when a
/// `stats` request is served.
pub struct ServerStats {
    connections: fpfa_obs::Counter,
    accepted: fpfa_obs::Counter,
    served_ok: fpfa_obs::Counter,
    served_err: fpfa_obs::Counter,
    verify_failures_map: fpfa_obs::Counter,
    verify_failures_batch: fpfa_obs::Counter,
    rejected_overload: fpfa_obs::Counter,
    rejected_deadline: fpfa_obs::Counter,
    rejected_shutdown: fpfa_obs::Counter,
    rejected_version: fpfa_obs::Counter,
    protocol_errors: fpfa_obs::Counter,
    fast_hits: fpfa_obs::Counter,
    l0_hits: fpfa_obs::Counter,
    in_flight: fpfa_obs::Gauge,
    map_latency: fpfa_obs::Histogram,
    batch_latency: fpfa_obs::Histogram,
    /// Decode → worker-pop wait of queued (cold-path) jobs.
    queue_wait: fpfa_obs::Histogram,
}

impl ServerStats {
    fn new(registry: &Registry) -> Self {
        ServerStats {
            connections: registry.counter("serve.connections", &[]),
            accepted: registry.counter("serve.accepted", &[]),
            served_ok: registry.counter("serve.served", &[("outcome", "ok")]),
            served_err: registry.counter("serve.served", &[("outcome", "err")]),
            verify_failures_map: registry.counter("serve.verify_failures", &[("verb", "map")]),
            verify_failures_batch: registry.counter("serve.verify_failures", &[("verb", "batch")]),
            rejected_overload: registry.counter("serve.rejected", &[("reason", "overload")]),
            rejected_deadline: registry.counter("serve.rejected", &[("reason", "deadline")]),
            rejected_shutdown: registry.counter("serve.rejected", &[("reason", "shutdown")]),
            rejected_version: registry.counter("serve.rejected", &[("reason", "version")]),
            protocol_errors: registry.counter("serve.protocol_errors", &[]),
            fast_hits: registry.counter("serve.fast_hits", &[]),
            l0_hits: registry.counter("serve.l0_hits", &[]),
            in_flight: registry.gauge("serve.in_flight", &[]),
            map_latency: registry.histogram("serve.map.latency", &[]),
            batch_latency: registry.histogram("serve.batch.latency", &[]),
            queue_wait: registry.histogram("serve.queue.wait", &[]),
        }
    }
}

/// Converts an obs histogram reading into the wire [`Histogram`] (identical
/// power-of-two bucket layout).
fn wire_histogram(histogram: &fpfa_obs::Histogram) -> Histogram {
    Histogram {
        buckets: histogram.buckets().to_vec(),
    }
}

/// Bridges the cache and persistence counters (owned by `fpfa-core`, which
/// knows nothing of the registry) into it as snapshot-time callback gauges.
fn register_cache_gauges(registry: &Registry, service: &MappingService) {
    type CacheRead = fn(&fpfa_core::cache::MappingCache) -> u64;
    const READS: &[(&str, CacheRead)] = &[
        ("cache.mapping.hits", |c| c.stats().mapping_hits),
        ("cache.mapping.misses", |c| c.stats().mapping_misses),
        ("cache.post.hits", |c| c.stats().post_transform_hits),
        ("cache.post.misses", |c| c.stats().post_transform_misses),
        ("cache.entries", |c| c.stats().entries),
        ("cache.capacity", |c| c.capacity() as u64),
        ("persist.loads", |c| c.persist_stats().loads),
        ("persist.stores", |c| c.persist_stats().stores),
        ("persist.corrupt_skipped", |c| {
            c.persist_stats().corrupt_skipped
        }),
        ("persist.warm_start_entries", |c| {
            c.persist_stats().warm_start_entries
        }),
        ("persist.compactions", |c| c.persist_stats().compactions),
    ];
    for &(name, read) in READS {
        let cache = Arc::clone(service.cache());
        registry.gauge_fn(name, &[], move || read(&cache));
    }
}

/// Per-shard serving counters (mirrored onto the wire as
/// [`ShardStatsSummary`]), registered under `shard.*` names with a
/// `shard` label.
struct ShardCounters {
    open: fpfa_obs::Gauge,
    accepted: fpfa_obs::Counter,
    served: fpfa_obs::Counter,
    bytes_in: fpfa_obs::Counter,
    bytes_out: fpfa_obs::Counter,
}

impl ShardCounters {
    fn new(registry: &Registry, shard: usize) -> Self {
        let shard = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
        ShardCounters {
            open: registry.gauge("shard.open", labels),
            accepted: registry.counter("shard.accepted", labels),
            served: registry.counter("shard.served", labels),
            bytes_in: registry.counter("shard.bytes_in", labels),
            bytes_out: registry.counter("shard.bytes_out", labels),
        }
    }

    fn summary(&self) -> ShardStatsSummary {
        ShardStatsSummary {
            connections: self.open.get(),
            accepted: self.accepted.get(),
            served: self.served.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
        }
    }
}

// ---------------------------------------------------------------------------
// Jobs and completions
// ---------------------------------------------------------------------------

enum Work {
    One(KernelSource),
    Many(Vec<KernelSource>),
}

struct Job {
    shard: usize,
    conn: usize,
    generation: u64,
    request_id: u64,
    decoded_at: Instant,
    work: Work,
    knobs: MapKnobs,
    /// Whether this request was selected by `--trace-sample`: the worker
    /// then collects per-flow-stage timings for its span breakdown.
    traced: bool,
}

/// Per-flow-stage wall times in microseconds, in flow order.
type StageTimings = Vec<(&'static str, u64)>;

/// Worker-path timing attached to every completion: where the request's
/// time went, measured honestly at each boundary (decode → pop → done →
/// write-back) rather than derived.
struct JobTiming {
    /// Decode → worker-pop wait.
    queue_us: u64,
    /// Worker service time (deadline check + map/batch work).
    service_us: u64,
    /// When the worker finished; the shard derives respond time from it.
    completed_at: Instant,
    /// Per-flow-stage wall times bridged from `FlowContext`, present only
    /// on traced single-map jobs.
    stages: Option<StageTimings>,
}

struct Completion {
    conn: usize,
    generation: u64,
    request_id: u64,
    decoded_at: Instant,
    batch: bool,
    /// Cache epoch the job was processed under; a stale epoch means a
    /// `reset` raced the job, so its warm entry is discarded.
    epoch: u64,
    response: Response,
    /// `(config fingerprint, source, request name, digested answer)` — the
    /// seed of an L0 entry on the owning shard.
    warm: Option<(u64, Arc<str>, Arc<str>, WarmValue)>,
    timing: JobTiming,
}

/// The mailbox through which the acceptor and the workers reach a shard.
struct ShardMailbox {
    inbox: Mutex<Vec<TcpStream>>,
    completions: Mutex<VecDeque<Completion>>,
    wake: WakeSender,
    waker: Mutex<Option<Waker>>,
    counters: ShardCounters,
    /// Ring of recent request summaries, dumped on drain / SIGUSR1 / `dump`.
    flight: FlightRecorder,
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

struct Inner {
    base: MappingService,
    config: ServerConfig,
    addr: SocketAddr,
    queue: JobQueue<Job>,
    stats: ServerStats,
    /// The unified metrics registry every counter above is a handle onto.
    registry: Registry,
    /// Ring-buffer sink for sampled request spans.
    trace: TraceSink,
    shutting_down: AtomicBool,
    workers_done: AtomicBool,
    /// Bumped by `reset`; shards drop their warm tables when it moves.
    cache_epoch: AtomicU64,
    started: Instant,
    shards: Vec<ShardMailbox>,
}

impl Inner {
    /// The service for one request's knobs: the base service's cache shared
    /// under a mapper derived from the daemon's configured mapper.  `tiles`
    /// / `pps` of `0` inherit the daemon defaults; the boolean toggles can
    /// only disable features relative to them.  Building a mapper is a
    /// couple of copies, so no per-knob memoisation is needed.
    fn service_for(&self, knobs: &MapKnobs) -> MappingService {
        let mut mapper = self.base.mapper().clone();
        if knobs.pps != 0 {
            let config = self.base.mapper().config().with_num_pps(knobs.pps as usize);
            mapper = mapper.with_config(config);
        }
        if knobs.tiles != 0 {
            mapper = mapper.with_tiles(knobs.tiles as usize);
        }
        if !knobs.clustering {
            mapper = mapper.without_clustering();
        }
        if !knobs.locality {
            mapper = mapper.without_locality();
        }
        if knobs.verify {
            mapper = mapper.with_verify();
        }
        self.base.with_mapper(mapper)
    }

    fn deadline_of(&self, knobs: &MapKnobs) -> Duration {
        if knobs.deadline_ms > 0 {
            Duration::from_millis(u64::from(knobs.deadline_ms))
        } else {
            self.config.default_deadline
        }
    }

    fn reset_counters(&self) {
        // One sweep over the registry zeroes every counter and histogram —
        // the daemon's, the shards', and the queue-wait tracker — while
        // gauges (`serve.in_flight`, `shard.open`, cache occupancy) keep
        // describing current state.
        self.registry.reset();
        for mailbox in &self.shards {
            mailbox.flight.clear();
        }
        self.trace.clear();
    }

    /// Whether a request id falls in the `--trace-sample` sample.
    fn traced(&self, request_id: u64) -> bool {
        let sample = self.config.trace_sample;
        sample > 0 && request_id.is_multiple_of(u64::from(sample))
    }

    /// Composes the flight-recorder dump across every shard, plus the
    /// sampled trace events.
    fn flight_json(&self) -> String {
        let shards: Vec<(usize, Vec<FlightEntry>)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, mailbox)| (i, mailbox.flight.snapshot()))
            .collect();
        fpfa_obs::dump_json(&shards, &self.trace.to_json())
    }

    fn stats_summary(&self) -> StatsSummary {
        let cache = self.base.stats();
        let persist = self.base.cache().persist_stats();
        StatsSummary {
            connections: self.stats.connections.get(),
            accepted: self.stats.accepted.get(),
            served_ok: self.stats.served_ok.get(),
            served_err: self.stats.served_err.get(),
            verify_failures_map: self.stats.verify_failures_map.get(),
            verify_failures_batch: self.stats.verify_failures_batch.get(),
            rejected_overload: self.stats.rejected_overload.get(),
            rejected_deadline: self.stats.rejected_deadline.get(),
            rejected_shutdown: self.stats.rejected_shutdown.get(),
            rejected_version: self.stats.rejected_version.get(),
            protocol_errors: self.stats.protocol_errors.get(),
            fast_hits: self.stats.fast_hits.get(),
            l0_hits: self.stats.l0_hits.get(),
            persist_loads: persist.loads,
            persist_stores: persist.stores,
            persist_corrupt_skipped: persist.corrupt_skipped,
            persist_warm_start_entries: persist.warm_start_entries,
            persist_compactions: persist.compactions,
            workers: self.config.workers as u64,
            queue_depth: self.config.queue_depth as u64,
            cache_mapping_hits: cache.mapping_hits,
            cache_mapping_misses: cache.mapping_misses,
            cache_post_hits: cache.post_transform_hits,
            cache_post_misses: cache.post_transform_misses,
            cache_entries: cache.entries,
            cache_capacity: self.base.cache().capacity() as u64,
            map_latency: wire_histogram(&self.stats.map_latency),
            batch_latency: wire_histogram(&self.stats.batch_latency),
            shards: self
                .shards
                .iter()
                .map(|mailbox| mailbox.counters.summary())
                .collect(),
        }
    }
}

/// A bound-but-not-yet-running daemon (bind first so callers can learn the
/// OS-assigned port of `addr:0` before serving).
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

/// Control handle for a daemon running on a background thread.
pub struct ServerHandle {
    inner: Arc<Inner>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the daemon is serving on.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Begins a graceful shutdown (idempotent): stop accepting, drain the
    /// queue, answer new work with `ShuttingDown`.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.inner);
    }

    /// A cloneable handle that can begin the same graceful shutdown from
    /// another thread (e.g. a signal watcher) while this handle sits in
    /// [`join`](Self::join).
    pub fn shutdown_trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger {
            inner: Arc::clone(&self.inner),
        }
    }

    /// A snapshot of the daemon's statistics (same payload as the `stats`
    /// verb, without a connection).
    pub fn stats(&self) -> StatsSummary {
        self.inner.stats_summary()
    }

    /// The daemon's metrics registry (same cells the `metrics` verb
    /// renders), for out-of-band snapshots like `--metrics-file`.
    pub fn registry(&self) -> Registry {
        self.inner.registry.clone()
    }

    /// The flight-recorder dump (same JSON as the `dump` verb), for drain-
    /// time and SIGUSR1 snapshots without a connection.
    pub fn flight_json(&self) -> String {
        self.inner.flight_json()
    }

    /// Waits for the daemon to finish draining and exit; returns the final
    /// statistics.
    pub fn join(self) -> StatsSummary {
        let _ = self.thread.join();
        self.inner.stats_summary()
    }
}

/// A detached, cloneable shutdown switch for a running daemon — see
/// [`ServerHandle::shutdown_trigger`].
#[derive(Clone)]
pub struct ShutdownTrigger {
    inner: Arc<Inner>,
}

impl ShutdownTrigger {
    /// Begins the graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        initiate_shutdown(&self.inner);
    }

    /// The flight-recorder dump — available from the detached trigger so a
    /// signal watcher can snapshot on SIGUSR1, and so the final dump can be
    /// taken after [`ServerHandle::join`] consumed the handle.
    pub fn flight_json(&self) -> String {
        self.inner.flight_json()
    }

    /// The daemon's metrics registry, for out-of-band snapshots.
    pub fn registry(&self) -> Registry {
        self.inner.registry.clone()
    }
}

fn initiate_shutdown(inner: &Inner) {
    if inner.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    inner.queue.close();
    // Shards blocked in `wait(None)` re-check the flag once woken.
    for mailbox in &inner.shards {
        mailbox.wake.wake();
    }
    // Unblock the acceptor: it re-checks the flag per connection, so one
    // throwaway connection is enough.
    let _ = TcpStream::connect(inner.addr);
}

impl Server {
    /// Binds the daemon to `addr` (use port 0 for an OS-assigned port).
    ///
    /// # Errors
    /// Propagates socket errors (including the per-shard waker pipes).
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        service: MappingService,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
            default_deadline: config.default_deadline,
            shards: effective_shards(config.shards),
            drain_grace: config.drain_grace,
            trace_sample: config.trace_sample,
            slow_threshold: config.slow_threshold,
            flight_capacity: config.flight_capacity.max(1),
        };
        let registry = Registry::new();
        let stats = ServerStats::new(&registry);
        register_cache_gauges(&registry, &service);
        let mut shards = Vec::with_capacity(config.shards);
        for shard_id in 0..config.shards {
            let waker = Waker::new()?;
            shards.push(ShardMailbox {
                inbox: Mutex::new(Vec::new()),
                completions: Mutex::new(VecDeque::new()),
                wake: waker.sender()?,
                waker: Mutex::new(Some(waker)),
                counters: ShardCounters::new(&registry, shard_id),
                flight: FlightRecorder::new(config.flight_capacity),
            });
        }
        Ok(Server {
            listener,
            inner: Arc::new(Inner {
                base: service,
                config,
                addr: local,
                queue: JobQueue::new(config.queue_depth),
                stats,
                registry,
                trace: TraceSink::new(TRACE_RING_CAPACITY),
                shutting_down: AtomicBool::new(false),
                workers_done: AtomicBool::new(false),
                cache_epoch: AtomicU64::new(0),
                started: Instant::now(),
                shards,
            }),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a graceful shutdown completes: shard and worker threads
    /// spawned, every connection handled, queue drained, all threads joined.
    ///
    /// # Errors
    /// Propagates socket errors from the accept loop and poller-creation
    /// errors discovered at startup.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, inner } = self;

        // Create every poller before spawning anything, so a failure here
        // aborts cleanly instead of leaving threads behind.
        let mut pollers = Vec::with_capacity(inner.config.shards);
        for _ in 0..inner.config.shards {
            pollers.push(Poller::new()?);
        }

        let mut workers = Vec::with_capacity(inner.config.workers);
        for _ in 0..inner.config.workers {
            let inner = Arc::clone(&inner);
            workers.push(std::thread::spawn(move || worker_loop(&inner)));
        }
        let mut shard_threads = Vec::with_capacity(inner.config.shards);
        for (shard_id, poller) in pollers.into_iter().enumerate() {
            let inner = Arc::clone(&inner);
            shard_threads.push(std::thread::spawn(move || {
                shard_loop(&inner, shard_id, poller);
            }));
        }

        let mut outcome = Ok(());
        let mut next_shard = 0usize;
        for stream in listener.incoming() {
            if inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    inner.stats.connections.inc();
                    let mailbox = &inner.shards[next_shard % inner.shards.len()];
                    next_shard = next_shard.wrapping_add(1);
                    lock_state(&mailbox.inbox).push(stream);
                    mailbox.wake.wake();
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    initiate_shutdown(&inner);
                    outcome = Err(e);
                    break;
                }
            }
        }

        // Drain: the queue is closed, workers finish every admitted job and
        // hand the completions to the shards, which write them back within
        // the drain-grace window.
        inner.queue.close();
        for handle in workers {
            let _ = handle.join();
        }
        inner.workers_done.store(true, Ordering::SeqCst);
        for mailbox in &inner.shards {
            mailbox.wake.wake();
        }
        for handle in shard_threads {
            let _ = handle.join();
        }
        outcome
    }

    /// Runs the daemon on a background thread, returning a control handle.
    ///
    /// # Errors
    /// Propagates socket errors discovered while reading the bound address.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let inner = Arc::clone(&self.inner);
        let thread = std::thread::spawn(move || {
            // The handle owns shutdown; accept-loop errors end the thread.
            let _ = self.run();
        });
        Ok(ServerHandle { inner, thread })
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

fn worker_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        // Decode → pop is the queue wait (plus the negligible shard-side
        // validation between decode and push).
        let queue_us = job.decoded_at.elapsed().as_micros() as u64;
        inner.stats.queue_wait.record(queue_us);
        let shard = job.shard.min(inner.shards.len().saturating_sub(1));
        let completion = process_job(inner, job, queue_us);
        let mailbox = &inner.shards[shard];
        lock_state(&mailbox.completions).push_back(completion);
        mailbox.wake.wake();
    }
}

fn process_job(inner: &Inner, job: Job, queue_us: u64) -> Completion {
    let Job {
        conn,
        generation,
        request_id,
        decoded_at,
        work,
        knobs,
        traced,
        ..
    } = job;
    let batch = matches!(work, Work::Many(_));
    let epoch = inner.cache_epoch.load(Ordering::SeqCst);
    let service_started = Instant::now();
    let done = |response: Response,
                warm: Option<(u64, Arc<str>, Arc<str>, WarmValue)>,
                stages: Option<StageTimings>| {
        Completion {
            conn,
            generation,
            request_id,
            decoded_at,
            batch,
            epoch,
            response,
            warm,
            timing: JobTiming {
                queue_us,
                service_us: service_started.elapsed().as_micros() as u64,
                completed_at: Instant::now(),
                stages,
            },
        }
    };

    let deadline = inner.deadline_of(&knobs);
    if !deadline.is_zero() && decoded_at.elapsed() > deadline {
        inner.stats.rejected_deadline.inc();
        return done(
            Response::Error(WireError::DeadlineExceeded {
                budget_ms: deadline.as_millis() as u64,
            }),
            None,
            None,
        );
    }

    let service = inner.service_for(&knobs);
    match work {
        Work::One(kernel) => match serve_map_job(&service, &kernel, &knobs, decoded_at, traced) {
            Ok((summary, value, stages)) => {
                inner.stats.served_ok.inc();
                let fingerprint = service.mapper().cache_fingerprint();
                let warm = Some((
                    fingerprint,
                    Arc::from(kernel.source.as_str()),
                    Arc::from(kernel.name.as_str()),
                    value,
                ));
                done(Response::Mapped(summary), warm, stages)
            }
            Err(error) => {
                let counter = if matches!(error, WireError::VerifyFailed { .. }) {
                    &inner.stats.verify_failures_map
                } else {
                    &inner.stats.served_err
                };
                counter.inc();
                done(Response::Error(error), None, None)
            }
        },
        Work::Many(kernels) => {
            let specs: Vec<KernelSpec> = kernels
                .iter()
                .map(|k| KernelSpec::new(k.name.clone(), k.source.clone()))
                .collect();
            let report = service.map_many(&specs);
            let mut verify_failed = 0usize;
            let entries = report
                .entries
                .iter()
                .zip(&specs)
                .map(|(entry, spec)| BatchEntrySummary {
                    name: entry.name.clone(),
                    outcome: match &entry.outcome {
                        Ok(result) => {
                            let rejection = knobs
                                .verify
                                .then(|| verify_result(&service, &entry.name, &spec.source, result))
                                .flatten();
                            match rejection {
                                Some(error) => {
                                    verify_failed += 1;
                                    Err(error.to_string())
                                }
                                None => Ok(summarize(&entry.name, result, None, decoded_at)),
                            }
                        }
                        Err(error) => Err(error.to_string()),
                    },
                })
                .collect();
            if verify_failed > 0 {
                inner.stats.verify_failures_batch.inc();
            }
            if report.failed() == 0 && verify_failed == 0 {
                inner.stats.served_ok.inc();
            } else if report.failed() > 0 {
                inner.stats.served_err.inc();
            }
            done(
                Response::Batch(BatchSummary {
                    entries,
                    wall_micros: report.wall.as_micros() as u64,
                    deduped: report.deduped as u64,
                }),
                None,
                None,
            )
        }
    }
}

fn serve_map_job(
    service: &MappingService,
    kernel: &KernelSource,
    knobs: &MapKnobs,
    decoded_at: Instant,
    traced: bool,
) -> Result<(MapSummary, WarmValue, Option<StageTimings>), WireError> {
    let (result, outcome) =
        service
            .map_source_shared(&kernel.source)
            .map_err(|error| WireError::MapFailed {
                name: kernel.name.clone(),
                error: error.to_string(),
            })?;
    if knobs.verify {
        if let Some(error) = verify_result(service, &kernel.name, &kernel.source, &result) {
            return Err(error);
        }
    }
    let sim = if knobs.simulate {
        Some(simulate(&result).map_err(|error| WireError::MapFailed {
            name: kernel.name.clone(),
            error,
        })?)
    } else {
        None
    };
    // The per-flow-stage child spans, bridged straight from the
    // `FlowContext` timings the pipeline already collects.  Only sampled
    // requests pay the (small) allocation.
    let stages = traced.then(|| {
        result
            .trace
            .timings
            .iter()
            .map(|timing| (timing.stage, timing.wall.as_micros() as u64))
            .collect()
    });
    let value = WarmValue::of(&result);
    let summary = value.summary(
        kernel.name.clone(),
        CacheFlavor::from(outcome),
        sim,
        decoded_at,
    );
    Ok((summary, value, stages))
}

/// Lints the kernel source and statically verifies its mapping; `Some` is
/// the typed [`WireError::VerifyFailed`] to answer with.
fn verify_result(
    service: &MappingService,
    name: &str,
    source: &str,
    result: &MappingResult,
) -> Option<WireError> {
    // The source mapped, so it parses; an analyzer parse error is
    // unreachable here and degrades to "no lint findings".
    let mut report = fpfa_verify::analyze(source).unwrap_or_default();
    report.merge(fpfa_verify::Verifier::for_mapper(service.mapper()).verify(result));
    if report.is_clean() {
        return None;
    }
    let first = report
        .diagnostics
        .iter()
        .find(|d| d.severity == fpfa_verify::Severity::Deny)
        .map(ToString::to_string)
        .unwrap_or_default();
    Some(WireError::VerifyFailed {
        name: name.to_string(),
        denies: report.deny_count() as u64,
        first,
    })
}

fn summarize(
    name: &str,
    result: &MappingResult,
    sim: Option<SimSummary>,
    decoded_at: Instant,
) -> MapSummary {
    WarmValue::of(result).summary(
        name.to_string(),
        CacheFlavor::from(result.report.cache),
        sim,
        decoded_at,
    )
}

fn simulate(mapping: &MappingResult) -> Result<SimSummary, String> {
    let mut inputs = fpfa_sim::SimInputs::new();
    for (phase, sym) in mapping.layout.arrays().iter().enumerate() {
        inputs.statespace.store_array(
            sym.base,
            &fpfa_workloads::test_signal(sym.len, phase as i64),
        );
    }
    for name in &mapping.program.scalar_input_names {
        inputs.scalars.insert(name.clone(), 1);
    }
    let outcome = match &mapping.multi {
        Some(multi) => fpfa_sim::MultiSimulator::new(&multi.program)
            .run(&inputs)
            .map_err(|e| e.to_string())?,
        None => fpfa_sim::Simulator::new(&mapping.program)
            .run(&inputs)
            .map_err(|e| e.to_string())?,
    };
    let checksum = outcome
        .scalars
        .values()
        .fold(0i64, |acc, v| acc.wrapping_add(*v));
    Ok(SimSummary {
        cycles: outcome.counts.cycles,
        checksum,
    })
}

fn validate(knobs: &MapKnobs, batch_len: usize) -> Result<(), String> {
    if knobs.tiles > MAX_TILES {
        return Err(format!(
            "tiles {} exceeds the {MAX_TILES} limit",
            knobs.tiles
        ));
    }
    if batch_len > MAX_BATCH_KERNELS {
        return Err(format!(
            "batch of {batch_len} kernels exceeds the {MAX_BATCH_KERNELS} limit"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Shard side
// ---------------------------------------------------------------------------

/// The pre-digested answer a shard keeps for a kernel it has served: enough
/// to build a [`MapSummary`] without touching the shared cache or cloning a
/// mapping.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WarmValue {
    digest: u64,
    operations: u64,
    clusters: u64,
    levels: u64,
    cycles: u64,
    tiles: u64,
    inter_tile_transfers: u64,
}

/// One L0 entry: a complete, length-prefixed `Mapped` response frame,
/// pre-encoded once at insert time.  A hit copies the bytes into the write
/// buffer and patches exactly two fields in place — the echoed request id
/// (bytes 4..12, after the length prefix) and `server_micros` (the final 8
/// bytes of a sim-less `MapSummary` body) — so the warm path performs no
/// mapping clone and no protocol re-encode.  `value` is kept so a repeat of
/// the same kernel under a *different* request name can mint its own entry
/// without a shared-cache probe.
#[derive(Clone, Debug)]
struct L0Entry {
    frame: Vec<u8>,
    value: WarmValue,
}

/// One fingerprint's slice of the L0 tier: kernel source → named entries.
type WarmBySource = HashMap<Arc<str>, Vec<(Arc<str>, L0Entry)>>;

impl L0Entry {
    fn of(value: WarmValue, name: &str) -> Self {
        let summary = MapSummary {
            name: name.to_string(),
            digest: value.digest,
            operations: value.operations,
            clusters: value.clusters,
            levels: value.levels,
            cycles: value.cycles,
            tiles: value.tiles,
            inter_tile_transfers: value.inter_tile_transfers,
            cache: CacheFlavor::MappingHit,
            sim: None,
            server_micros: 0,
        };
        let payload = encode_response_frame(0, &Response::Mapped(summary));
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        L0Entry { frame, value }
    }
}

impl WarmValue {
    fn of(result: &MappingResult) -> Self {
        let report = &result.report;
        WarmValue {
            digest: program_digest(result),
            operations: report.operations as u64,
            clusters: report.clusters as u64,
            levels: report.levels as u64,
            cycles: report.cycles as u64,
            tiles: report.tiles.max(1) as u64,
            inter_tile_transfers: report.inter_tile_transfers as u64,
        }
    }

    fn summary(
        &self,
        name: String,
        cache: CacheFlavor,
        sim: Option<SimSummary>,
        decoded_at: Instant,
    ) -> MapSummary {
        MapSummary {
            name,
            digest: self.digest,
            operations: self.operations,
            clusters: self.clusters,
            levels: self.levels,
            cycles: self.cycles,
            tiles: self.tiles,
            inter_tile_transfers: self.inter_tile_transfers,
            cache,
            sim,
            server_micros: decoded_at.elapsed().as_micros() as u64,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ConnState {
    AwaitHello,
    Ready,
}

struct Conn {
    stream: TcpStream,
    fd: RawFd,
    token: usize,
    generation: u64,
    state: ConnState,
    rbuf: FrameBuffer,
    wbuf: Vec<u8>,
    wpos: usize,
    in_flight: u32,
    want_write: bool,
    close_after_flush: bool,
    saw_eof: bool,
}

fn closable(conn: &Conn) -> bool {
    let flushed = conn.wpos >= conn.wbuf.len();
    flushed && (conn.close_after_flush || (conn.saw_eof && conn.in_flight == 0))
}

/// One decoded inbound frame, owned so the read buffer can be re-borrowed.
enum Step {
    HelloOk,
    BadVersion(u32),
    GarbledHello,
    Request(u64, Request),
    Malformed(u64, String),
}

fn shard_loop(inner: &Arc<Inner>, shard_id: usize, mut poller: Poller) {
    let waker = lock_state(&inner.shards[shard_id].waker).take();
    let Some(waker) = waker else { return };
    if poller
        .register(waker.fd(), WAKE_TOKEN, Interest::READ)
        .is_err()
    {
        return;
    }
    let mut rt = ShardRt {
        inner,
        shard_id,
        poller,
        waker,
        conns: Vec::new(),
        generations: Vec::new(),
        free: Vec::new(),
        live: 0,
        warm: HashMap::new(),
        warm_len: 0,
        warm_epoch: inner.cache_epoch.load(Ordering::SeqCst),
        knob_fingerprints: HashMap::new(),
        scratch: vec![0u8; READ_CHUNK],
        drain_deadline: None,
    };
    rt.run();
}

struct ShardRt<'a> {
    inner: &'a Inner,
    shard_id: usize,
    poller: Poller,
    waker: Waker,
    conns: Vec<Option<Conn>>,
    generations: Vec<u64>,
    free: Vec<usize>,
    live: usize,
    /// The L0 tier: config-fingerprint → kernel source → pre-encoded
    /// response frames (one per request name, almost always exactly one).
    warm: HashMap<u64, WarmBySource>,
    warm_len: usize,
    warm_epoch: u64,
    knob_fingerprints: HashMap<(u32, u32, bool, bool), u64>,
    scratch: Vec<u8>,
    drain_deadline: Option<Instant>,
}

impl<'a> ShardRt<'a> {
    fn mailbox(&self) -> &'a ShardMailbox {
        &self.inner.shards[self.shard_id]
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            self.adopt_new_conns();
            self.drain_completions();
            if self.should_exit() {
                break;
            }
            let timeout = self
                .inner
                .shutting_down
                .load(Ordering::SeqCst)
                .then_some(SHUTDOWN_POLL);
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            for &event in &events {
                if event.token == WAKE_TOKEN {
                    self.waker.drain();
                    continue;
                }
                if event.writable {
                    self.handle_writable(event.token);
                }
                if event.readable {
                    self.handle_readable(event.token);
                }
            }
        }
    }

    fn should_exit(&mut self) -> bool {
        if !self.inner.shutting_down.load(Ordering::SeqCst) {
            return false;
        }
        let now = Instant::now();
        let deadline = *self
            .drain_deadline
            .get_or_insert(now + self.inner.config.drain_grace);
        if !self.inner.workers_done.load(Ordering::SeqCst) {
            return false;
        }
        if self.inner.stats.in_flight.get() != 0 {
            return false;
        }
        self.live == 0 || now >= deadline
    }

    fn adopt_new_conns(&mut self) {
        let streams = std::mem::take(&mut *lock_state(&self.mailbox().inbox));
        for stream in streams {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let idx = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            });
            let token = idx + 1;
            if self.poller.register(fd, token, Interest::READ).is_err() {
                self.free.push(idx);
                continue;
            }
            let counters = &self.mailbox().counters;
            counters.accepted.inc();
            counters.open.inc();
            self.conns[idx] = Some(Conn {
                stream,
                fd,
                token,
                generation: self.generations[idx],
                state: ConnState::AwaitHello,
                rbuf: FrameBuffer::new(),
                wbuf: Vec::new(),
                wpos: 0,
                in_flight: 0,
                want_write: false,
                close_after_flush: false,
                saw_eof: false,
            });
            self.live += 1;
        }
    }

    fn drop_conn(&mut self, conn: Conn, idx: usize) {
        let _ = self.poller.deregister(conn.fd);
        self.generations[idx] = self.generations[idx].wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        self.mailbox().counters.open.dec();
    }

    fn handle_readable(&mut self, token: usize) {
        let idx = token.wrapping_sub(1);
        if idx >= self.conns.len() {
            return;
        }
        let Some(mut conn) = self.conns[idx].take() else {
            return;
        };
        let mut keep = self.service_conn(&mut conn, idx);
        if keep {
            keep = self.flush_conn(&mut conn);
        }
        if keep && !closable(&conn) {
            self.conns[idx] = Some(conn);
        } else {
            self.drop_conn(conn, idx);
        }
    }

    fn handle_writable(&mut self, token: usize) {
        let idx = token.wrapping_sub(1);
        if idx >= self.conns.len() {
            return;
        }
        let Some(mut conn) = self.conns[idx].take() else {
            return;
        };
        if self.flush_conn(&mut conn) && !closable(&conn) {
            self.conns[idx] = Some(conn);
        } else {
            self.drop_conn(conn, idx);
        }
    }

    /// Reads everything available, parses complete frames, serves them.
    /// Returns `false` when the connection must be torn down.
    fn service_conn(&mut self, conn: &mut Conn, idx: usize) -> bool {
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.saw_eof = true;
                    break;
                }
                Ok(n) => {
                    self.mailbox().counters.bytes_in.add(n as u64);
                    conn.rbuf.extend(&self.scratch[..n]);
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }

        loop {
            if conn.close_after_flush {
                break;
            }
            let step = match conn.rbuf.next_frame() {
                Ok(None) => break,
                Err(_) => {
                    // An oversized announced length cannot be resynchronised.
                    self.inner.stats.protocol_errors.inc();
                    return false;
                }
                Ok(Some(frame)) => match conn.state {
                    ConnState::AwaitHello => {
                        if Hello::looks_like_hello(frame) {
                            match Hello::decode(frame) {
                                Ok(hello) if hello.version == PROTOCOL_VERSION => Step::HelloOk,
                                Ok(hello) => Step::BadVersion(hello.version),
                                Err(_) => Step::GarbledHello,
                            }
                        } else {
                            // No magic: almost certainly a bare v1 request.
                            Step::BadVersion(1)
                        }
                    }
                    ConnState::Ready => {
                        let id = request_id_of(frame).unwrap_or(UNKNOWN_REQUEST_ID);
                        match decode_request_frame(frame) {
                            Ok((id, request)) => Step::Request(id, request),
                            Err(error) => Step::Malformed(id, error.to_string()),
                        }
                    }
                },
            };
            let decoded_at = Instant::now();
            match step {
                Step::HelloOk => {
                    let ack = HelloAck {
                        version: PROTOCOL_VERSION,
                        shards: self.inner.config.shards as u32,
                        max_in_flight: MAX_CONN_IN_FLIGHT,
                    };
                    self.append_plain(conn, &Response::Hello(ack));
                    conn.state = ConnState::Ready;
                }
                Step::BadVersion(requested) => {
                    self.inner.stats.rejected_version.inc();
                    self.append_plain(
                        conn,
                        &Response::Error(WireError::UnsupportedVersion {
                            requested,
                            supported: PROTOCOL_VERSION,
                        }),
                    );
                    conn.close_after_flush = true;
                }
                Step::GarbledHello => {
                    self.inner.stats.protocol_errors.inc();
                    self.append_plain(
                        conn,
                        &Response::Error(WireError::Invalid("malformed hello".to_string())),
                    );
                    conn.close_after_flush = true;
                }
                Step::Request(id, request) => {
                    self.serve_request(conn, idx, id, request, decoded_at)
                }
                Step::Malformed(id, error) => {
                    // The frame boundary survived, so the stream stays
                    // usable; only this request is answered with `Invalid`.
                    self.inner.stats.protocol_errors.inc();
                    self.append_response(conn, id, &Response::Error(WireError::Invalid(error)));
                }
            }
        }
        true
    }

    fn serve_request(
        &mut self,
        conn: &mut Conn,
        idx: usize,
        id: u64,
        request: Request,
        decoded_at: Instant,
    ) {
        let inner = self.inner;
        match request {
            Request::Stats => {
                let stats = inner.stats_summary();
                self.finish_control(conn, id, &Response::Stats(stats), decoded_at, "stats");
            }
            Request::Health => {
                let health = HealthSummary {
                    uptime_micros: inner.started.elapsed().as_micros() as u64,
                    in_flight: inner.stats.in_flight.get(),
                    draining: inner.shutting_down.load(Ordering::SeqCst),
                };
                self.finish_control(conn, id, &Response::Health(health), decoded_at, "health");
            }
            Request::Metrics { format } => {
                let body = match format {
                    MetricsFormat::Prometheus => inner.registry.render_prometheus(),
                    MetricsFormat::Json => inner.registry.render_json(),
                };
                self.finish_control(
                    conn,
                    id,
                    &Response::Metrics { format, body },
                    decoded_at,
                    "metrics",
                );
            }
            Request::Dump => {
                let json = inner.flight_json();
                self.finish_control(conn, id, &Response::Dump { json }, decoded_at, "dump");
            }
            Request::Reset => {
                let dropped = inner.base.clear_cache() as u64;
                inner.base.cache().reset_stats();
                inner.reset_counters();
                inner.cache_epoch.fetch_add(1, Ordering::SeqCst);
                self.sync_epoch();
                // Wake the other shards so they drop their warm tables
                // promptly instead of at their next map request.
                for (i, mailbox) in inner.shards.iter().enumerate() {
                    if i != self.shard_id {
                        mailbox.wake.wake();
                    }
                }
                self.finish_control(
                    conn,
                    id,
                    &Response::ResetDone {
                        dropped_entries: dropped,
                    },
                    decoded_at,
                    "reset",
                );
            }
            Request::Shutdown => {
                initiate_shutdown(inner);
                self.finish_control(conn, id, &Response::ShutdownStarted, decoded_at, "shutdown");
            }
            Request::Map { kernel, knobs } => {
                self.serve_map(conn, idx, id, kernel, knobs, decoded_at)
            }
            Request::Batch { kernels, knobs } => {
                if kernels.is_empty() {
                    let response = Response::Error(WireError::Invalid("empty batch".to_string()));
                    self.finish(conn, id, &response, decoded_at, true, None);
                    return;
                }
                if let Err(reason) = validate(&knobs, kernels.len()) {
                    let response = Response::Error(WireError::Invalid(reason));
                    self.finish(conn, id, &response, decoded_at, true, None);
                    return;
                }
                if knobs.simulate {
                    let response = Response::Error(WireError::Invalid(
                        "simulate is not supported for batches".to_string(),
                    ));
                    self.finish(conn, id, &response, decoded_at, true, None);
                    return;
                }
                self.submit_job(conn, idx, id, Work::Many(kernels), knobs, decoded_at);
            }
        }
    }

    /// The map fast path: warm table, then a shared-cache probe, then the
    /// queue.  `simulate` requests always take the queue — simulation is
    /// real compute that must not stall the I/O loop.
    fn serve_map(
        &mut self,
        conn: &mut Conn,
        idx: usize,
        id: u64,
        kernel: KernelSource,
        knobs: MapKnobs,
        decoded_at: Instant,
    ) {
        let inner = self.inner;
        if let Err(reason) = validate(&knobs, 1) {
            let response = Response::Error(WireError::Invalid(reason));
            self.finish(conn, id, &response, decoded_at, false, None);
            return;
        }
        if inner.shutting_down.load(Ordering::SeqCst) {
            inner.stats.rejected_shutdown.inc();
            let response = Response::Error(WireError::ShuttingDown);
            self.finish(conn, id, &response, decoded_at, false, None);
            return;
        }
        // Verify requests must actually verify: the warm tables hold digested
        // answers, not full mappings, so they cannot vouch for legality.
        if !knobs.simulate && !knobs.verify {
            self.sync_epoch();
            let fingerprint = self.fingerprint_of(&knobs);
            // L0: a repeat of (knobs, source, name) is answered by copying
            // the pre-encoded frame — no summary build, no encode.
            if let Some(entries) = self
                .warm
                .get(&fingerprint)
                .and_then(|table| table.get(kernel.source.as_str()))
            {
                if let Some((_, entry)) = entries.iter().find(|(n, _)| **n == *kernel.name) {
                    let frame = entry.frame.clone();
                    inner.stats.l0_hits.inc();
                    inner.stats.fast_hits.inc();
                    inner.base.cache().note_shard_hit();
                    inner.stats.served_ok.inc();
                    self.finish_preencoded(conn, id, &frame, decoded_at);
                    return;
                }
                // Same kernel under a new name: mint an entry from the
                // digested answer we already hold, still without touching
                // the shared cache.
                if let Some(value) = entries.first().map(|(_, e)| e.value) {
                    inner.stats.l0_hits.inc();
                    inner.stats.fast_hits.inc();
                    inner.base.cache().note_shard_hit();
                    inner.stats.served_ok.inc();
                    let name: Arc<str> = Arc::from(kernel.name.as_str());
                    let entry = L0Entry::of(value, &name);
                    let frame = entry.frame.clone();
                    self.warm_insert(fingerprint, Arc::from(kernel.source.as_str()), name, entry);
                    self.finish_preencoded(conn, id, &frame, decoded_at);
                    return;
                }
            }
            // L1: the shared in-memory cache (zero-copy `Arc` hit).  The
            // answer is digested into a fresh L0 entry for next time.
            let cache = inner.base.cache();
            let lookup = cache.prepare(&kernel.source, fingerprint);
            if let Some(result) = cache.peek_prepared(&lookup) {
                cache.note_shard_hit();
                inner.stats.fast_hits.inc();
                inner.stats.served_ok.inc();
                let name: Arc<str> = Arc::from(kernel.name.as_str());
                let entry = L0Entry::of(WarmValue::of(&result), &name);
                let frame = entry.frame.clone();
                self.warm_insert(fingerprint, Arc::from(kernel.source.as_str()), name, entry);
                self.finish_preencoded(conn, id, &frame, decoded_at);
                return;
            }
        }
        self.submit_job(conn, idx, id, Work::One(kernel), knobs, decoded_at);
    }

    fn submit_job(
        &mut self,
        conn: &mut Conn,
        idx: usize,
        id: u64,
        work: Work,
        knobs: MapKnobs,
        decoded_at: Instant,
    ) {
        let inner = self.inner;
        let batch = matches!(work, Work::Many(_));
        if conn.in_flight >= MAX_CONN_IN_FLIGHT {
            inner.stats.rejected_overload.inc();
            let response = Response::Error(WireError::Overloaded {
                queue_depth: u64::from(MAX_CONN_IN_FLIGHT),
            });
            self.finish(conn, id, &response, decoded_at, batch, None);
            return;
        }
        inner.stats.in_flight.inc();
        let job = Job {
            shard: self.shard_id,
            conn: idx,
            generation: conn.generation,
            request_id: id,
            decoded_at,
            work,
            knobs,
            traced: inner.traced(id),
        };
        match inner.queue.try_push(job) {
            Ok(()) => {
                inner.stats.accepted.inc();
                conn.in_flight += 1;
            }
            Err(refused) => {
                inner.stats.in_flight.dec();
                let response = match refused {
                    PushRefused::Full => {
                        inner.stats.rejected_overload.inc();
                        Response::Error(WireError::Overloaded {
                            queue_depth: inner.config.queue_depth as u64,
                        })
                    }
                    PushRefused::Closed => {
                        inner.stats.rejected_shutdown.inc();
                        Response::Error(WireError::ShuttingDown)
                    }
                };
                self.finish(conn, id, &response, decoded_at, batch, None);
            }
        }
    }

    fn drain_completions(&mut self) {
        let inner = self.inner;
        let mut completions = std::mem::take(&mut *lock_state(&self.mailbox().completions));
        if completions.is_empty() {
            return;
        }
        let current_epoch = inner.cache_epoch.load(Ordering::SeqCst);
        let mut touched: Vec<usize> = Vec::with_capacity(completions.len());
        for completion in completions.drain(..) {
            inner.stats.in_flight.dec();
            if completion.epoch == current_epoch {
                if let Some((fingerprint, source, name, value)) = completion.warm {
                    let entry = L0Entry::of(value, &name);
                    self.warm_insert(fingerprint, source, name, entry);
                }
            }
            let idx = completion.conn;
            let alive = self
                .conns
                .get(idx)
                .and_then(|slot| slot.as_ref())
                .is_some_and(|c| c.generation == completion.generation);
            if !alive {
                continue;
            }
            let Some(mut conn) = self.conns[idx].take() else {
                continue;
            };
            conn.in_flight = conn.in_flight.saturating_sub(1);
            self.finish(
                &mut conn,
                completion.request_id,
                &completion.response,
                completion.decoded_at,
                completion.batch,
                Some(&completion.timing),
            );
            self.conns[idx] = Some(conn);
            touched.push(idx);
        }
        touched.sort_unstable();
        touched.dedup();
        for idx in touched {
            let Some(mut conn) = self.conns[idx].take() else {
                continue;
            };
            if self.flush_conn(&mut conn) && !closable(&conn) {
                self.conns[idx] = Some(conn);
            } else {
                self.drop_conn(conn, idx);
            }
        }
    }

    /// Appends a response frame, records its decode → write-back latency,
    /// and feeds the observability sinks (flight ring, trace ring, slow
    /// log).  `timing` carries the worker-side decomposition when the
    /// request went through the queue; shard-side rejections pass `None`.
    fn finish(
        &mut self,
        conn: &mut Conn,
        id: u64,
        response: &Response,
        decoded_at: Instant,
        batch: bool,
        timing: Option<&JobTiming>,
    ) {
        let bytes = self.append_response(conn, id, response);
        let micros = decoded_at.elapsed().as_micros() as u64;
        if batch {
            self.inner.stats.batch_latency.record(micros);
        } else {
            self.inner.stats.map_latency.record(micros);
        }
        let verb = if batch { "batch" } else { "map" };
        let outcome = match response {
            Response::Error(_) => "error",
            _ => "ok",
        };
        self.observe(id, verb, outcome, micros, bytes, timing);
    }

    /// Appends a control-verb response (stats, health, metrics, …).  These
    /// land in the flight recorder so a dump shows the whole conversation,
    /// but stay out of the map/batch latency histograms so the serving
    /// percentiles keep describing real mapping work.
    fn finish_control(
        &mut self,
        conn: &mut Conn,
        id: u64,
        response: &Response,
        decoded_at: Instant,
        verb: &'static str,
    ) {
        let bytes = self.append_response(conn, id, response);
        let micros = decoded_at.elapsed().as_micros() as u64;
        self.observe(id, verb, "ok", micros, bytes, None);
    }

    /// Feeds one finished request into the observability sinks: a flight
    /// entry on this shard's ring always; trace spans and the slow-request
    /// log only when the worker-side timing is available.
    fn observe(
        &mut self,
        id: u64,
        verb: &'static str,
        outcome: &'static str,
        e2e_us: u64,
        bytes: u64,
        timing: Option<&JobTiming>,
    ) {
        let inner = self.inner;
        self.mailbox().flight.record(FlightEntry {
            id,
            verb,
            outcome,
            queue_us: timing.map_or(0, |t| t.queue_us),
            e2e_us,
            bytes,
            at_us: inner.started.elapsed().as_micros() as u64,
        });
        let Some(timing) = timing else {
            return;
        };
        let respond_us = timing.completed_at.elapsed().as_micros() as u64;
        if inner.traced(id) {
            // Reconstruct the span tree from the boundary timestamps: the
            // request span covers decode → write-back, its children lay the
            // queue wait, the worker service (with the flow stages nested
            // inside it) and the write-back transit end to end.
            let now = inner.trace.now_us();
            let start = now.saturating_sub(e2e_us);
            inner.trace.record(SpanEvent {
                trace_id: id,
                name: "request",
                start_us: start,
                dur_us: e2e_us,
            });
            inner.trace.record(SpanEvent {
                trace_id: id,
                name: "queue.wait",
                start_us: start,
                dur_us: timing.queue_us,
            });
            inner.trace.record(SpanEvent {
                trace_id: id,
                name: "map.service",
                start_us: start + timing.queue_us,
                dur_us: timing.service_us,
            });
            if let Some(stages) = &timing.stages {
                let mut stage_start = start + timing.queue_us;
                for &(stage, wall) in stages {
                    inner.trace.record(SpanEvent {
                        trace_id: id,
                        name: stage,
                        start_us: stage_start,
                        dur_us: wall,
                    });
                    stage_start += wall;
                }
            }
            inner.trace.record(SpanEvent {
                trace_id: id,
                name: "respond",
                start_us: now.saturating_sub(respond_us),
                dur_us: respond_us,
            });
        }
        let threshold = inner.config.slow_threshold;
        if !threshold.is_zero() && Duration::from_micros(e2e_us) >= threshold {
            let stages = timing.stages.as_deref().unwrap_or(&[]);
            let mut stage_list = String::new();
            for (i, (stage, wall)) in stages.iter().enumerate() {
                if i > 0 {
                    stage_list.push(',');
                }
                stage_list.push_str(stage);
                stage_list.push(':');
                stage_list.push_str(&wall.to_string());
            }
            eprintln!(
                "fpfa-serve: slow-request id={id} verb={verb} outcome={outcome} \
                 e2e_us={e2e_us} queue_us={} map_us={} respond_us={respond_us} \
                 stages={stage_list}",
                timing.queue_us, timing.service_us,
            );
        }
    }

    fn append_response(&mut self, conn: &mut Conn, id: u64, response: &Response) -> u64 {
        let payload = encode_response_frame(id, response);
        self.append_frame(conn, &payload)
    }

    /// A raw (un-id'd) frame — only the handshake speaks these.
    fn append_plain(&mut self, conn: &mut Conn, response: &Response) {
        let payload = response.encode();
        self.append_frame(conn, &payload);
    }

    /// Returns the number of bytes buffered (payload plus length prefix).
    fn append_frame(&mut self, conn: &mut Conn, payload: &[u8]) -> u64 {
        conn.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        conn.wbuf.extend_from_slice(payload);
        self.mailbox().counters.served.inc();
        payload.len() as u64 + 4
    }

    /// Writes as much of the buffered output as the socket accepts,
    /// toggling write interest when it backs up.  Returns `false` when the
    /// connection must be torn down.
    fn flush_conn(&mut self, conn: &mut Conn) -> bool {
        while conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.wpos += n;
                    self.mailbox().counters.bytes_out.add(n as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if conn.wpos >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            if conn.want_write {
                conn.want_write = false;
                if self
                    .poller
                    .reregister(conn.fd, conn.token, Interest::READ)
                    .is_err()
                {
                    return false;
                }
            }
        } else {
            if conn.wbuf.len() - conn.wpos > WBUF_LIMIT {
                return false;
            }
            if conn.wpos > READ_CHUNK {
                conn.wbuf.drain(..conn.wpos);
                conn.wpos = 0;
            }
            if !conn.want_write {
                conn.want_write = true;
                if self
                    .poller
                    .reregister(conn.fd, conn.token, Interest::READ_WRITE)
                    .is_err()
                {
                    return false;
                }
            }
        }
        true
    }

    /// Drops the warm table when a `reset` moved the cache epoch.
    fn sync_epoch(&mut self) {
        let epoch = self.inner.cache_epoch.load(Ordering::SeqCst);
        if epoch != self.warm_epoch {
            self.warm.clear();
            self.warm_len = 0;
            self.warm_epoch = epoch;
        }
    }

    /// The cache fingerprint of the mapper a knob set derives, memoised per
    /// shard so the fast path never rebuilds a mapper.
    fn fingerprint_of(&mut self, knobs: &MapKnobs) -> u64 {
        let quad = (knobs.tiles, knobs.pps, knobs.clustering, knobs.locality);
        if let Some(&fingerprint) = self.knob_fingerprints.get(&quad) {
            return fingerprint;
        }
        let fingerprint = self.inner.service_for(knobs).mapper().cache_fingerprint();
        self.knob_fingerprints.insert(quad, fingerprint);
        fingerprint
    }

    fn warm_insert(&mut self, fingerprint: u64, source: Arc<str>, name: Arc<str>, entry: L0Entry) {
        if self.warm_len >= WARM_CAPACITY {
            self.warm.clear();
            self.warm_len = 0;
        }
        let entries = self
            .warm
            .entry(fingerprint)
            .or_default()
            .entry(source)
            .or_default();
        if let Some(slot) = entries.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = entry;
        } else {
            entries.push((name, entry));
            self.warm_len += 1;
        }
    }

    /// Serves an L0 hit: copies the pre-encoded frame into the write buffer
    /// and patches the two per-request fields in place — the echoed id
    /// (bytes 4..12, after the length prefix) and `server_micros` (the
    /// trailing 8 bytes of a sim-less `Mapped` body).  Bypasses
    /// [`append_frame`](Self::append_frame), so the served counter and the
    /// map-latency histogram are maintained here.
    fn finish_preencoded(&mut self, conn: &mut Conn, id: u64, frame: &[u8], decoded_at: Instant) {
        let start = conn.wbuf.len();
        conn.wbuf.extend_from_slice(frame);
        conn.wbuf[start + 4..start + 12].copy_from_slice(&id.to_le_bytes());
        let micros = decoded_at.elapsed().as_micros() as u64;
        let end = conn.wbuf.len();
        conn.wbuf[end - 8..end].copy_from_slice(&micros.to_le_bytes());
        self.mailbox().counters.served.inc();
        self.inner.stats.map_latency.record(micros);
        self.observe(id, "map", "l0", micros, frame.len() as u64, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_admission_is_immediate_and_bounded() {
        let queue: JobQueue<u32> = JobQueue::new(2);
        assert_eq!(queue.try_push(1), Ok(()));
        assert_eq!(queue.try_push(2), Ok(()));
        assert_eq!(queue.try_push(3), Err(PushRefused::Full));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.try_push(3), Ok(()));
        queue.close();
        assert_eq!(queue.try_push(4), Err(PushRefused::Closed));
        // Closing drains what was admitted before signalling exit.
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn queue_pop_blocks_until_push() {
        let queue: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(1));
        let popper = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.try_push(7), Ok(()));
        assert_eq!(popper.join().unwrap(), Some(7));

        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn knob_validation_rejects_out_of_range() {
        let good = MapKnobs::default();
        assert!(validate(&good, 1).is_ok());
        // 0 is the "inherit the daemon default" sentinel, not an error.
        let inherit_tiles = MapKnobs { tiles: 0, ..good };
        assert!(validate(&inherit_tiles, 1).is_ok());
        let huge = MapKnobs {
            tiles: MAX_TILES + 1,
            ..good
        };
        assert!(validate(&huge, 1).is_err());
        assert!(validate(&good, MAX_BATCH_KERNELS + 1).is_err());
    }

    #[test]
    fn shard_auto_selection_is_capped() {
        assert!(effective_shards(0) >= 1);
        assert!(effective_shards(0) <= MAX_AUTO_SHARDS);
        assert_eq!(effective_shards(3), 3);
        assert_eq!(effective_shards(10_000), MAX_SHARDS);
    }
}
