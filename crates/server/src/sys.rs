//! Readiness polling over raw file descriptors with no external crates.
//!
//! The serving loop needs one thing the standard library does not expose:
//! "block until any of these sockets is readable or writable".  This module
//! provides it as [`Poller`], backed by:
//!
//! * **`epoll`** on Linux, declared as thin `extern "C"` bindings against
//!   the platform C library the binary already links (no `libc` crate).
//!   Registration is level-triggered, so the event loop never misses a
//!   readiness edge it has not fully drained.
//! * **`poll(2)`** everywhere else on Unix, with the interest set kept in a
//!   small map and rebuilt into a `pollfd` array per wait — slower per call
//!   but identical in semantics, which keeps the server portable.
//!
//! [`Waker`] lets other threads (the acceptor handing over fresh
//! connections, workers publishing completions) interrupt a blocked
//! [`Poller::wait`]: it is a nonblocking [`UnixStream`] pair whose read end
//! is registered like any other fd under the reserved [`WAKE_TOKEN`].
//!
//! This is the only module in the crate allowed to use `unsafe` (the crate
//! is `deny(unsafe_code)` with a scoped allow here): the `extern` syscalls
//! take only plain integers and a pointer/length pair into memory this
//! module owns, and every return value is checked.

use std::io;
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;

/// The token [`Waker`] registrations conventionally use; real connections
/// start their tokens above it.
pub const WAKE_TOKEN: usize = 0;

/// One readiness event: the token the fd was registered under plus what it
/// is ready for.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The caller-chosen token from [`Poller::register`].
    pub token: usize,
    /// The fd is readable (or has a pending error/hangup to read out).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
}

/// The readiness interest registered for an fd.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest {
    /// Wake when the fd becomes readable.
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — a connection with a backed-up write buffer.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// A pair of connected nonblocking sockets used to interrupt a blocked
/// [`Poller::wait`] from another thread.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// Creates the pair; both ends are nonblocking.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The fd to register with the poller (under [`WAKE_TOKEN`]).
    pub fn fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Interrupts the poller.  A full pipe means a wake is already pending,
    /// which is exactly as good as another one.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Drains pending wake bytes after the poller reported the wake fd
    /// readable, re-arming it for the next wake.
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    /// A new send-only handle, for handing to another thread.  Each thread
    /// that needs to wake this poller gets its own.
    pub fn sender(&self) -> io::Result<WakeSender> {
        Ok(WakeSender {
            tx: self.tx.try_clone()?,
        })
    }
}

/// The send-only half of a [`Waker`].
#[derive(Debug)]
pub struct WakeSender {
    tx: UnixStream,
}

impl WakeSender {
    /// Interrupts the poller this sender's [`Waker`] is registered with.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

pub use backend::Poller;

#[cfg(target_os = "linux")]
mod backend {
    //! `epoll`, bound directly against the platform C library.

    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`.  On x86 the kernel ABI packs the
    /// 64-bit data field against the 32-bit event mask.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Most events one [`Poller::wait`] returns; further readiness is
    /// reported by the next (level-triggered) wait.
    const MAX_EVENTS: usize = 256;

    /// Readiness poller backed by an `epoll` instance (level-triggered).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        /// Kernel-filled event buffer; `u64` storage guarantees alignment
        /// for [`EpollEvent`] on every target (2 slots ≥ one event).
        scratch: Vec<u64>,
    }

    impl Poller {
        /// Creates the epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: no pointers; the returned fd is checked and owned.
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                scratch: vec![0u64; MAX_EVENTS * 2],
            })
        }

        /// Starts watching `fd` under `token`.
        ///
        /// # Errors
        /// The raw `epoll_ctl` errno (e.g. an already registered fd).
        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Updates the interest of an already watched `fd`.
        ///
        /// # Errors
        /// The raw `epoll_ctl` errno (e.g. an unregistered fd).
        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        /// The raw `epoll_ctl` errno (e.g. an unregistered fd).
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: the event pointer is to a live stack value; kernels
            // before 2.6.9 require it non-null even for DEL.
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
            Ok(())
        }

        fn ctl(&mut self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: token as u64,
            };
            // SAFETY: the event pointer is to a live stack value; the fd
            // and op are plain integers validated by the kernel.
            check(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        /// Blocks until at least one watched fd is ready, the `timeout`
        /// lapses (`None` = forever), or a [`Waker`](super::Waker) fires;
        /// fills `events` (cleared first) with the readiness found.
        ///
        /// # Errors
        /// The raw `epoll_wait` errno.  `EINTR` is swallowed (reported as
        /// zero events).
        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let timeout_ms = match timeout {
                None => -1,
                Some(t) => {
                    let ms = t.as_millis().min(i32::MAX as u128) as i32;
                    // Round a sub-millisecond timeout up to 1 ms: 0 would
                    // return immediately and busy-spin the loop.
                    if ms == 0 && !t.is_zero() {
                        1
                    } else {
                        ms
                    }
                }
            };
            let buf = self.scratch.as_mut_ptr().cast::<EpollEvent>();
            // SAFETY: `scratch` holds MAX_EVENTS * 16 bytes, matching the
            // maxevents passed; the kernel writes at most that many events.
            let n =
                match check(unsafe { epoll_wait(self.epfd, buf, MAX_EVENTS as i32, timeout_ms) }) {
                    Ok(n) => n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
            for i in 0..n {
                // SAFETY: `i < n <= MAX_EVENTS`, within the kernel-filled
                // prefix; read_unaligned because the struct is packed on
                // x86.
                let ev = unsafe { buf.add(i).read_unaligned() };
                events.push(Event {
                    token: ev.data as usize,
                    // Errors and hangups surface as readable: the next read
                    // returns 0/Err and the connection is torn down.
                    readable: ev.events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: ev.events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing the fd this struct exclusively owns.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    //! `poll(2)` fallback: the interest set lives in a map and is rebuilt
    //! into a `pollfd` array per wait.

    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Readiness poller backed by `poll(2)`.
    #[derive(Debug)]
    pub struct Poller {
        interests: HashMap<RawFd, (usize, Interest)>,
    }

    impl Poller {
        /// Creates an empty interest set.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                interests: HashMap::new(),
            })
        }

        /// Starts watching `fd` under `token`.
        ///
        /// # Errors
        /// Never fails on this backend.
        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.interests.insert(fd, (token, interest));
            Ok(())
        }

        /// Updates the interest of an already watched `fd`.
        ///
        /// # Errors
        /// Never fails on this backend.
        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.interests.insert(fd, (token, interest));
            Ok(())
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        /// Never fails on this backend.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.interests.remove(&fd);
            Ok(())
        }

        /// Blocks until at least one watched fd is ready or the `timeout`
        /// lapses (`None` = forever); fills `events` (cleared first).
        ///
        /// # Errors
        /// The raw `poll` errno; `EINTR` is swallowed.
        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let mut fds: Vec<PollFd> = self
                .interests
                .iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let timeout_ms = match timeout {
                None => -1,
                Some(t) => (t.as_millis().min(i32::MAX as u128) as i32).max(1),
            };
            // SAFETY: the pointer/length pair describes the live `fds`
            // vector; the kernel only writes the `revents` fields.
            let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if ret < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                if let Some(&(token, _)) = self.interests.get(&pfd.fd) {
                    events.push(Event {
                        token,
                        readable: pfd.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                        writable: pfd.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

/// Process signals (`SIGTERM`/`SIGINT`/`SIGUSR1`) delivered as a blocking
/// read instead of an async handler, so a daemon can drain gracefully (or,
/// for `SIGUSR1`, dump diagnostics and keep serving).
///
/// On Linux this is a `signalfd(2)`: [`TermSignals::install`] masks all
/// three signals in the calling thread (threads spawned afterwards inherit
/// the mask, so nothing in the process dies to the default disposition) and
/// opens a descriptor that a dedicated thread reads with
/// [`TermSignals::wait`].  On other Unixes the type still builds but
/// `install` reports [`io::ErrorKind::Unsupported`] — callers fall back to
/// client-driven shutdown (the `shutdown` verb).
#[derive(Debug)]
pub struct TermSignals {
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    fd: RawFd,
}

/// `SIGINT`, numerically (identical on every Linux architecture).
pub const SIGINT: i32 = 2;
/// `SIGUSR1`, numerically (identical on every Linux architecture).
pub const SIGUSR1: i32 = 10;
/// `SIGTERM`, numerically (identical on every Linux architecture).
pub const SIGTERM: i32 = 15;

#[cfg(target_os = "linux")]
mod sig {
    use super::{RawFd, SIGINT, SIGTERM, SIGUSR1};
    use std::io;

    const SIG_BLOCK: i32 = 0;
    const SFD_CLOEXEC: i32 = 0o2000000;
    /// Glibc and musl both define `sigset_t` as no more than 128 bytes; the
    /// kernel only reads the first `_NSIG / 8 = 8` of them.
    const SIGSET_WORDS: usize = 16;

    extern "C" {
        fn pthread_sigmask(how: i32, set: *const u64, old: *mut u64) -> i32;
        fn signalfd(fd: i32, mask: *const u64, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn sigset_of(signals: &[i32]) -> [u64; SIGSET_WORDS] {
        let mut set = [0u64; SIGSET_WORDS];
        for &signo in signals {
            let bit = (signo - 1) as usize;
            set[bit / 64] |= 1 << (bit % 64);
        }
        set
    }

    pub fn install() -> io::Result<RawFd> {
        let set = sigset_of(&[SIGTERM, SIGINT, SIGUSR1]);
        // SAFETY: the set pointer is to a live, fully initialised array at
        // least as large as the platform `sigset_t`; no old mask requested.
        let rc = unsafe { pthread_sigmask(SIG_BLOCK, set.as_ptr(), std::ptr::null_mut()) };
        if rc != 0 {
            return Err(io::Error::from_raw_os_error(rc));
        }
        // SAFETY: same set pointer; -1 asks for a fresh descriptor, and the
        // returned fd is checked and owned by the caller.
        let fd = unsafe { signalfd(-1, set.as_ptr(), SFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn wait(fd: RawFd) -> io::Result<i32> {
        // `struct signalfd_siginfo` is fixed at 128 bytes; `ssi_signo` is
        // its leading `u32`.
        let mut info = [0u8; 128];
        loop {
            // SAFETY: the buffer is a live 128-byte array, exactly the size
            // signalfd requires per record.
            let n = unsafe { read(fd, info.as_mut_ptr(), info.len()) };
            if n == 128 {
                return Ok(i32::from_le_bytes([info[0], info[1], info[2], info[3]]));
            }
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short signalfd read",
            ));
        }
    }

    pub fn destroy(fd: RawFd) {
        // SAFETY: closing the fd this module handed out and exclusively
        // owns.
        unsafe {
            close(fd);
        }
    }
}

impl TermSignals {
    /// Masks `SIGTERM`/`SIGINT`/`SIGUSR1` in the calling thread and opens
    /// the signal descriptor.  Call before spawning any other thread so the
    /// mask is inherited process-wide.
    ///
    /// # Errors
    /// The raw `pthread_sigmask`/`signalfd` errno on Linux;
    /// [`io::ErrorKind::Unsupported`] elsewhere.
    pub fn install() -> io::Result<TermSignals> {
        #[cfg(target_os = "linux")]
        {
            Ok(TermSignals {
                fd: sig::install()?,
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "signalfd is Linux-only",
            ))
        }
    }

    /// Blocks until a masked signal arrives; returns its number
    /// ([`SIGTERM`], [`SIGINT`] or [`SIGUSR1`]).
    ///
    /// # Errors
    /// The raw `read` errno (`EINTR` is retried internally).
    pub fn wait(&self) -> io::Result<i32> {
        #[cfg(target_os = "linux")]
        {
            sig::wait(self.fd)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "signalfd is Linux-only",
            ))
        }
    }
}

impl Drop for TermSignals {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        sig::destroy(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn poller_reports_readable_after_peer_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: a short wait times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn term_signals_deliver_sigterm_via_descriptor() {
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        let signals = TermSignals::install().unwrap();
        // SAFETY: raising a signal this thread has just masked — it stays
        // pending (thread-directed, so no other test thread sees it) until
        // the signalfd read collects it.
        unsafe {
            raise(SIGTERM);
        }
        assert_eq!(signals.wait().unwrap(), SIGTERM);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn term_signals_deliver_sigusr1_via_descriptor() {
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        let signals = TermSignals::install().unwrap();
        // SAFETY: as above — the signal is masked in this thread, so it
        // stays pending until the signalfd read collects it.
        unsafe {
            raise(SIGUSR1);
        }
        assert_eq!(signals.wait().unwrap(), SIGUSR1);
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let waker = Waker::new().unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(waker.fd(), WAKE_TOKEN, Interest::READ)
            .unwrap();

        let sender = waker.sender().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            sender.wake();
        });

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN && e.readable));
        waker.drain();
        handle.join().unwrap();

        // Drained: the next wait times out instead of spinning on a stale
        // readable wake fd.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != WAKE_TOKEN));
    }

    #[test]
    fn write_interest_fires_for_a_fresh_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(client.as_raw_fd(), 3, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        // A fresh socket's send buffer is empty, so it is writable at once.
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        // Dropping write interest stops the write events.
        poller
            .reregister(client.as_raw_fd(), 3, Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 3 || !e.writable));
    }
}
