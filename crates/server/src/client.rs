//! Client for the `fpfa-serve` protocol (v2, pipelined).
//!
//! One [`Client`] owns one connection.  The core API is pipelined:
//! [`submit`](Client::submit) queues a request and returns a [`Ticket`];
//! [`wait`](Client::wait) flushes and reads responses until the ticket's
//! answer arrives, stashing any responses that complete out of order for
//! their own tickets.  The blocking one-call verbs ([`map`](Client::map),
//! [`stats`](Client::stats), …) are thin `submit` + `wait` wrappers.
//!
//! Connecting performs the v2 handshake (magic + version): a server that
//! does not speak this client's version answers with a typed
//! [`WireError::UnsupportedVersion`], surfaced as [`ClientError::Server`].

use crate::protocol::{
    decode_response_frame, encode_request_frame, read_frame, write_frame, BatchSummary, FrameError,
    HealthSummary, Hello, HelloAck, KernelSource, MapKnobs, MapSummary, MetricsFormat,
    ProtocolError, Request, Response, StatsSummary, WireError,
};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server sent bytes that do not decode as a response.
    Protocol(ProtocolError),
    /// The server closed the connection instead of answering.
    Disconnected,
    /// The server answered with a typed error.
    Server(WireError),
    /// The server answered with a response of the wrong kind.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => f.write_str("server closed the connection"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(kind) => write!(f, "unexpected response kind: {kind}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            FrameError::TooLarge { len } => ClientError::Protocol(ProtocolError::BadLength {
                context: "response frame",
                len,
            }),
        }
    }
}

/// A claim on one in-flight request's response; redeem it with
/// [`Client::wait`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ticket {
    id: u64,
}

impl Ticket {
    /// The request id this ticket was issued for (echoed by the server).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// A connection to an `fpfa-serve` daemon speaking protocol v2.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Responses read while waiting for a different ticket.
    pending: HashMap<u64, Response>,
    hello: HelloAck,
}

impl Client {
    /// Connects to a daemon and performs the version handshake.
    ///
    /// # Errors
    /// Propagates socket errors; a version mismatch surfaces as
    /// [`ClientError::Server`] carrying
    /// [`WireError::UnsupportedVersion`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut writer = BufWriter::new(write_half);
        write_frame(&mut writer, &Hello::current().encode())?;
        writer.flush()?;
        let payload = read_frame(&mut reader)?.ok_or(ClientError::Disconnected)?;
        let hello = match Response::decode(&payload).map_err(ClientError::Protocol)? {
            Response::Hello(ack) => ack,
            Response::Error(error) => return Err(ClientError::Server(error)),
            _ => return Err(ClientError::Unexpected("expected a hello ack")),
        };
        Ok(Client {
            reader,
            writer,
            next_id: 0,
            pending: HashMap::new(),
            hello,
        })
    }

    /// What the server advertised in its handshake ack (protocol version,
    /// shard count, per-connection in-flight budget).
    pub fn server_hello(&self) -> HelloAck {
        self.hello
    }

    /// Queues one request without waiting for its response.  The frame is
    /// buffered; it reaches the wire on [`flush`](Client::flush) or on the
    /// first [`wait`](Client::wait).
    ///
    /// # Errors
    /// Propagates socket errors from writing the frame.
    pub fn submit(&mut self, request: &Request) -> Result<Ticket, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        write_frame(&mut self.writer, &encode_request_frame(id, request))?;
        Ok(Ticket { id })
    }

    /// Pushes every buffered request to the wire.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Waits for one ticket's response, in whatever order the server
    /// completes them: responses for *other* tickets read along the way are
    /// stashed and returned by their own `wait` calls.
    ///
    /// # Errors
    /// Fails on transport errors or undecodable responses.
    pub fn wait(&mut self, ticket: Ticket) -> Result<Response, ClientError> {
        if let Some(response) = self.pending.remove(&ticket.id) {
            return Ok(response);
        }
        self.writer.flush()?;
        loop {
            let payload = read_frame(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
            let (id, response) = decode_response_frame(&payload).map_err(ClientError::Protocol)?;
            if id == ticket.id {
                return Ok(response);
            }
            self.pending.insert(id, response);
        }
    }

    /// Sends one request and waits for its response.  Typed server errors
    /// ([`Response::Error`]) are returned as `Ok(Response::Error(..))` so
    /// callers can distinguish load shedding from transport failure.
    ///
    /// # Errors
    /// Fails on transport errors or undecodable responses.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let ticket = self.submit(request)?;
        self.wait(ticket)
    }

    /// Maps one kernel; any non-`Mapped` response becomes an error
    /// ([`ClientError::Server`] for typed rejections).
    ///
    /// # Errors
    /// Fails on transport errors, typed server rejections, or mapping
    /// failures.
    pub fn map(
        &mut self,
        name: &str,
        source: &str,
        knobs: MapKnobs,
    ) -> Result<MapSummary, ClientError> {
        let request = Request::Map {
            kernel: KernelSource::new(name, source),
            knobs,
        };
        match self.call(&request)? {
            Response::Mapped(summary) => Ok(summary),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a mapping summary")),
        }
    }

    /// Maps a batch of kernels under one knob set.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn batch(
        &mut self,
        kernels: Vec<KernelSource>,
        knobs: MapKnobs,
    ) -> Result<BatchSummary, ClientError> {
        match self.call(&Request::Batch { kernels, knobs })? {
            Response::Batch(summary) => Ok(summary),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a batch summary")),
        }
    }

    /// Fetches the server statistics.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn stats(&mut self) -> Result<StatsSummary, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected statistics")),
        }
    }

    /// Fetches the health snapshot.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn health(&mut self) -> Result<HealthSummary, ClientError> {
        match self.call(&Request::Health)? {
            Response::Health(health) => Ok(health),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a health snapshot")),
        }
    }

    /// Drops the server's cached mappings and zeroes its counters; returns
    /// how many cache entries were dropped.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn reset(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Reset)? {
            Response::ResetDone { dropped_entries } => Ok(dropped_entries),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a reset ack")),
        }
    }

    /// Scrapes the server's metrics registry in the requested exposition
    /// format; returns the rendered document.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<String, ClientError> {
        match self.call(&Request::Metrics { format })? {
            Response::Metrics { body, .. } => Ok(body),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a metrics scrape")),
        }
    }

    /// Fetches the flight-recorder dump as one JSON document.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn dump(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Dump)? {
            Response::Dump { json } => Ok(json),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a flight dump")),
        }
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownStarted => Ok(()),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a shutdown ack")),
        }
    }
}
