//! Blocking client for the `fpfa-serve` protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time
//! (the protocol is strictly request/response per connection; open more
//! clients for concurrency, as `fpfa-loadgen` does).

use crate::protocol::{
    read_frame, write_frame, BatchSummary, FrameError, HealthSummary, KernelSource, MapKnobs,
    MapSummary, ProtocolError, Request, Response, StatsSummary, WireError,
};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server sent bytes that do not decode as a response.
    Protocol(ProtocolError),
    /// The server closed the connection instead of answering.
    Disconnected,
    /// The server answered with a typed error.
    Server(WireError),
    /// The server answered with a response of the wrong kind.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => f.write_str("server closed the connection"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(kind) => write!(f, "unexpected response kind: {kind}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            FrameError::TooLarge { len } => ClientError::Protocol(ProtocolError::BadLength {
                context: "response frame",
                len,
            }),
        }
    }
}

/// A blocking connection to an `fpfa-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one request and waits for its response.  Typed server errors
    /// ([`Response::Error`]) are returned as `Ok(Response::Error(..))` so
    /// callers can distinguish load shedding from transport failure.
    ///
    /// # Errors
    /// Fails on transport errors or undecodable responses.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &request.encode())?;
        self.writer.flush()?;
        let payload = read_frame(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
        Response::decode(&payload).map_err(ClientError::Protocol)
    }

    /// Maps one kernel; any non-`Mapped` response becomes an error
    /// ([`ClientError::Server`] for typed rejections).
    ///
    /// # Errors
    /// Fails on transport errors, typed server rejections, or mapping
    /// failures.
    pub fn map(
        &mut self,
        name: &str,
        source: &str,
        knobs: MapKnobs,
    ) -> Result<MapSummary, ClientError> {
        let request = Request::Map {
            kernel: KernelSource::new(name, source),
            knobs,
        };
        match self.call(&request)? {
            Response::Mapped(summary) => Ok(summary),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a mapping summary")),
        }
    }

    /// Maps a batch of kernels under one knob set.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn batch(
        &mut self,
        kernels: Vec<KernelSource>,
        knobs: MapKnobs,
    ) -> Result<BatchSummary, ClientError> {
        match self.call(&Request::Batch { kernels, knobs })? {
            Response::Batch(summary) => Ok(summary),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a batch summary")),
        }
    }

    /// Fetches the server statistics.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn stats(&mut self) -> Result<StatsSummary, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected statistics")),
        }
    }

    /// Fetches the health snapshot.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn health(&mut self) -> Result<HealthSummary, ClientError> {
        match self.call(&Request::Health)? {
            Response::Health(health) => Ok(health),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a health snapshot")),
        }
    }

    /// Drops the server's cached mappings and zeroes its counters; returns
    /// how many cache entries were dropped.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn reset(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Reset)? {
            Response::ResetDone { dropped_entries } => Ok(dropped_entries),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a reset ack")),
        }
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    /// Fails on transport errors or typed server rejections.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownStarted => Ok(()),
            Response::Error(error) => Err(ClientError::Server(error)),
            _ => Err(ClientError::Unexpected("expected a shutdown ack")),
        }
    }
}
