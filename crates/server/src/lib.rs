//! Mapping-as-a-service: the serving layer over the FPFA mapping flow.
//!
//! The paper's flow is a one-shot compiler; this crate turns it into a
//! long-lived network service so the whole pipeline (frontend → transform →
//! cluster → partition → schedule → allocate → cache) can be exercised
//! under concurrent, sustained load:
//!
//! * [`protocol`] — a hand-rolled, length-prefixed framed wire protocol
//!   (std-only; encode/decode is a pure, separately testable layer).
//!   Protocol **v2** adds a magic + version handshake and a `u64` request
//!   id on every frame, so a connection can pipeline many requests and
//!   receive responses out of order;
//! * [`sys`] — readiness polling over raw fds (`epoll` on Linux via thin
//!   `extern "C"` bindings, `poll(2)` elsewhere on Unix) plus a cross-
//!   thread [`Waker`](sys::Waker) — the only module allowed `unsafe`;
//! * [`server`] — the daemon: a small set of event-driven I/O shards, each
//!   owning its accepted connections, buffers and a warm summary table,
//!   over a fixed worker pool sharing one
//!   [`MappingService`](fpfa_core::service::MappingService).  Admission
//!   control (queue-full ⇒ an immediate typed `Overloaded` response),
//!   per-request deadline budgets, graceful drain-on-shutdown, and
//!   atomics-backed statistics carry over from the v1 design;
//! * [`client`] — the client library: a pipelined core
//!   ([`Client::submit`] / [`Client::wait`]) with the blocking one-call
//!   verbs kept as wrappers.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fpfa_core::pipeline::Mapper;
//! use fpfa_core::service::MappingService;
//! use fpfa_server::{Client, MapKnobs, Server, ServerConfig};
//!
//! let service = MappingService::new(Mapper::new());
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default(), service)?;
//! let handle = server.spawn()?;
//!
//! let mut client = Client::connect(handle.addr())?;
//! let summary = client.map(
//!     "dot2",
//!     "void main() { int a[2]; int r; r = a[0] * a[1]; }",
//!     MapKnobs::default(),
//! )?;
//! assert!(summary.cycles > 0);
//!
//! client.shutdown()?;
//! handle.join();
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
// The syscall shim is the single scoped exception to `deny(unsafe_code)`:
// two `extern "C"` declarations and the buffer handed to `epoll_wait`.
#[allow(unsafe_code)]
pub mod sys;

pub mod server;

pub use client::{Client, ClientError, Ticket};
pub use protocol::{
    program_digest, BatchSummary, CacheFlavor, HelloAck, Histogram, KernelSource, MapKnobs,
    MapSummary, MetricsFormat, ProtocolError, Request, Response, ShardStatsSummary, StatsSummary,
    WireError,
};
pub use server::{Server, ServerConfig, ServerHandle, ShutdownTrigger};
