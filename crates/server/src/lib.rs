//! Mapping-as-a-service: the serving layer over the FPFA mapping flow.
//!
//! The paper's flow is a one-shot compiler; this crate turns it into a
//! long-lived network service so the whole pipeline (frontend → transform →
//! cluster → partition → schedule → allocate → cache) can be exercised
//! under concurrent, sustained load:
//!
//! * [`protocol`] — a hand-rolled, length-prefixed framed wire protocol
//!   (std-only; encode/decode is a pure, separately testable layer);
//! * [`server`] — the daemon: a fixed worker pool sharing one
//!   [`MappingService`](fpfa_core::service::MappingService), a bounded job
//!   queue with admission control (queue-full ⇒ an immediate typed
//!   `Overloaded` response), per-request deadline budgets, graceful
//!   drain-on-shutdown, and atomics-backed statistics;
//! * [`client`] — the blocking client library used by the `fpfa-serve`
//!   daemon's peers: tests, the `fpfa-loadgen` closed-loop load generator,
//!   and scripts.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fpfa_core::pipeline::Mapper;
//! use fpfa_core::service::MappingService;
//! use fpfa_server::{Client, MapKnobs, Server, ServerConfig};
//!
//! let service = MappingService::new(Mapper::new());
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default(), service)?;
//! let handle = server.spawn()?;
//!
//! let mut client = Client::connect(handle.addr())?;
//! let summary = client.map(
//!     "dot2",
//!     "void main() { int a[2]; int r; r = a[0] * a[1]; }",
//!     MapKnobs::default(),
//! )?;
//! assert!(summary.cycles > 0);
//!
//! client.shutdown()?;
//! handle.join();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    program_digest, BatchSummary, CacheFlavor, Histogram, KernelSource, MapKnobs, MapSummary,
    ProtocolError, Request, Response, StatsSummary, WireError,
};
pub use server::{Server, ServerConfig, ServerHandle};
