//! The `fpfa-serve` wire protocol: length-prefixed frames carrying a
//! hand-rolled binary encoding of requests and responses.
//!
//! The protocol is deliberately tiny and dependency-free (the workspace has
//! no crates.io access, so there is no serde):
//!
//! * **Framing** — every message is a little-endian `u32` payload length
//!   followed by that many payload bytes.  [`read_frame`] / [`write_frame`]
//!   are the only functions that touch the socket; everything else is a pure
//!   `bytes -> value` / `value -> bytes` layer that is testable without any
//!   I/O.  Frames above [`MAX_FRAME_LEN`] are rejected before any allocation
//!   happens, so a corrupt length prefix cannot balloon memory.
//! * **Requests** ([`Request`]) — `map` (one kernel + [`MapKnobs`]), `batch`
//!   (many kernels under one knob set), `stats`, `reset` (drop cached
//!   entries and zero the counters), `health` and `shutdown`.
//! * **Responses** ([`Response`]) — a mapping summary (headline report
//!   numbers plus a structural [program digest](program_digest) and the
//!   cache outcome), a batch summary, server statistics including per-verb
//!   latency [`Histogram`]s, a health snapshot, acks, or a *typed*
//!   [`WireError`].  Admission-control rejections travel as
//!   [`WireError::Overloaded`] — a first-class response, never a dropped
//!   connection.
//!
//! **Protocol v2** adds an explicit handshake and pipelining on top of the
//! same framing:
//!
//! * On connect the client sends a [`Hello`] frame — the [`HELLO_MAGIC`]
//!   bytes plus its protocol version — and the server answers with
//!   [`Response::Hello`] (a [`HelloAck`]) or a typed
//!   [`WireError::UnsupportedVersion`].  A first frame *without* the magic
//!   is treated as a legacy v1 request: the server answers it with a
//!   v1-encoded `UnsupportedVersion` error so old clients fail loudly
//!   instead of hanging.
//! * After the handshake every frame payload is a little-endian `u64`
//!   **request id** followed by the v1 message body
//!   ([`encode_request_frame`] / [`decode_response_frame`]).  A connection
//!   may have many requests in flight; responses carry the id they answer
//!   and may arrive **out of order**.
//!
//! [`FrameBuffer`] is the nonblocking counterpart of [`read_frame`]: it
//! accumulates bytes as they arrive and yields complete frames, enforcing
//! [`MAX_FRAME_LEN`] on the announced length before buffering a frame.
//!
//! Decoding never panics: every malformed, truncated or oversized input
//! yields a typed [`ProtocolError`] (the property tests fuzz this).

use fpfa_core::cache::CacheOutcome;
use fpfa_core::pipeline::MappingResult;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload, request or response (16 MiB —
/// generous for batches of kernel sources, small enough that a corrupt
/// length prefix cannot balloon memory).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// The protocol version this build speaks (and the only one the server
/// serves; v1 requests are answered with a typed rejection).
pub const PROTOCOL_VERSION: u32 = 2;

/// Magic bytes opening a [`Hello`] frame.  Chosen so no v1 request can
/// alias it: a v1 payload starts with a request tag byte in `1..=6`,
/// never `b'F'`.
pub const HELLO_MAGIC: [u8; 4] = *b"FPFA";

/// The request id echoed on responses to frames whose id could not be
/// decoded (a payload shorter than the 8-byte id prefix).
pub const UNKNOWN_REQUEST_ID: u64 = u64::MAX;

/// Number of latency buckets in a [`Histogram`]: bucket `i` counts requests
/// that finished in `< 2^i` microseconds, the last bucket is the overflow.
pub const HISTOGRAM_BUCKETS: usize = 24;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed decoding failure.  Decoding never panics; every malformed input
/// maps onto one of these.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolError {
    /// The payload ended before the value under `context` was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A tag byte does not name any variant of the value under `context`.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length field exceeds [`MAX_FRAME_LEN`] (or the remaining payload).
    BadLength {
        /// What was being decoded.
        context: &'static str,
        /// The claimed length.
        len: u64,
    },
    /// A string field is not valid UTF-8.
    BadUtf8 {
        /// What was being decoded.
        context: &'static str,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes {
        /// How many bytes were left.
        count: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated { context } => {
                write!(f, "truncated payload while decoding {context}")
            }
            ProtocolError::BadTag { context, tag } => {
                write!(f, "unknown tag {tag:#04x} while decoding {context}")
            }
            ProtocolError::BadLength { context, len } => {
                write!(f, "implausible length {len} while decoding {context}")
            }
            ProtocolError::BadUtf8 { context } => {
                write!(f, "invalid UTF-8 while decoding {context}")
            }
            ProtocolError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after a complete message")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A framing failure on the socket.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying read or write failed.
    Io(io::Error),
    /// The peer announced a frame above [`MAX_FRAME_LEN`].
    TooLarge {
        /// The announced payload length.
        len: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::TooLarge { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (little-endian `u32` length + payload).  The caller
/// flushes the stream when the message must reach the peer.
///
/// # Errors
/// Propagates I/O errors; rejects payloads above [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge {
            len: payload.len() as u64,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
/// Propagates I/O errors (including mid-frame EOF as
/// [`io::ErrorKind::UnexpectedEof`]); rejects frames above
/// [`MAX_FRAME_LEN`] before allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before the first length byte means the peer hung up
    // between messages; EOF after that is a torn frame.
    match r.read(&mut len_bytes) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_bytes[n..])?,
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Nonblocking frame accumulation
// ---------------------------------------------------------------------------

/// Accumulates bytes read from a nonblocking socket and yields complete
/// frames — the event-loop counterpart of [`read_frame`].
///
/// The announced length is validated against [`MAX_FRAME_LEN`] *before* the
/// frame is buffered, so a corrupt prefix is rejected as
/// [`FrameError::TooLarge`] without ballooning memory.  Consumed bytes are
/// compacted away lazily (only once the parser catches up with the reader),
/// keeping the steady-state cost of a warm connection a plain `memcpy`-free
/// cursor bump.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed (a partial frame, or frames not
    /// yet parsed).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Yields the next complete frame payload, or `None` until more bytes
    /// arrive.
    ///
    /// # Errors
    /// [`FrameError::TooLarge`] when the announced length exceeds
    /// [`MAX_FRAME_LEN`]; the stream is unrecoverable at that point (the
    /// frame boundary is lost) and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, FrameError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len_bytes = &self.buf[self.start..self.start + 4];
        let len =
            u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge { len: len as u64 });
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let frame_start = self.start + 4;
        self.start = frame_start + len;
        Ok(Some(&self.buf[frame_start..frame_start + len]))
    }

    /// Drops the consumed prefix once the parser has caught up (or the
    /// consumed half dominates the buffer), bounding memory without copying
    /// on every frame.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Handshake (protocol v2)
// ---------------------------------------------------------------------------

/// The client's opening frame under protocol v2: magic bytes plus the
/// version it speaks.  Answered by [`Response::Hello`] or a typed
/// [`WireError::UnsupportedVersion`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Hello {
    /// The protocol version the client speaks.
    pub version: u32,
}

impl Hello {
    /// The hello for this build's [`PROTOCOL_VERSION`].
    pub fn current() -> Self {
        Hello {
            version: PROTOCOL_VERSION,
        }
    }

    /// `true` when a first frame opens with the [`HELLO_MAGIC`] bytes —
    /// i.e. the peer speaks v2.  A v1 request payload can never match
    /// (its first byte is a request tag in `1..=6`).
    pub fn looks_like_hello(payload: &[u8]) -> bool {
        payload.len() >= HELLO_MAGIC.len() && payload[..HELLO_MAGIC.len()] == HELLO_MAGIC
    }

    /// Encodes the hello into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8);
        buf.extend_from_slice(&HELLO_MAGIC);
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf
    }

    /// Decodes a hello frame payload.
    ///
    /// # Errors
    /// [`ProtocolError::BadTag`] when the magic is absent,
    /// [`ProtocolError::Truncated`]/[`ProtocolError::TrailingBytes`] on a
    /// malformed length.
    pub fn decode(payload: &[u8]) -> Result<Hello, ProtocolError> {
        if !Self::looks_like_hello(payload) {
            return Err(ProtocolError::BadTag {
                context: "hello magic",
                tag: payload.first().copied().unwrap_or(0),
            });
        }
        let mut d = Dec::new(&payload[HELLO_MAGIC.len()..]);
        let version = d.u32("hello.version")?;
        d.finish(Hello { version })
    }
}

/// The server's handshake acknowledgement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HelloAck {
    /// The protocol version the connection will speak.
    pub version: u32,
    /// Number of I/O shards serving connections.
    pub shards: u32,
    /// Requests one connection may have in flight before the server answers
    /// further submissions with [`WireError::Overloaded`].
    pub max_in_flight: u32,
}

// ---------------------------------------------------------------------------
// Pipelined (v2) frame payloads
// ---------------------------------------------------------------------------

/// Encodes a v2 request frame payload: the `u64` request id followed by the
/// v1 request body.
pub fn encode_request_frame(id: u64, request: &Request) -> Vec<u8> {
    let body = request.encode();
    let mut buf = Vec::with_capacity(8 + body.len());
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&body);
    buf
}

/// Decodes a v2 request frame payload into `(request_id, request)`.
///
/// # Errors
/// A typed [`ProtocolError`]; when the payload is long enough to carry the
/// id prefix, the id is decodable even if the body is not (the server echoes
/// it on the error response).  Use [`request_id_of`] to recover it.
pub fn decode_request_frame(payload: &[u8]) -> Result<(u64, Request), ProtocolError> {
    if payload.len() < 8 {
        return Err(ProtocolError::Truncated {
            context: "request id",
        });
    }
    let id = request_id_of(payload).unwrap_or(UNKNOWN_REQUEST_ID);
    Ok((id, Request::decode(&payload[8..])?))
}

/// Encodes a v2 response frame payload: the echoed `u64` request id
/// followed by the v1 response body.
pub fn encode_response_frame(id: u64, response: &Response) -> Vec<u8> {
    let body = response.encode();
    let mut buf = Vec::with_capacity(8 + body.len());
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&body);
    buf
}

/// Decodes a v2 response frame payload into `(request_id, response)`.
///
/// # Errors
/// A typed [`ProtocolError`] on truncated or corrupt payloads; never panics.
pub fn decode_response_frame(payload: &[u8]) -> Result<(u64, Response), ProtocolError> {
    if payload.len() < 8 {
        return Err(ProtocolError::Truncated {
            context: "response id",
        });
    }
    let id = request_id_of(payload).unwrap_or(UNKNOWN_REQUEST_ID);
    Ok((id, Response::decode(&payload[8..])?))
}

/// The request id prefix of a v2 frame payload, when present — decodable
/// even from frames whose body is corrupt, so errors can echo the right id.
pub fn request_id_of(payload: &[u8]) -> Option<u64> {
    let bytes: [u8; 8] = payload.get(..8)?.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

// ---------------------------------------------------------------------------
// Pure byte readers/writers
// ---------------------------------------------------------------------------

/// Append-only encoder over a byte buffer.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Cursor-based decoder returning typed errors, never panicking.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(ProtocolError::Truncated { context })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, context)?[0])
    }

    fn bool(&mut self, context: &'static str) -> Result<bool, ProtocolError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ProtocolError::BadTag { context, tag }),
        }
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, ProtocolError> {
        let bytes = self.take(4, context)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ProtocolError> {
        let bytes = self.take(8, context)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(raw))
    }

    fn i64(&mut self, context: &'static str) -> Result<i64, ProtocolError> {
        Ok(self.u64(context)? as i64)
    }

    fn str(&mut self, context: &'static str) -> Result<String, ProtocolError> {
        let len = self.u32(context)? as usize;
        if len > MAX_FRAME_LEN {
            return Err(ProtocolError::BadLength {
                context,
                len: len as u64,
            });
        }
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8 { context })
    }

    /// Upper bound for decoded collection lengths: every element needs at
    /// least one byte, so any claimed length beyond the remaining payload is
    /// corrupt (and would otherwise pre-allocate unboundedly).
    fn seq_len(&mut self, context: &'static str) -> Result<usize, ProtocolError> {
        let len = self.u32(context)? as usize;
        if len > self.bytes.len().saturating_sub(self.pos) {
            return Err(ProtocolError::BadLength {
                context,
                len: len as u64,
            });
        }
        Ok(len)
    }

    fn finish<T>(self, value: T) -> Result<T, ProtocolError> {
        let left = self.bytes.len() - self.pos;
        if left > 0 {
            return Err(ProtocolError::TrailingBytes { count: left });
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Per-request mapping knobs, mirroring the `fpfa-map` flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MapKnobs {
    /// Tile-array size the kernel is partitioned across; `0` inherits the
    /// daemon's configured default (`fpfa-serve --tiles`).
    pub tiles: u32,
    /// Processing parts per tile; `0` inherits the daemon's configured
    /// default (`fpfa-serve --pps`).
    pub pps: u32,
    /// Phase-1 clustering (off = one operation per cluster).  The toggles
    /// can only *disable* features relative to the daemon's configuration.
    pub clustering: bool,
    /// Locality of reference in the allocator.
    pub locality: bool,
    /// Also run the mapped program on the cycle-accurate simulator with the
    /// deterministic test signal and report the executed cycles/checksum.
    pub simulate: bool,
    /// Statically verify the mapping (and lint the kernel source) before
    /// answering; a deny-level diagnostic turns the response into a typed
    /// [`WireError::VerifyFailed`].
    pub verify: bool,
    /// Per-request deadline budget in milliseconds, measured from admission
    /// to the job queue; `0` uses the server's default.  A request that
    /// waits out its budget in the queue is answered with
    /// [`WireError::DeadlineExceeded`] instead of being mapped late.
    pub deadline_ms: u32,
}

impl Default for MapKnobs {
    fn default() -> Self {
        MapKnobs {
            tiles: 0,
            pps: 0,
            clustering: true,
            locality: true,
            simulate: false,
            verify: false,
            deadline_ms: 0,
        }
    }
}

impl MapKnobs {
    fn encode(&self, e: &mut Enc) {
        e.u32(self.tiles);
        e.u32(self.pps);
        e.bool(self.clustering);
        e.bool(self.locality);
        e.bool(self.simulate);
        e.bool(self.verify);
        e.u32(self.deadline_ms);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        Ok(MapKnobs {
            tiles: d.u32("knobs.tiles")?,
            pps: d.u32("knobs.pps")?,
            clustering: d.bool("knobs.clustering")?,
            locality: d.bool("knobs.locality")?,
            simulate: d.bool("knobs.simulate")?,
            verify: d.bool("knobs.verify")?,
            deadline_ms: d.u32("knobs.deadline_ms")?,
        })
    }
}

/// One kernel to map: a report name plus its C-subset source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KernelSource {
    /// Name echoed back in the summary.
    pub name: String,
    /// The C-subset source text.
    pub source: String,
}

impl KernelSource {
    /// Creates a named kernel source.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        KernelSource {
            name: name.into(),
            source: source.into(),
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.str(&self.source);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        Ok(KernelSource {
            name: d.str("kernel.name")?,
            source: d.str("kernel.source")?,
        })
    }
}

/// A client-to-server message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Map one kernel.
    Map {
        /// The kernel to map.
        kernel: KernelSource,
        /// Mapping knobs.
        knobs: MapKnobs,
    },
    /// Map a batch of kernels under one knob set (served by the service's
    /// parallel `map_many`, including in-batch dedup).
    Batch {
        /// The kernels to map.
        kernels: Vec<KernelSource>,
        /// Mapping knobs shared by the whole batch.
        knobs: MapKnobs,
    },
    /// Ask for the server's statistics (admission counters, latency
    /// histograms, cache hit ratio).
    Stats,
    /// Drop every cached mapping and zero the statistics counters.
    Reset,
    /// Liveness / drain-state probe.
    Health,
    /// Begin a graceful shutdown: the server stops accepting work, drains
    /// queued jobs, then exits.
    Shutdown,
    /// Scrape the server's metrics registry in the requested exposition
    /// format.
    Metrics {
        /// Requested exposition format.
        format: MetricsFormat,
    },
    /// Dump the flight recorder: recent request summaries per shard plus
    /// any sampled trace events, as one JSON document.
    Dump,
}

/// Exposition format for the `metrics` verb.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricsFormat {
    /// Prometheus-style text.
    Prometheus,
    /// JSON.
    Json,
}

impl MetricsFormat {
    fn tag(self) -> u8 {
        match self {
            MetricsFormat::Prometheus => 0,
            MetricsFormat::Json => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, ProtocolError> {
        match tag {
            0 => Ok(MetricsFormat::Prometheus),
            1 => Ok(MetricsFormat::Json),
            tag => Err(ProtocolError::BadTag {
                context: "metrics format",
                tag,
            }),
        }
    }
}

const REQ_MAP: u8 = 1;
const REQ_BATCH: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_RESET: u8 = 4;
const REQ_HEALTH: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;
const REQ_METRICS: u8 = 7;
const REQ_DUMP: u8 = 8;

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Request::Map { kernel, knobs } => {
                e.u8(REQ_MAP);
                kernel.encode(&mut e);
                knobs.encode(&mut e);
            }
            Request::Batch { kernels, knobs } => {
                e.u8(REQ_BATCH);
                e.u32(kernels.len() as u32);
                for kernel in kernels {
                    kernel.encode(&mut e);
                }
                knobs.encode(&mut e);
            }
            Request::Stats => e.u8(REQ_STATS),
            Request::Reset => e.u8(REQ_RESET),
            Request::Health => e.u8(REQ_HEALTH),
            Request::Shutdown => e.u8(REQ_SHUTDOWN),
            Request::Metrics { format } => {
                e.u8(REQ_METRICS);
                e.u8(format.tag());
            }
            Request::Dump => e.u8(REQ_DUMP),
        }
        e.buf
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// Returns a typed [`ProtocolError`] on truncated, corrupt or trailing
    /// bytes; never panics.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtocolError> {
        let mut d = Dec::new(bytes);
        let request = match d.u8("request tag")? {
            REQ_MAP => Request::Map {
                kernel: KernelSource::decode(&mut d)?,
                knobs: MapKnobs::decode(&mut d)?,
            },
            REQ_BATCH => {
                let count = d.seq_len("batch count")?;
                let mut kernels = Vec::with_capacity(count);
                for _ in 0..count {
                    kernels.push(KernelSource::decode(&mut d)?);
                }
                Request::Batch {
                    kernels,
                    knobs: MapKnobs::decode(&mut d)?,
                }
            }
            REQ_STATS => Request::Stats,
            REQ_RESET => Request::Reset,
            REQ_HEALTH => Request::Health,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_METRICS => Request::Metrics {
                format: MetricsFormat::from_tag(d.u8("metrics format")?)?,
            },
            REQ_DUMP => Request::Dump,
            tag => {
                return Err(ProtocolError::BadTag {
                    context: "request tag",
                    tag,
                })
            }
        };
        d.finish(request)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// How a served mapping interacted with the content-addressed cache
/// (the wire rendering of [`CacheOutcome`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheFlavor {
    /// No cache was consulted.
    Uncached,
    /// Both cache levels missed; the full flow ran.
    Miss,
    /// Served from the full-mapping cache without running any stage.
    MappingHit,
    /// Cluster/partition/schedule/allocate work was reused.
    PostTransformHit,
}

impl From<CacheOutcome> for CacheFlavor {
    fn from(outcome: CacheOutcome) -> Self {
        match outcome {
            CacheOutcome::Uncached => CacheFlavor::Uncached,
            CacheOutcome::Miss => CacheFlavor::Miss,
            CacheOutcome::MappingHit => CacheFlavor::MappingHit,
            CacheOutcome::PostTransformHit => CacheFlavor::PostTransformHit,
        }
    }
}

impl fmt::Display for CacheFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CacheFlavor::Uncached => "uncached",
            CacheFlavor::Miss => "miss",
            CacheFlavor::MappingHit => "mapping hit",
            CacheFlavor::PostTransformHit => "post-transform hit",
        })
    }
}

impl CacheFlavor {
    fn tag(self) -> u8 {
        match self {
            CacheFlavor::Uncached => 0,
            CacheFlavor::Miss => 1,
            CacheFlavor::MappingHit => 2,
            CacheFlavor::PostTransformHit => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, ProtocolError> {
        Ok(match tag {
            0 => CacheFlavor::Uncached,
            1 => CacheFlavor::Miss,
            2 => CacheFlavor::MappingHit,
            3 => CacheFlavor::PostTransformHit,
            tag => {
                return Err(ProtocolError::BadTag {
                    context: "cache flavor",
                    tag,
                })
            }
        })
    }
}

/// Result of running the mapped program on the cycle-accurate simulator
/// (present when the request set [`MapKnobs::simulate`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimSummary {
    /// Executed clock cycles.
    pub cycles: u64,
    /// Sum of the scalar outputs under the deterministic test signal — a
    /// cheap end-to-end checksum clients can compare across runs.
    pub checksum: i64,
}

/// Headline numbers of one served mapping.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MapSummary {
    /// The kernel name from the request (disambiguated inside batches).
    pub name: String,
    /// Structural digest of the mapped program ([`program_digest`]): equal
    /// digests ⇒ the server produced the same mapping.
    pub digest: u64,
    /// Operations in the simplified mapping graph.
    pub operations: u64,
    /// Phase-1 clusters.
    pub clusters: u64,
    /// Phase-2 schedule levels.
    pub levels: u64,
    /// Phase-3 clock cycles.
    pub cycles: u64,
    /// Tiles the mapping targets.
    pub tiles: u64,
    /// Values routed over the inter-tile interconnect.
    pub inter_tile_transfers: u64,
    /// How the cache served this request.
    pub cache: CacheFlavor,
    /// Simulation outcome when requested.
    pub sim: Option<SimSummary>,
    /// Server-side handling time (admission to response) in microseconds.
    pub server_micros: u64,
}

impl MapSummary {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.u64(self.digest);
        e.u64(self.operations);
        e.u64(self.clusters);
        e.u64(self.levels);
        e.u64(self.cycles);
        e.u64(self.tiles);
        e.u64(self.inter_tile_transfers);
        e.u8(self.cache.tag());
        match &self.sim {
            Some(sim) => {
                e.bool(true);
                e.u64(sim.cycles);
                e.i64(sim.checksum);
            }
            None => e.bool(false),
        }
        e.u64(self.server_micros);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        Ok(MapSummary {
            name: d.str("summary.name")?,
            digest: d.u64("summary.digest")?,
            operations: d.u64("summary.operations")?,
            clusters: d.u64("summary.clusters")?,
            levels: d.u64("summary.levels")?,
            cycles: d.u64("summary.cycles")?,
            tiles: d.u64("summary.tiles")?,
            inter_tile_transfers: d.u64("summary.inter_tile_transfers")?,
            cache: CacheFlavor::from_tag(d.u8("cache flavor")?)?,
            sim: if d.bool("summary.sim flag")? {
                Some(SimSummary {
                    cycles: d.u64("sim.cycles")?,
                    checksum: d.i64("sim.checksum")?,
                })
            } else {
                None
            },
            server_micros: d.u64("summary.server_micros")?,
        })
    }
}

/// One entry of a batch response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchEntrySummary {
    /// Disambiguated entry name (`name`, `name#2`, … as in `fpfa-map`).
    pub name: String,
    /// The mapping summary, or the kernel's error rendering.
    pub outcome: Result<MapSummary, String>,
}

/// Aggregate response to a [`Request::Batch`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchSummary {
    /// Per-kernel outcomes in input order.
    pub entries: Vec<BatchEntrySummary>,
    /// Wall-clock of the whole batch, in microseconds.
    pub wall_micros: u64,
    /// Specs served by in-batch source deduplication.
    pub deduped: u64,
}

impl BatchSummary {
    /// Number of entries that mapped successfully.
    pub fn succeeded(&self) -> usize {
        self.entries.iter().filter(|e| e.outcome.is_ok()).count()
    }

    fn encode(&self, e: &mut Enc) {
        e.u32(self.entries.len() as u32);
        for entry in &self.entries {
            e.str(&entry.name);
            match &entry.outcome {
                Ok(summary) => {
                    e.bool(true);
                    summary.encode(e);
                }
                Err(error) => {
                    e.bool(false);
                    e.str(error);
                }
            }
        }
        e.u64(self.wall_micros);
        e.u64(self.deduped);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        let count = d.seq_len("batch entries")?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let name = d.str("batch entry name")?;
            let outcome = if d.bool("batch entry flag")? {
                Ok(MapSummary::decode(d)?)
            } else {
                Err(d.str("batch entry error")?)
            };
            entries.push(BatchEntrySummary { name, outcome });
        }
        Ok(BatchSummary {
            entries,
            wall_micros: d.u64("batch wall")?,
            deduped: d.u64("batch deduped")?,
        })
    }
}

/// A power-of-two latency histogram: bucket `i` counts requests that
/// completed in `< 2^i` microseconds (the last bucket is the overflow).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    /// Bucket counts ([`HISTOGRAM_BUCKETS`] of them).
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// The bucket index a latency of `micros` lands in.
    pub fn bucket_of(micros: u64) -> usize {
        ((u64::BITS - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation (used by the client-side merge; the server
    /// records into atomics).
    pub fn record(&mut self, micros: u64) {
        self.buckets[Self::bucket_of(micros)] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile observation.
    /// Bucketed, so the value is a ≤ 2x overestimate — plenty for "p99
    /// under a millisecond" style statements.  `None` while empty, and
    /// `None` when the quantile lands in the overflow bucket (such an
    /// observation has no finite bound to report).
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                if index + 1 == self.buckets.len() {
                    return None; // overflow bucket: not actually a bound
                }
                return Some(1u64 << index.min(63));
            }
        }
        None
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u32(self.buckets.len() as u32);
        for &count in &self.buckets {
            e.u64(count);
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        let count = d.seq_len("histogram buckets")?;
        let mut buckets = Vec::with_capacity(count);
        for _ in 0..count {
            buckets.push(d.u64("histogram bucket")?);
        }
        Ok(Histogram { buckets })
    }
}

/// Per-I/O-shard serving counters (protocol v2: each shard owns its
/// connections and their buffers end to end).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardStatsSummary {
    /// Connections this shard has owned since start (or the last reset).
    pub connections: u64,
    /// Requests this shard admitted to the worker queue.
    pub accepted: u64,
    /// Responses this shard wrote back (inline and worker-completed).
    pub served: u64,
    /// Payload bytes read off this shard's sockets.
    pub bytes_in: u64,
    /// Payload bytes written back to this shard's sockets.
    pub bytes_out: u64,
}

impl ShardStatsSummary {
    fn encode(&self, e: &mut Enc) {
        for v in [
            self.connections,
            self.accepted,
            self.served,
            self.bytes_in,
            self.bytes_out,
        ] {
            e.u64(v);
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        Ok(ShardStatsSummary {
            connections: d.u64("shard.connections")?,
            accepted: d.u64("shard.accepted")?,
            served: d.u64("shard.served")?,
            bytes_in: d.u64("shard.bytes_in")?,
            bytes_out: d.u64("shard.bytes_out")?,
        })
    }
}

/// Server statistics: admission counters, per-verb latency histograms and
/// the mapping cache's counters.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StatsSummary {
    /// Connections accepted since start (or the last reset).
    pub connections: u64,
    /// Requests admitted to the job queue.
    pub accepted: u64,
    /// Requests answered with a mapping or batch summary.
    pub served_ok: u64,
    /// Requests whose kernel failed to map (typed `MapFailed` responses).
    pub served_err: u64,
    /// `map` requests whose mapping the static verifier rejected (typed
    /// `VerifyFailed` responses; disjoint from `served_err`).
    pub verify_failures_map: u64,
    /// `batch` requests containing at least one verify-rejected kernel.
    pub verify_failures_batch: u64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_overload: u64,
    /// Requests dropped because their deadline budget lapsed in the queue.
    pub rejected_deadline: u64,
    /// Requests rejected because the server was draining.
    pub rejected_shutdown: u64,
    /// Connections rejected at the handshake for speaking an unserved
    /// protocol version (including bare v1 requests).
    pub rejected_version: u64,
    /// Frames that decoded to garbage (answered with a typed `Invalid`
    /// error; the pipelining contract promises zero of these for a healthy
    /// client).
    pub protocol_errors: u64,
    /// Map requests answered inline by an I/O shard's warm summary table
    /// without queueing (a subset of `served_ok`; these hits are also folded
    /// into `cache_mapping_hits` so the hit ratio covers them).
    pub fast_hits: u64,
    /// The subset of `fast_hits` answered from the shard's L0 tier — a
    /// pre-encoded response frame copied into the write buffer with only the
    /// request id and `server_micros` patched (no summary rebuild, no
    /// re-encode).  `fast_hits - l0_hits` is the L1 (shared in-memory cache)
    /// share of the fast path.
    pub l0_hits: u64,
    /// Mappings loaded from the persistent disk tier (L2) after an in-memory
    /// miss.  Zero when the server runs without `--cache-dir`.
    pub persist_loads: u64,
    /// Mappings written through to the disk tier.
    pub persist_stores: u64,
    /// Disk-tier records whose digest or framing failed verification and
    /// were skipped (each one degrades to a typed miss, never an error).
    pub persist_corrupt_skipped: u64,
    /// Valid records indexed from pre-existing segment files when the tier
    /// was opened — the warm-start inventory a restarted server begins with.
    pub persist_warm_start_entries: u64,
    /// Times the disk tier rewrote its segments to drop superseded records.
    pub persist_compactions: u64,
    /// Configured worker threads.
    pub workers: u64,
    /// Configured job-queue capacity.
    pub queue_depth: u64,
    /// Full-mapping cache hits.
    pub cache_mapping_hits: u64,
    /// Full-mapping cache misses.
    pub cache_mapping_misses: u64,
    /// Post-transform cache hits.
    pub cache_post_hits: u64,
    /// Post-transform cache misses.
    pub cache_post_misses: u64,
    /// Cache entries currently resident.
    pub cache_entries: u64,
    /// Nominal cache capacity per level.
    pub cache_capacity: u64,
    /// Latency histogram of `map` requests, frame-decode → response
    /// write-back, so queueing delay is part of every observation.
    pub map_latency: Histogram,
    /// Latency histogram of `batch` requests (same decode → write-back
    /// clock).
    pub batch_latency: Histogram,
    /// Per-I/O-shard serving counters.
    pub shards: Vec<ShardStatsSummary>,
}

impl StatsSummary {
    /// Fraction of full-mapping lookups that hit (`None` before the first).
    pub fn mapping_hit_rate(&self) -> Option<f64> {
        let total = self.cache_mapping_hits + self.cache_mapping_misses;
        (total > 0).then(|| self.cache_mapping_hits as f64 / total as f64)
    }

    fn encode(&self, e: &mut Enc) {
        for v in [
            self.connections,
            self.accepted,
            self.served_ok,
            self.served_err,
            self.verify_failures_map,
            self.verify_failures_batch,
            self.rejected_overload,
            self.rejected_deadline,
            self.rejected_shutdown,
            self.rejected_version,
            self.protocol_errors,
            self.fast_hits,
            self.l0_hits,
            self.persist_loads,
            self.persist_stores,
            self.persist_corrupt_skipped,
            self.persist_warm_start_entries,
            self.persist_compactions,
            self.workers,
            self.queue_depth,
            self.cache_mapping_hits,
            self.cache_mapping_misses,
            self.cache_post_hits,
            self.cache_post_misses,
            self.cache_entries,
            self.cache_capacity,
        ] {
            e.u64(v);
        }
        self.map_latency.encode(e);
        self.batch_latency.encode(e);
        e.u32(self.shards.len() as u32);
        for shard in &self.shards {
            shard.encode(e);
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        Ok(StatsSummary {
            connections: d.u64("stats.connections")?,
            accepted: d.u64("stats.accepted")?,
            served_ok: d.u64("stats.served_ok")?,
            served_err: d.u64("stats.served_err")?,
            verify_failures_map: d.u64("stats.verify_failures_map")?,
            verify_failures_batch: d.u64("stats.verify_failures_batch")?,
            rejected_overload: d.u64("stats.rejected_overload")?,
            rejected_deadline: d.u64("stats.rejected_deadline")?,
            rejected_shutdown: d.u64("stats.rejected_shutdown")?,
            rejected_version: d.u64("stats.rejected_version")?,
            protocol_errors: d.u64("stats.protocol_errors")?,
            fast_hits: d.u64("stats.fast_hits")?,
            l0_hits: d.u64("stats.l0_hits")?,
            persist_loads: d.u64("stats.persist_loads")?,
            persist_stores: d.u64("stats.persist_stores")?,
            persist_corrupt_skipped: d.u64("stats.persist_corrupt_skipped")?,
            persist_warm_start_entries: d.u64("stats.persist_warm_start_entries")?,
            persist_compactions: d.u64("stats.persist_compactions")?,
            workers: d.u64("stats.workers")?,
            queue_depth: d.u64("stats.queue_depth")?,
            cache_mapping_hits: d.u64("stats.cache_mapping_hits")?,
            cache_mapping_misses: d.u64("stats.cache_mapping_misses")?,
            cache_post_hits: d.u64("stats.cache_post_hits")?,
            cache_post_misses: d.u64("stats.cache_post_misses")?,
            cache_entries: d.u64("stats.cache_entries")?,
            cache_capacity: d.u64("stats.cache_capacity")?,
            map_latency: Histogram::decode(d)?,
            batch_latency: Histogram::decode(d)?,
            shards: {
                let count = d.seq_len("stats.shards")?;
                let mut shards = Vec::with_capacity(count);
                for _ in 0..count {
                    shards.push(ShardStatsSummary::decode(d)?);
                }
                shards
            },
        })
    }
}

/// A liveness snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HealthSummary {
    /// Microseconds since the server started.
    pub uptime_micros: u64,
    /// Jobs admitted but not yet answered (queued + running).
    pub in_flight: u64,
    /// `true` once a graceful shutdown has begun.
    pub draining: bool,
}

/// A typed service error — the admission-control and failure vocabulary of
/// the protocol.  Every rejection is a first-class response on a healthy
/// connection, never a dropped socket.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The bounded job queue was full; the request was rejected immediately
    /// instead of buffering without bound.  Back off and retry.
    Overloaded {
        /// The queue capacity that was exhausted.
        queue_depth: u64,
    },
    /// The request's deadline budget lapsed before a worker picked it up.
    DeadlineExceeded {
        /// The budget that lapsed, in milliseconds.
        budget_ms: u64,
    },
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The request was structurally invalid (bad knobs, empty batch, …).
    Invalid(String),
    /// The kernel failed to map; the payload is the flow error rendering.
    MapFailed {
        /// The kernel name from the request.
        name: String,
        /// The mapping error.
        error: String,
    },
    /// The kernel mapped, but the static verifier found deny-level
    /// diagnostics (`knobs.verify`); the connection stays healthy.
    VerifyFailed {
        /// The kernel name from the request.
        name: String,
        /// Number of deny-level diagnostics.
        denies: u64,
        /// The first deny-level diagnostic, rendered.
        first: String,
    },
    /// The peer's protocol version is not served.  Sent in the *requested*
    /// version's encoding when it is decodable (a v1 client gets a plain v1
    /// error frame, not a hang), after which the server closes the
    /// connection.
    UnsupportedVersion {
        /// The version the peer asked for (0 when it sent no handshake at
        /// all, i.e. a legacy v1 request frame).
        requested: u32,
        /// The version this server speaks.
        supported: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Overloaded { queue_depth } => {
                write!(f, "overloaded: job queue of {queue_depth} is full")
            }
            WireError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline of {budget_ms} ms exceeded while queued")
            }
            WireError::ShuttingDown => f.write_str("server is shutting down"),
            WireError::Invalid(reason) => write!(f, "invalid request: {reason}"),
            WireError::MapFailed { name, error } => write!(f, "mapping `{name}` failed: {error}"),
            WireError::VerifyFailed {
                name,
                denies,
                first,
            } => write!(
                f,
                "verifying `{name}` failed with {denies} error(s); first: {first}"
            ),
            WireError::UnsupportedVersion {
                requested,
                supported,
            } => write!(
                f,
                "protocol version {requested} is not served (server speaks v{supported})"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// A server-to-client message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// A served mapping.
    Mapped(MapSummary),
    /// A served batch.
    Batch(BatchSummary),
    /// Statistics snapshot.
    Stats(StatsSummary),
    /// Health snapshot.
    Health(HealthSummary),
    /// Acknowledges a [`Request::Reset`]; carries the number of cache
    /// entries dropped.
    ResetDone {
        /// Cache entries dropped by the reset.
        dropped_entries: u64,
    },
    /// Acknowledges a [`Request::Shutdown`]; the server drains and exits.
    ShutdownStarted,
    /// A typed error.
    Error(WireError),
    /// Acknowledges a [`Hello`] handshake (protocol v2).
    Hello(HelloAck),
    /// A metrics scrape: the exposition format and the rendered body.
    Metrics {
        /// The format the body is rendered in.
        format: MetricsFormat,
        /// The rendered exposition document.
        body: String,
    },
    /// A flight-recorder dump as one JSON document.
    Dump {
        /// The JSON dump (`{"shards":[...],"traces":[...]}`).
        json: String,
    },
}

const RESP_MAPPED: u8 = 1;
const RESP_BATCH: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_HEALTH: u8 = 4;
const RESP_RESET: u8 = 5;
const RESP_SHUTDOWN: u8 = 6;
const RESP_ERROR: u8 = 7;
const RESP_HELLO: u8 = 8;
const RESP_METRICS: u8 = 9;
const RESP_DUMP: u8 = 10;

const ERR_OVERLOADED: u8 = 1;
const ERR_DEADLINE: u8 = 2;
const ERR_SHUTTING_DOWN: u8 = 3;
const ERR_INVALID: u8 = 4;
const ERR_MAP_FAILED: u8 = 5;
const ERR_UNSUPPORTED_VERSION: u8 = 6;
const ERR_VERIFY_FAILED: u8 = 7;

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Response::Mapped(summary) => {
                e.u8(RESP_MAPPED);
                summary.encode(&mut e);
            }
            Response::Batch(batch) => {
                e.u8(RESP_BATCH);
                batch.encode(&mut e);
            }
            Response::Stats(stats) => {
                e.u8(RESP_STATS);
                stats.encode(&mut e);
            }
            Response::Health(health) => {
                e.u8(RESP_HEALTH);
                e.u64(health.uptime_micros);
                e.u64(health.in_flight);
                e.bool(health.draining);
            }
            Response::ResetDone { dropped_entries } => {
                e.u8(RESP_RESET);
                e.u64(*dropped_entries);
            }
            Response::ShutdownStarted => e.u8(RESP_SHUTDOWN),
            Response::Error(error) => {
                e.u8(RESP_ERROR);
                match error {
                    WireError::Overloaded { queue_depth } => {
                        e.u8(ERR_OVERLOADED);
                        e.u64(*queue_depth);
                    }
                    WireError::DeadlineExceeded { budget_ms } => {
                        e.u8(ERR_DEADLINE);
                        e.u64(*budget_ms);
                    }
                    WireError::ShuttingDown => e.u8(ERR_SHUTTING_DOWN),
                    WireError::Invalid(reason) => {
                        e.u8(ERR_INVALID);
                        e.str(reason);
                    }
                    WireError::MapFailed { name, error } => {
                        e.u8(ERR_MAP_FAILED);
                        e.str(name);
                        e.str(error);
                    }
                    WireError::VerifyFailed {
                        name,
                        denies,
                        first,
                    } => {
                        e.u8(ERR_VERIFY_FAILED);
                        e.str(name);
                        e.u64(*denies);
                        e.str(first);
                    }
                    WireError::UnsupportedVersion {
                        requested,
                        supported,
                    } => {
                        e.u8(ERR_UNSUPPORTED_VERSION);
                        e.u32(*requested);
                        e.u32(*supported);
                    }
                }
            }
            Response::Hello(ack) => {
                e.u8(RESP_HELLO);
                e.u32(ack.version);
                e.u32(ack.shards);
                e.u32(ack.max_in_flight);
            }
            Response::Metrics { format, body } => {
                e.u8(RESP_METRICS);
                e.u8(format.tag());
                e.str(body);
            }
            Response::Dump { json } => {
                e.u8(RESP_DUMP);
                e.str(json);
            }
        }
        e.buf
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// Returns a typed [`ProtocolError`] on truncated, corrupt or trailing
    /// bytes; never panics.
    pub fn decode(bytes: &[u8]) -> Result<Response, ProtocolError> {
        let mut d = Dec::new(bytes);
        let response = match d.u8("response tag")? {
            RESP_MAPPED => Response::Mapped(MapSummary::decode(&mut d)?),
            RESP_BATCH => Response::Batch(BatchSummary::decode(&mut d)?),
            RESP_STATS => Response::Stats(StatsSummary::decode(&mut d)?),
            RESP_HEALTH => Response::Health(HealthSummary {
                uptime_micros: d.u64("health.uptime")?,
                in_flight: d.u64("health.in_flight")?,
                draining: d.bool("health.draining")?,
            }),
            RESP_RESET => Response::ResetDone {
                dropped_entries: d.u64("reset.dropped")?,
            },
            RESP_SHUTDOWN => Response::ShutdownStarted,
            RESP_ERROR => Response::Error(match d.u8("error tag")? {
                ERR_OVERLOADED => WireError::Overloaded {
                    queue_depth: d.u64("error.queue_depth")?,
                },
                ERR_DEADLINE => WireError::DeadlineExceeded {
                    budget_ms: d.u64("error.budget_ms")?,
                },
                ERR_SHUTTING_DOWN => WireError::ShuttingDown,
                ERR_INVALID => WireError::Invalid(d.str("error.reason")?),
                ERR_MAP_FAILED => WireError::MapFailed {
                    name: d.str("error.name")?,
                    error: d.str("error.error")?,
                },
                ERR_VERIFY_FAILED => WireError::VerifyFailed {
                    name: d.str("error.name")?,
                    denies: d.u64("error.denies")?,
                    first: d.str("error.first")?,
                },
                ERR_UNSUPPORTED_VERSION => WireError::UnsupportedVersion {
                    requested: d.u32("error.requested")?,
                    supported: d.u32("error.supported")?,
                },
                tag => {
                    return Err(ProtocolError::BadTag {
                        context: "error tag",
                        tag,
                    })
                }
            }),
            RESP_HELLO => Response::Hello(HelloAck {
                version: d.u32("hello.version")?,
                shards: d.u32("hello.shards")?,
                max_in_flight: d.u32("hello.max_in_flight")?,
            }),
            RESP_METRICS => Response::Metrics {
                format: MetricsFormat::from_tag(d.u8("metrics format")?)?,
                body: d.str("metrics.body")?,
            },
            RESP_DUMP => Response::Dump {
                json: d.str("dump.json")?,
            },
            tag => {
                return Err(ProtocolError::BadTag {
                    context: "response tag",
                    tag,
                })
            }
        };
        d.finish(response)
    }
}

// ---------------------------------------------------------------------------
// Program digest
// ---------------------------------------------------------------------------

/// FNV-1a, the classic dependency-free stable hash: unlike
/// `DefaultHasher`, its output is guaranteed identical across processes, so
/// a digest computed by the daemon can be compared against one computed by
/// a test or a client on the other side of the wire.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.byte(byte);
        }
    }

    fn usize(&mut self, value: usize) {
        self.u64(value as u64);
    }

    fn str(&mut self, value: &str) {
        self.usize(value.len());
        for byte in value.as_bytes() {
            self.byte(*byte);
        }
    }
}

/// A stable structural digest of a mapped program: the headline report
/// numbers, the per-cycle occupancy pattern of every tile, and the scalar
/// output names.  Equal digests mean the server handed out the same mapping
/// — the cheap cross-process identity check used by the end-to-end tests
/// and the load generator (building the full listing per request would cost
/// more than a warm cache hit itself).
pub fn program_digest(result: &MappingResult) -> u64 {
    let mut fnv = Fnv::new();
    let report = &result.report;
    for value in [
        report.operations,
        report.clusters,
        report.levels,
        report.cycles,
        report.stall_cycles,
        report.alus_used,
        report.register_hits,
        report.register_misses,
        report.mem_writebacks,
        report.crossbar_transfers,
        report.tiles.max(1),
        report.inter_tile_transfers,
    ] {
        fnv.usize(value);
    }
    let mut digest_tile = |program: &fpfa_core::TileProgram| {
        fnv.usize(program.cycle_count());
        for cycle in &program.cycles {
            fnv.usize(cycle.alus.len());
            fnv.usize(cycle.moves.len());
            fnv.usize(cycle.writebacks.len());
        }
    };
    match &result.multi {
        Some(multi) => {
            for tile in &multi.program.tiles {
                digest_tile(tile);
            }
            fnv.usize(multi.program.transfers.len());
            for (name, tile, _) in &multi.program.scalar_outputs {
                fnv.str(name);
                fnv.usize(*tile);
            }
        }
        None => {
            digest_tile(&result.program);
            for (name, _) in &result.program.scalar_outputs {
                fnv.str(name);
            }
        }
    }
    fnv.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_verbs() {
        let requests = [
            Request::Map {
                kernel: KernelSource::new("fir", "void main() {}"),
                knobs: MapKnobs {
                    tiles: 4,
                    pps: 3,
                    clustering: false,
                    locality: true,
                    simulate: true,
                    verify: true,
                    deadline_ms: 250,
                },
            },
            Request::Batch {
                kernels: vec![
                    KernelSource::new("a", "void main() {}"),
                    KernelSource::new("b", "int x;"),
                ],
                knobs: MapKnobs::default(),
            },
            Request::Stats,
            Request::Reset,
            Request::Health,
            Request::Shutdown,
            Request::Metrics {
                format: MetricsFormat::Prometheus,
            },
            Request::Metrics {
                format: MetricsFormat::Json,
            },
            Request::Dump,
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn response_roundtrip_all_variants() {
        let summary = MapSummary {
            name: "fir".into(),
            digest: 0xdead_beef,
            operations: 10,
            clusters: 4,
            levels: 3,
            cycles: 7,
            tiles: 1,
            inter_tile_transfers: 0,
            cache: CacheFlavor::MappingHit,
            sim: Some(SimSummary {
                cycles: 7,
                checksum: -42,
            }),
            server_micros: 120,
        };
        let responses = [
            Response::Mapped(summary.clone()),
            Response::Batch(BatchSummary {
                entries: vec![
                    BatchEntrySummary {
                        name: "fir".into(),
                        outcome: Ok(summary),
                    },
                    BatchEntrySummary {
                        name: "bad".into(),
                        outcome: Err("frontend: nope".into()),
                    },
                ],
                wall_micros: 900,
                deduped: 1,
            }),
            Response::Stats(StatsSummary {
                accepted: 3,
                rejected_version: 1,
                protocol_errors: 2,
                fast_hits: 40,
                l0_hits: 33,
                persist_loads: 7,
                persist_stores: 11,
                persist_corrupt_skipped: 1,
                persist_warm_start_entries: 5,
                persist_compactions: 2,
                map_latency: {
                    let mut h = Histogram::default();
                    h.record(10);
                    h.record(100_000);
                    h
                },
                shards: vec![
                    ShardStatsSummary {
                        connections: 2,
                        accepted: 3,
                        served: 3,
                        bytes_in: 4096,
                        bytes_out: 8192,
                    },
                    ShardStatsSummary::default(),
                ],
                ..StatsSummary::default()
            }),
            Response::Hello(HelloAck {
                version: PROTOCOL_VERSION,
                shards: 4,
                max_in_flight: 1024,
            }),
            Response::Error(WireError::UnsupportedVersion {
                requested: 1,
                supported: 2,
            }),
            Response::Health(HealthSummary {
                uptime_micros: 5,
                in_flight: 2,
                draining: true,
            }),
            Response::ResetDone { dropped_entries: 9 },
            Response::ShutdownStarted,
            Response::Error(WireError::Overloaded { queue_depth: 64 }),
            Response::Error(WireError::DeadlineExceeded { budget_ms: 100 }),
            Response::Error(WireError::ShuttingDown),
            Response::Error(WireError::Invalid("empty batch".into())),
            Response::Error(WireError::MapFailed {
                name: "bad".into(),
                error: "loops remain".into(),
            }),
            Response::Metrics {
                format: MetricsFormat::Prometheus,
                body: "# TYPE serve_accepted counter\nserve_accepted 3\n".into(),
            },
            Response::Metrics {
                format: MetricsFormat::Json,
                body: "{\"metrics\":[]}".into(),
            },
            Response::Dump {
                json: "{\"shards\":[],\"traces\":[]}".into(),
            },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed_errors() {
        let bytes = Request::Map {
            kernel: KernelSource::new("k", "src"),
            knobs: MapKnobs::default(),
        }
        .encode();
        for cut in 0..bytes.len() {
            let err = Request::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ProtocolError::Truncated { .. }
                        | ProtocolError::BadTag { .. }
                        | ProtocolError::BadLength { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert_eq!(
            Request::decode(&padded),
            Err(ProtocolError::TrailingBytes { count: 1 })
        );
    }

    #[test]
    fn corrupt_sequence_lengths_are_rejected_without_allocation() {
        // A batch claiming u32::MAX kernels in a 10-byte payload.
        let mut bytes = vec![REQ_BATCH];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 5]);
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtocolError::BadLength { .. })
        ));
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());

        let mut oversize = io::Cursor::new(((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut oversize),
            Err(FrameError::TooLarge { .. })
        ));

        // EOF in the middle of a frame is an error, not a silent None.
        let mut torn = io::Cursor::new(vec![200, 0, 0, 0, 1, 2, 3]);
        assert!(matches!(read_frame(&mut torn), Err(FrameError::Io(_))));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut h = Histogram::default();
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for micros in [3, 3, 3, 900] {
            h.record(micros);
        }
        // Three of four observations sit in the `< 4 µs` bucket.
        assert_eq!(h.quantile_upper_bound(0.5), Some(4));
        assert_eq!(h.quantile_upper_bound(1.0), Some(1024));
        assert_eq!(h.total(), 4);
        // An observation in the overflow bucket has no finite bound.
        h.record(u64::MAX);
        assert_eq!(h.quantile_upper_bound(1.0), None);
        assert_eq!(h.quantile_upper_bound(0.5), Some(4));
    }

    #[test]
    fn hello_roundtrip_and_v1_discrimination() {
        let hello = Hello::current();
        let encoded = hello.encode();
        assert!(Hello::looks_like_hello(&encoded));
        assert_eq!(Hello::decode(&encoded).unwrap(), hello);

        // No v1 request payload can be mistaken for a hello: the first byte
        // is a request tag in 1..=6, never b'F'.
        for request in [
            Request::Map {
                kernel: KernelSource::new("k", "src"),
                knobs: MapKnobs::default(),
            },
            Request::Stats,
            Request::Shutdown,
        ] {
            assert!(!Hello::looks_like_hello(&request.encode()));
        }

        // Truncated magic / trailing bytes are typed errors.
        assert!(matches!(
            Hello::decode(b"FP"),
            Err(ProtocolError::BadTag { .. })
        ));
        assert!(matches!(
            Hello::decode(b"FPFA\x02\x00"),
            Err(ProtocolError::Truncated { .. })
        ));
        let mut padded = encoded;
        padded.push(0);
        assert!(matches!(
            Hello::decode(&padded),
            Err(ProtocolError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn v2_frames_carry_and_recover_request_ids() {
        let request = Request::Map {
            kernel: KernelSource::new("fir", "void main() {}"),
            knobs: MapKnobs::default(),
        };
        let payload = encode_request_frame(77, &request);
        assert_eq!(request_id_of(&payload), Some(77));
        assert_eq!(decode_request_frame(&payload).unwrap(), (77, request));

        let response = Response::ShutdownStarted;
        let payload = encode_response_frame(u64::MAX - 1, &response);
        assert_eq!(
            decode_response_frame(&payload).unwrap(),
            (u64::MAX - 1, response)
        );

        // A corrupt body still yields its id for the error echo.
        let mut corrupt = encode_request_frame(9, &Request::Stats);
        corrupt.push(0xff);
        assert_eq!(request_id_of(&corrupt), Some(9));
        assert!(decode_request_frame(&corrupt).is_err());

        // Too short for even the id prefix.
        assert_eq!(request_id_of(&[1, 2, 3]), None);
        assert!(matches!(
            decode_request_frame(&[1, 2, 3]),
            Err(ProtocolError::Truncated { .. })
        ));
    }

    #[test]
    fn frame_buffer_yields_frames_across_arbitrary_read_boundaries() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"beta").unwrap();

        // Feed one byte at a time: frames must come out intact, in order.
        let mut fb = FrameBuffer::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for byte in &wire {
            fb.extend(std::slice::from_ref(byte));
            while let Some(frame) = fb.next_frame().unwrap() {
                got.push(frame.to_vec());
            }
        }
        assert_eq!(got, vec![b"alpha".to_vec(), Vec::new(), b"beta".to_vec()]);
        assert_eq!(fb.pending(), 0);

        // An oversize announced length is rejected before buffering.
        let mut fb = FrameBuffer::new();
        fb.extend(&((MAX_FRAME_LEN + 1) as u32).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn digest_distinguishes_programs() {
        let mapper = fpfa_core::pipeline::Mapper::new();
        let fir = mapper
            .map_source(
                "void main() { int a[4]; int c[4]; int s; int i; s = 0; i = 0;
                  while (i < 4) { s = s + a[i] * c[i]; i = i + 1; } }",
            )
            .unwrap();
        let other = mapper
            .map_source("void main() { int a[2]; int r; r = a[0] + a[1]; }")
            .unwrap();
        assert_eq!(program_digest(&fir), program_digest(&fir));
        assert_ne!(program_digest(&fir), program_digest(&other));
    }
}
