//! The `fpfa-serve` wire protocol: length-prefixed frames carrying a
//! hand-rolled binary encoding of requests and responses.
//!
//! The protocol is deliberately tiny and dependency-free (the workspace has
//! no crates.io access, so there is no serde):
//!
//! * **Framing** — every message is a little-endian `u32` payload length
//!   followed by that many payload bytes.  [`read_frame`] / [`write_frame`]
//!   are the only functions that touch the socket; everything else is a pure
//!   `bytes -> value` / `value -> bytes` layer that is testable without any
//!   I/O.  Frames above [`MAX_FRAME_LEN`] are rejected before any allocation
//!   happens, so a corrupt length prefix cannot balloon memory.
//! * **Requests** ([`Request`]) — `map` (one kernel + [`MapKnobs`]), `batch`
//!   (many kernels under one knob set), `stats`, `reset` (drop cached
//!   entries and zero the counters), `health` and `shutdown`.
//! * **Responses** ([`Response`]) — a mapping summary (headline report
//!   numbers plus a structural [program digest](program_digest) and the
//!   cache outcome), a batch summary, server statistics including per-verb
//!   latency [`Histogram`]s, a health snapshot, acks, or a *typed*
//!   [`WireError`].  Admission-control rejections travel as
//!   [`WireError::Overloaded`] — a first-class response, never a dropped
//!   connection.
//!
//! Decoding never panics: every malformed, truncated or oversized input
//! yields a typed [`ProtocolError`] (the property tests fuzz this).

use fpfa_core::cache::CacheOutcome;
use fpfa_core::pipeline::MappingResult;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload, request or response (16 MiB —
/// generous for batches of kernel sources, small enough that a corrupt
/// length prefix cannot balloon memory).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Number of latency buckets in a [`Histogram`]: bucket `i` counts requests
/// that finished in `< 2^i` microseconds, the last bucket is the overflow.
pub const HISTOGRAM_BUCKETS: usize = 24;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed decoding failure.  Decoding never panics; every malformed input
/// maps onto one of these.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolError {
    /// The payload ended before the value under `context` was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A tag byte does not name any variant of the value under `context`.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length field exceeds [`MAX_FRAME_LEN`] (or the remaining payload).
    BadLength {
        /// What was being decoded.
        context: &'static str,
        /// The claimed length.
        len: u64,
    },
    /// A string field is not valid UTF-8.
    BadUtf8 {
        /// What was being decoded.
        context: &'static str,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes {
        /// How many bytes were left.
        count: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated { context } => {
                write!(f, "truncated payload while decoding {context}")
            }
            ProtocolError::BadTag { context, tag } => {
                write!(f, "unknown tag {tag:#04x} while decoding {context}")
            }
            ProtocolError::BadLength { context, len } => {
                write!(f, "implausible length {len} while decoding {context}")
            }
            ProtocolError::BadUtf8 { context } => {
                write!(f, "invalid UTF-8 while decoding {context}")
            }
            ProtocolError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after a complete message")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A framing failure on the socket.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying read or write failed.
    Io(io::Error),
    /// The peer announced a frame above [`MAX_FRAME_LEN`].
    TooLarge {
        /// The announced payload length.
        len: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::TooLarge { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (little-endian `u32` length + payload).  The caller
/// flushes the stream when the message must reach the peer.
///
/// # Errors
/// Propagates I/O errors; rejects payloads above [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge {
            len: payload.len() as u64,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
/// Propagates I/O errors (including mid-frame EOF as
/// [`io::ErrorKind::UnexpectedEof`]); rejects frames above
/// [`MAX_FRAME_LEN`] before allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before the first length byte means the peer hung up
    // between messages; EOF after that is a torn frame.
    match r.read(&mut len_bytes) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_bytes[n..])?,
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Pure byte readers/writers
// ---------------------------------------------------------------------------

/// Append-only encoder over a byte buffer.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Cursor-based decoder returning typed errors, never panicking.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(ProtocolError::Truncated { context })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, context)?[0])
    }

    fn bool(&mut self, context: &'static str) -> Result<bool, ProtocolError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ProtocolError::BadTag { context, tag }),
        }
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, ProtocolError> {
        let bytes = self.take(4, context)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ProtocolError> {
        let bytes = self.take(8, context)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(raw))
    }

    fn i64(&mut self, context: &'static str) -> Result<i64, ProtocolError> {
        Ok(self.u64(context)? as i64)
    }

    fn str(&mut self, context: &'static str) -> Result<String, ProtocolError> {
        let len = self.u32(context)? as usize;
        if len > MAX_FRAME_LEN {
            return Err(ProtocolError::BadLength {
                context,
                len: len as u64,
            });
        }
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8 { context })
    }

    /// Upper bound for decoded collection lengths: every element needs at
    /// least one byte, so any claimed length beyond the remaining payload is
    /// corrupt (and would otherwise pre-allocate unboundedly).
    fn seq_len(&mut self, context: &'static str) -> Result<usize, ProtocolError> {
        let len = self.u32(context)? as usize;
        if len > self.bytes.len().saturating_sub(self.pos) {
            return Err(ProtocolError::BadLength {
                context,
                len: len as u64,
            });
        }
        Ok(len)
    }

    fn finish<T>(self, value: T) -> Result<T, ProtocolError> {
        let left = self.bytes.len() - self.pos;
        if left > 0 {
            return Err(ProtocolError::TrailingBytes { count: left });
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Per-request mapping knobs, mirroring the `fpfa-map` flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MapKnobs {
    /// Tile-array size the kernel is partitioned across; `0` inherits the
    /// daemon's configured default (`fpfa-serve --tiles`).
    pub tiles: u32,
    /// Processing parts per tile; `0` inherits the daemon's configured
    /// default (`fpfa-serve --pps`).
    pub pps: u32,
    /// Phase-1 clustering (off = one operation per cluster).  The toggles
    /// can only *disable* features relative to the daemon's configuration.
    pub clustering: bool,
    /// Locality of reference in the allocator.
    pub locality: bool,
    /// Also run the mapped program on the cycle-accurate simulator with the
    /// deterministic test signal and report the executed cycles/checksum.
    pub simulate: bool,
    /// Per-request deadline budget in milliseconds, measured from admission
    /// to the job queue; `0` uses the server's default.  A request that
    /// waits out its budget in the queue is answered with
    /// [`WireError::DeadlineExceeded`] instead of being mapped late.
    pub deadline_ms: u32,
}

impl Default for MapKnobs {
    fn default() -> Self {
        MapKnobs {
            tiles: 0,
            pps: 0,
            clustering: true,
            locality: true,
            simulate: false,
            deadline_ms: 0,
        }
    }
}

impl MapKnobs {
    fn encode(&self, e: &mut Enc) {
        e.u32(self.tiles);
        e.u32(self.pps);
        e.bool(self.clustering);
        e.bool(self.locality);
        e.bool(self.simulate);
        e.u32(self.deadline_ms);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        Ok(MapKnobs {
            tiles: d.u32("knobs.tiles")?,
            pps: d.u32("knobs.pps")?,
            clustering: d.bool("knobs.clustering")?,
            locality: d.bool("knobs.locality")?,
            simulate: d.bool("knobs.simulate")?,
            deadline_ms: d.u32("knobs.deadline_ms")?,
        })
    }
}

/// One kernel to map: a report name plus its C-subset source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KernelSource {
    /// Name echoed back in the summary.
    pub name: String,
    /// The C-subset source text.
    pub source: String,
}

impl KernelSource {
    /// Creates a named kernel source.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        KernelSource {
            name: name.into(),
            source: source.into(),
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.str(&self.source);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        Ok(KernelSource {
            name: d.str("kernel.name")?,
            source: d.str("kernel.source")?,
        })
    }
}

/// A client-to-server message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Map one kernel.
    Map {
        /// The kernel to map.
        kernel: KernelSource,
        /// Mapping knobs.
        knobs: MapKnobs,
    },
    /// Map a batch of kernels under one knob set (served by the service's
    /// parallel `map_many`, including in-batch dedup).
    Batch {
        /// The kernels to map.
        kernels: Vec<KernelSource>,
        /// Mapping knobs shared by the whole batch.
        knobs: MapKnobs,
    },
    /// Ask for the server's statistics (admission counters, latency
    /// histograms, cache hit ratio).
    Stats,
    /// Drop every cached mapping and zero the statistics counters.
    Reset,
    /// Liveness / drain-state probe.
    Health,
    /// Begin a graceful shutdown: the server stops accepting work, drains
    /// queued jobs, then exits.
    Shutdown,
}

const REQ_MAP: u8 = 1;
const REQ_BATCH: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_RESET: u8 = 4;
const REQ_HEALTH: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Request::Map { kernel, knobs } => {
                e.u8(REQ_MAP);
                kernel.encode(&mut e);
                knobs.encode(&mut e);
            }
            Request::Batch { kernels, knobs } => {
                e.u8(REQ_BATCH);
                e.u32(kernels.len() as u32);
                for kernel in kernels {
                    kernel.encode(&mut e);
                }
                knobs.encode(&mut e);
            }
            Request::Stats => e.u8(REQ_STATS),
            Request::Reset => e.u8(REQ_RESET),
            Request::Health => e.u8(REQ_HEALTH),
            Request::Shutdown => e.u8(REQ_SHUTDOWN),
        }
        e.buf
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// Returns a typed [`ProtocolError`] on truncated, corrupt or trailing
    /// bytes; never panics.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtocolError> {
        let mut d = Dec::new(bytes);
        let request = match d.u8("request tag")? {
            REQ_MAP => Request::Map {
                kernel: KernelSource::decode(&mut d)?,
                knobs: MapKnobs::decode(&mut d)?,
            },
            REQ_BATCH => {
                let count = d.seq_len("batch count")?;
                let mut kernels = Vec::with_capacity(count);
                for _ in 0..count {
                    kernels.push(KernelSource::decode(&mut d)?);
                }
                Request::Batch {
                    kernels,
                    knobs: MapKnobs::decode(&mut d)?,
                }
            }
            REQ_STATS => Request::Stats,
            REQ_RESET => Request::Reset,
            REQ_HEALTH => Request::Health,
            REQ_SHUTDOWN => Request::Shutdown,
            tag => {
                return Err(ProtocolError::BadTag {
                    context: "request tag",
                    tag,
                })
            }
        };
        d.finish(request)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// How a served mapping interacted with the content-addressed cache
/// (the wire rendering of [`CacheOutcome`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheFlavor {
    /// No cache was consulted.
    Uncached,
    /// Both cache levels missed; the full flow ran.
    Miss,
    /// Served from the full-mapping cache without running any stage.
    MappingHit,
    /// Cluster/partition/schedule/allocate work was reused.
    PostTransformHit,
}

impl From<CacheOutcome> for CacheFlavor {
    fn from(outcome: CacheOutcome) -> Self {
        match outcome {
            CacheOutcome::Uncached => CacheFlavor::Uncached,
            CacheOutcome::Miss => CacheFlavor::Miss,
            CacheOutcome::MappingHit => CacheFlavor::MappingHit,
            CacheOutcome::PostTransformHit => CacheFlavor::PostTransformHit,
        }
    }
}

impl fmt::Display for CacheFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CacheFlavor::Uncached => "uncached",
            CacheFlavor::Miss => "miss",
            CacheFlavor::MappingHit => "mapping hit",
            CacheFlavor::PostTransformHit => "post-transform hit",
        })
    }
}

impl CacheFlavor {
    fn tag(self) -> u8 {
        match self {
            CacheFlavor::Uncached => 0,
            CacheFlavor::Miss => 1,
            CacheFlavor::MappingHit => 2,
            CacheFlavor::PostTransformHit => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, ProtocolError> {
        Ok(match tag {
            0 => CacheFlavor::Uncached,
            1 => CacheFlavor::Miss,
            2 => CacheFlavor::MappingHit,
            3 => CacheFlavor::PostTransformHit,
            tag => {
                return Err(ProtocolError::BadTag {
                    context: "cache flavor",
                    tag,
                })
            }
        })
    }
}

/// Result of running the mapped program on the cycle-accurate simulator
/// (present when the request set [`MapKnobs::simulate`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimSummary {
    /// Executed clock cycles.
    pub cycles: u64,
    /// Sum of the scalar outputs under the deterministic test signal — a
    /// cheap end-to-end checksum clients can compare across runs.
    pub checksum: i64,
}

/// Headline numbers of one served mapping.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MapSummary {
    /// The kernel name from the request (disambiguated inside batches).
    pub name: String,
    /// Structural digest of the mapped program ([`program_digest`]): equal
    /// digests ⇒ the server produced the same mapping.
    pub digest: u64,
    /// Operations in the simplified mapping graph.
    pub operations: u64,
    /// Phase-1 clusters.
    pub clusters: u64,
    /// Phase-2 schedule levels.
    pub levels: u64,
    /// Phase-3 clock cycles.
    pub cycles: u64,
    /// Tiles the mapping targets.
    pub tiles: u64,
    /// Values routed over the inter-tile interconnect.
    pub inter_tile_transfers: u64,
    /// How the cache served this request.
    pub cache: CacheFlavor,
    /// Simulation outcome when requested.
    pub sim: Option<SimSummary>,
    /// Server-side handling time (admission to response) in microseconds.
    pub server_micros: u64,
}

impl MapSummary {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.u64(self.digest);
        e.u64(self.operations);
        e.u64(self.clusters);
        e.u64(self.levels);
        e.u64(self.cycles);
        e.u64(self.tiles);
        e.u64(self.inter_tile_transfers);
        e.u8(self.cache.tag());
        match &self.sim {
            Some(sim) => {
                e.bool(true);
                e.u64(sim.cycles);
                e.i64(sim.checksum);
            }
            None => e.bool(false),
        }
        e.u64(self.server_micros);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        Ok(MapSummary {
            name: d.str("summary.name")?,
            digest: d.u64("summary.digest")?,
            operations: d.u64("summary.operations")?,
            clusters: d.u64("summary.clusters")?,
            levels: d.u64("summary.levels")?,
            cycles: d.u64("summary.cycles")?,
            tiles: d.u64("summary.tiles")?,
            inter_tile_transfers: d.u64("summary.inter_tile_transfers")?,
            cache: CacheFlavor::from_tag(d.u8("cache flavor")?)?,
            sim: if d.bool("summary.sim flag")? {
                Some(SimSummary {
                    cycles: d.u64("sim.cycles")?,
                    checksum: d.i64("sim.checksum")?,
                })
            } else {
                None
            },
            server_micros: d.u64("summary.server_micros")?,
        })
    }
}

/// One entry of a batch response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchEntrySummary {
    /// Disambiguated entry name (`name`, `name#2`, … as in `fpfa-map`).
    pub name: String,
    /// The mapping summary, or the kernel's error rendering.
    pub outcome: Result<MapSummary, String>,
}

/// Aggregate response to a [`Request::Batch`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchSummary {
    /// Per-kernel outcomes in input order.
    pub entries: Vec<BatchEntrySummary>,
    /// Wall-clock of the whole batch, in microseconds.
    pub wall_micros: u64,
    /// Specs served by in-batch source deduplication.
    pub deduped: u64,
}

impl BatchSummary {
    /// Number of entries that mapped successfully.
    pub fn succeeded(&self) -> usize {
        self.entries.iter().filter(|e| e.outcome.is_ok()).count()
    }

    fn encode(&self, e: &mut Enc) {
        e.u32(self.entries.len() as u32);
        for entry in &self.entries {
            e.str(&entry.name);
            match &entry.outcome {
                Ok(summary) => {
                    e.bool(true);
                    summary.encode(e);
                }
                Err(error) => {
                    e.bool(false);
                    e.str(error);
                }
            }
        }
        e.u64(self.wall_micros);
        e.u64(self.deduped);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        let count = d.seq_len("batch entries")?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let name = d.str("batch entry name")?;
            let outcome = if d.bool("batch entry flag")? {
                Ok(MapSummary::decode(d)?)
            } else {
                Err(d.str("batch entry error")?)
            };
            entries.push(BatchEntrySummary { name, outcome });
        }
        Ok(BatchSummary {
            entries,
            wall_micros: d.u64("batch wall")?,
            deduped: d.u64("batch deduped")?,
        })
    }
}

/// A power-of-two latency histogram: bucket `i` counts requests that
/// completed in `< 2^i` microseconds (the last bucket is the overflow).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    /// Bucket counts ([`HISTOGRAM_BUCKETS`] of them).
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// The bucket index a latency of `micros` lands in.
    pub fn bucket_of(micros: u64) -> usize {
        ((u64::BITS - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation (used by the client-side merge; the server
    /// records into atomics).
    pub fn record(&mut self, micros: u64) {
        self.buckets[Self::bucket_of(micros)] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile observation.
    /// Bucketed, so the value is a ≤ 2x overestimate — plenty for "p99
    /// under a millisecond" style statements.  `None` while empty, and
    /// `None` when the quantile lands in the overflow bucket (such an
    /// observation has no finite bound to report).
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                if index + 1 == self.buckets.len() {
                    return None; // overflow bucket: not actually a bound
                }
                return Some(1u64 << index.min(63));
            }
        }
        None
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u32(self.buckets.len() as u32);
        for &count in &self.buckets {
            e.u64(count);
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        let count = d.seq_len("histogram buckets")?;
        let mut buckets = Vec::with_capacity(count);
        for _ in 0..count {
            buckets.push(d.u64("histogram bucket")?);
        }
        Ok(Histogram { buckets })
    }
}

/// Server statistics: admission counters, per-verb latency histograms and
/// the mapping cache's counters.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StatsSummary {
    /// Connections accepted since start (or the last reset).
    pub connections: u64,
    /// Requests admitted to the job queue.
    pub accepted: u64,
    /// Requests answered with a mapping or batch summary.
    pub served_ok: u64,
    /// Requests whose kernel failed to map (typed `MapFailed` responses).
    pub served_err: u64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_overload: u64,
    /// Requests dropped because their deadline budget lapsed in the queue.
    pub rejected_deadline: u64,
    /// Requests rejected because the server was draining.
    pub rejected_shutdown: u64,
    /// Configured worker threads.
    pub workers: u64,
    /// Configured job-queue capacity.
    pub queue_depth: u64,
    /// Full-mapping cache hits.
    pub cache_mapping_hits: u64,
    /// Full-mapping cache misses.
    pub cache_mapping_misses: u64,
    /// Post-transform cache hits.
    pub cache_post_hits: u64,
    /// Post-transform cache misses.
    pub cache_post_misses: u64,
    /// Cache entries currently resident.
    pub cache_entries: u64,
    /// Nominal cache capacity per level.
    pub cache_capacity: u64,
    /// Latency histogram of `map` requests (admission → response).
    pub map_latency: Histogram,
    /// Latency histogram of `batch` requests.
    pub batch_latency: Histogram,
}

impl StatsSummary {
    /// Fraction of full-mapping lookups that hit (`None` before the first).
    pub fn mapping_hit_rate(&self) -> Option<f64> {
        let total = self.cache_mapping_hits + self.cache_mapping_misses;
        (total > 0).then(|| self.cache_mapping_hits as f64 / total as f64)
    }

    fn encode(&self, e: &mut Enc) {
        for v in [
            self.connections,
            self.accepted,
            self.served_ok,
            self.served_err,
            self.rejected_overload,
            self.rejected_deadline,
            self.rejected_shutdown,
            self.workers,
            self.queue_depth,
            self.cache_mapping_hits,
            self.cache_mapping_misses,
            self.cache_post_hits,
            self.cache_post_misses,
            self.cache_entries,
            self.cache_capacity,
        ] {
            e.u64(v);
        }
        self.map_latency.encode(e);
        self.batch_latency.encode(e);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtocolError> {
        Ok(StatsSummary {
            connections: d.u64("stats.connections")?,
            accepted: d.u64("stats.accepted")?,
            served_ok: d.u64("stats.served_ok")?,
            served_err: d.u64("stats.served_err")?,
            rejected_overload: d.u64("stats.rejected_overload")?,
            rejected_deadline: d.u64("stats.rejected_deadline")?,
            rejected_shutdown: d.u64("stats.rejected_shutdown")?,
            workers: d.u64("stats.workers")?,
            queue_depth: d.u64("stats.queue_depth")?,
            cache_mapping_hits: d.u64("stats.cache_mapping_hits")?,
            cache_mapping_misses: d.u64("stats.cache_mapping_misses")?,
            cache_post_hits: d.u64("stats.cache_post_hits")?,
            cache_post_misses: d.u64("stats.cache_post_misses")?,
            cache_entries: d.u64("stats.cache_entries")?,
            cache_capacity: d.u64("stats.cache_capacity")?,
            map_latency: Histogram::decode(d)?,
            batch_latency: Histogram::decode(d)?,
        })
    }
}

/// A liveness snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HealthSummary {
    /// Microseconds since the server started.
    pub uptime_micros: u64,
    /// Jobs admitted but not yet answered (queued + running).
    pub in_flight: u64,
    /// `true` once a graceful shutdown has begun.
    pub draining: bool,
}

/// A typed service error — the admission-control and failure vocabulary of
/// the protocol.  Every rejection is a first-class response on a healthy
/// connection, never a dropped socket.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The bounded job queue was full; the request was rejected immediately
    /// instead of buffering without bound.  Back off and retry.
    Overloaded {
        /// The queue capacity that was exhausted.
        queue_depth: u64,
    },
    /// The request's deadline budget lapsed before a worker picked it up.
    DeadlineExceeded {
        /// The budget that lapsed, in milliseconds.
        budget_ms: u64,
    },
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The request was structurally invalid (bad knobs, empty batch, …).
    Invalid(String),
    /// The kernel failed to map; the payload is the flow error rendering.
    MapFailed {
        /// The kernel name from the request.
        name: String,
        /// The mapping error.
        error: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Overloaded { queue_depth } => {
                write!(f, "overloaded: job queue of {queue_depth} is full")
            }
            WireError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline of {budget_ms} ms exceeded while queued")
            }
            WireError::ShuttingDown => f.write_str("server is shutting down"),
            WireError::Invalid(reason) => write!(f, "invalid request: {reason}"),
            WireError::MapFailed { name, error } => write!(f, "mapping `{name}` failed: {error}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A server-to-client message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// A served mapping.
    Mapped(MapSummary),
    /// A served batch.
    Batch(BatchSummary),
    /// Statistics snapshot.
    Stats(StatsSummary),
    /// Health snapshot.
    Health(HealthSummary),
    /// Acknowledges a [`Request::Reset`]; carries the number of cache
    /// entries dropped.
    ResetDone {
        /// Cache entries dropped by the reset.
        dropped_entries: u64,
    },
    /// Acknowledges a [`Request::Shutdown`]; the server drains and exits.
    ShutdownStarted,
    /// A typed error.
    Error(WireError),
}

const RESP_MAPPED: u8 = 1;
const RESP_BATCH: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_HEALTH: u8 = 4;
const RESP_RESET: u8 = 5;
const RESP_SHUTDOWN: u8 = 6;
const RESP_ERROR: u8 = 7;

const ERR_OVERLOADED: u8 = 1;
const ERR_DEADLINE: u8 = 2;
const ERR_SHUTTING_DOWN: u8 = 3;
const ERR_INVALID: u8 = 4;
const ERR_MAP_FAILED: u8 = 5;

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Response::Mapped(summary) => {
                e.u8(RESP_MAPPED);
                summary.encode(&mut e);
            }
            Response::Batch(batch) => {
                e.u8(RESP_BATCH);
                batch.encode(&mut e);
            }
            Response::Stats(stats) => {
                e.u8(RESP_STATS);
                stats.encode(&mut e);
            }
            Response::Health(health) => {
                e.u8(RESP_HEALTH);
                e.u64(health.uptime_micros);
                e.u64(health.in_flight);
                e.bool(health.draining);
            }
            Response::ResetDone { dropped_entries } => {
                e.u8(RESP_RESET);
                e.u64(*dropped_entries);
            }
            Response::ShutdownStarted => e.u8(RESP_SHUTDOWN),
            Response::Error(error) => {
                e.u8(RESP_ERROR);
                match error {
                    WireError::Overloaded { queue_depth } => {
                        e.u8(ERR_OVERLOADED);
                        e.u64(*queue_depth);
                    }
                    WireError::DeadlineExceeded { budget_ms } => {
                        e.u8(ERR_DEADLINE);
                        e.u64(*budget_ms);
                    }
                    WireError::ShuttingDown => e.u8(ERR_SHUTTING_DOWN),
                    WireError::Invalid(reason) => {
                        e.u8(ERR_INVALID);
                        e.str(reason);
                    }
                    WireError::MapFailed { name, error } => {
                        e.u8(ERR_MAP_FAILED);
                        e.str(name);
                        e.str(error);
                    }
                }
            }
        }
        e.buf
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// Returns a typed [`ProtocolError`] on truncated, corrupt or trailing
    /// bytes; never panics.
    pub fn decode(bytes: &[u8]) -> Result<Response, ProtocolError> {
        let mut d = Dec::new(bytes);
        let response = match d.u8("response tag")? {
            RESP_MAPPED => Response::Mapped(MapSummary::decode(&mut d)?),
            RESP_BATCH => Response::Batch(BatchSummary::decode(&mut d)?),
            RESP_STATS => Response::Stats(StatsSummary::decode(&mut d)?),
            RESP_HEALTH => Response::Health(HealthSummary {
                uptime_micros: d.u64("health.uptime")?,
                in_flight: d.u64("health.in_flight")?,
                draining: d.bool("health.draining")?,
            }),
            RESP_RESET => Response::ResetDone {
                dropped_entries: d.u64("reset.dropped")?,
            },
            RESP_SHUTDOWN => Response::ShutdownStarted,
            RESP_ERROR => Response::Error(match d.u8("error tag")? {
                ERR_OVERLOADED => WireError::Overloaded {
                    queue_depth: d.u64("error.queue_depth")?,
                },
                ERR_DEADLINE => WireError::DeadlineExceeded {
                    budget_ms: d.u64("error.budget_ms")?,
                },
                ERR_SHUTTING_DOWN => WireError::ShuttingDown,
                ERR_INVALID => WireError::Invalid(d.str("error.reason")?),
                ERR_MAP_FAILED => WireError::MapFailed {
                    name: d.str("error.name")?,
                    error: d.str("error.error")?,
                },
                tag => {
                    return Err(ProtocolError::BadTag {
                        context: "error tag",
                        tag,
                    })
                }
            }),
            tag => {
                return Err(ProtocolError::BadTag {
                    context: "response tag",
                    tag,
                })
            }
        };
        d.finish(response)
    }
}

// ---------------------------------------------------------------------------
// Program digest
// ---------------------------------------------------------------------------

/// FNV-1a, the classic dependency-free stable hash: unlike
/// `DefaultHasher`, its output is guaranteed identical across processes, so
/// a digest computed by the daemon can be compared against one computed by
/// a test or a client on the other side of the wire.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.byte(byte);
        }
    }

    fn usize(&mut self, value: usize) {
        self.u64(value as u64);
    }

    fn str(&mut self, value: &str) {
        self.usize(value.len());
        for byte in value.as_bytes() {
            self.byte(*byte);
        }
    }
}

/// A stable structural digest of a mapped program: the headline report
/// numbers, the per-cycle occupancy pattern of every tile, and the scalar
/// output names.  Equal digests mean the server handed out the same mapping
/// — the cheap cross-process identity check used by the end-to-end tests
/// and the load generator (building the full listing per request would cost
/// more than a warm cache hit itself).
pub fn program_digest(result: &MappingResult) -> u64 {
    let mut fnv = Fnv::new();
    let report = &result.report;
    for value in [
        report.operations,
        report.clusters,
        report.levels,
        report.cycles,
        report.stall_cycles,
        report.alus_used,
        report.register_hits,
        report.register_misses,
        report.mem_writebacks,
        report.crossbar_transfers,
        report.tiles.max(1),
        report.inter_tile_transfers,
    ] {
        fnv.usize(value);
    }
    let mut digest_tile = |program: &fpfa_core::TileProgram| {
        fnv.usize(program.cycle_count());
        for cycle in &program.cycles {
            fnv.usize(cycle.alus.len());
            fnv.usize(cycle.moves.len());
            fnv.usize(cycle.writebacks.len());
        }
    };
    match &result.multi {
        Some(multi) => {
            for tile in &multi.program.tiles {
                digest_tile(tile);
            }
            fnv.usize(multi.program.transfers.len());
            for (name, tile, _) in &multi.program.scalar_outputs {
                fnv.str(name);
                fnv.usize(*tile);
            }
        }
        None => {
            digest_tile(&result.program);
            for (name, _) in &result.program.scalar_outputs {
                fnv.str(name);
            }
        }
    }
    fnv.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_verbs() {
        let requests = [
            Request::Map {
                kernel: KernelSource::new("fir", "void main() {}"),
                knobs: MapKnobs {
                    tiles: 4,
                    pps: 3,
                    clustering: false,
                    locality: true,
                    simulate: true,
                    deadline_ms: 250,
                },
            },
            Request::Batch {
                kernels: vec![
                    KernelSource::new("a", "void main() {}"),
                    KernelSource::new("b", "int x;"),
                ],
                knobs: MapKnobs::default(),
            },
            Request::Stats,
            Request::Reset,
            Request::Health,
            Request::Shutdown,
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn response_roundtrip_all_variants() {
        let summary = MapSummary {
            name: "fir".into(),
            digest: 0xdead_beef,
            operations: 10,
            clusters: 4,
            levels: 3,
            cycles: 7,
            tiles: 1,
            inter_tile_transfers: 0,
            cache: CacheFlavor::MappingHit,
            sim: Some(SimSummary {
                cycles: 7,
                checksum: -42,
            }),
            server_micros: 120,
        };
        let responses = [
            Response::Mapped(summary.clone()),
            Response::Batch(BatchSummary {
                entries: vec![
                    BatchEntrySummary {
                        name: "fir".into(),
                        outcome: Ok(summary),
                    },
                    BatchEntrySummary {
                        name: "bad".into(),
                        outcome: Err("frontend: nope".into()),
                    },
                ],
                wall_micros: 900,
                deduped: 1,
            }),
            Response::Stats(StatsSummary {
                accepted: 3,
                map_latency: {
                    let mut h = Histogram::default();
                    h.record(10);
                    h.record(100_000);
                    h
                },
                ..StatsSummary::default()
            }),
            Response::Health(HealthSummary {
                uptime_micros: 5,
                in_flight: 2,
                draining: true,
            }),
            Response::ResetDone { dropped_entries: 9 },
            Response::ShutdownStarted,
            Response::Error(WireError::Overloaded { queue_depth: 64 }),
            Response::Error(WireError::DeadlineExceeded { budget_ms: 100 }),
            Response::Error(WireError::ShuttingDown),
            Response::Error(WireError::Invalid("empty batch".into())),
            Response::Error(WireError::MapFailed {
                name: "bad".into(),
                error: "loops remain".into(),
            }),
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed_errors() {
        let bytes = Request::Map {
            kernel: KernelSource::new("k", "src"),
            knobs: MapKnobs::default(),
        }
        .encode();
        for cut in 0..bytes.len() {
            let err = Request::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ProtocolError::Truncated { .. }
                        | ProtocolError::BadTag { .. }
                        | ProtocolError::BadLength { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert_eq!(
            Request::decode(&padded),
            Err(ProtocolError::TrailingBytes { count: 1 })
        );
    }

    #[test]
    fn corrupt_sequence_lengths_are_rejected_without_allocation() {
        // A batch claiming u32::MAX kernels in a 10-byte payload.
        let mut bytes = vec![REQ_BATCH];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 5]);
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtocolError::BadLength { .. })
        ));
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());

        let mut oversize = io::Cursor::new(((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut oversize),
            Err(FrameError::TooLarge { .. })
        ));

        // EOF in the middle of a frame is an error, not a silent None.
        let mut torn = io::Cursor::new(vec![200, 0, 0, 0, 1, 2, 3]);
        assert!(matches!(read_frame(&mut torn), Err(FrameError::Io(_))));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut h = Histogram::default();
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for micros in [3, 3, 3, 900] {
            h.record(micros);
        }
        // Three of four observations sit in the `< 4 µs` bucket.
        assert_eq!(h.quantile_upper_bound(0.5), Some(4));
        assert_eq!(h.quantile_upper_bound(1.0), Some(1024));
        assert_eq!(h.total(), 4);
        // An observation in the overflow bucket has no finite bound.
        h.record(u64::MAX);
        assert_eq!(h.quantile_upper_bound(1.0), None);
        assert_eq!(h.quantile_upper_bound(0.5), Some(4));
    }

    #[test]
    fn digest_distinguishes_programs() {
        let mapper = fpfa_core::pipeline::Mapper::new();
        let fir = mapper
            .map_source(
                "void main() { int a[4]; int c[4]; int s; int i; s = 0; i = 0;
                  while (i < 4) { s = s + a[i] * c[i]; i = i + 1; } }",
            )
            .unwrap();
        let other = mapper
            .map_source("void main() { int a[2]; int r; r = a[0] + a[1]; }")
            .unwrap();
        assert_eq!(program_digest(&fir), program_digest(&fir));
        assert_ne!(program_digest(&fir), program_digest(&other));
    }
}
