//! End-to-end tests of the daemon: concurrent clients against a real
//! socket, byte-agreement with direct `MappingService` calls, typed
//! `Overloaded` rejections under queue saturation, deadline budgets, and
//! graceful shutdown.

use fpfa_core::pipeline::Mapper;
use fpfa_core::service::MappingService;
use fpfa_server::protocol::{
    decode_response_frame, encode_request_frame, read_frame, write_frame, Hello, KernelSource,
    MapKnobs, MetricsFormat, Request, Response, WireError, PROTOCOL_VERSION,
};
use fpfa_server::server::{Server, ServerConfig, ServerHandle};
use fpfa_server::{program_digest, Client, ClientError};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

fn start(config: ServerConfig, mapper: Mapper) -> ServerHandle {
    let server =
        Server::bind("127.0.0.1:0", config, MappingService::new(mapper)).expect("bind on port 0");
    server.spawn().expect("spawn server")
}

/// A unique heavy kernel per index: a 2D convolution whose added constant
/// makes every source a cold cache miss.
fn heavy_kernel(index: usize) -> String {
    fpfa_workloads::conv2d_3x3(8, 8)
        .source
        .replace("acc = acc +", &format!("acc = acc + {} +", index + 1))
}

const TRIVIAL: &str = "void main() { int a[2]; int r; r = a[0] + a[1]; }";

#[test]
fn concurrent_clients_agree_with_direct_service_calls() {
    // Direct (in-process) ground truth over the whole registry.
    let direct = MappingService::new(Mapper::new());
    let kernels: Vec<(String, String)> = fpfa_workloads::registry()
        .into_iter()
        .map(|kernel| (kernel.name, kernel.source))
        .collect();
    let expected: Vec<(String, u64, u64)> = kernels
        .iter()
        .map(|(name, source)| {
            let result = direct.map_source(source).expect("registry kernels map");
            (
                name.clone(),
                program_digest(&result),
                result.report.cycles as u64,
            )
        })
        .collect();

    let handle = start(ServerConfig::default(), Mapper::new());
    let addr = handle.addr();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let kernels = &kernels;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for ((name, source), (_, digest, cycles)) in kernels.iter().zip(expected) {
                    let summary = client
                        .map(name, source, MapKnobs::default())
                        .unwrap_or_else(|e| panic!("mapping `{name}` failed: {e}"));
                    assert_eq!(summary.digest, *digest, "digest of `{name}`");
                    assert_eq!(summary.cycles, *cycles, "cycles of `{name}`");
                    assert_eq!(summary.name, *name);
                }
            });
        }
    });

    let stats = Client::connect(addr)
        .expect("connect for stats")
        .stats()
        .expect("stats");
    assert_eq!(stats.served_ok, 4 * kernels.len() as u64);
    assert_eq!(stats.served_err, 0);
    assert_eq!(stats.rejected_overload, 0);
    // 4 passes over the same kernels: at most one miss per kernel, the rest
    // served from the shared cache.
    assert!(
        stats.cache_mapping_hits >= 3 * kernels.len() as u64,
        "expected a warm cache, got {stats:?}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn multi_tile_requests_agree_and_do_not_alias_single_tile() {
    let direct = MappingService::new(Mapper::new().with_tiles(4));
    let source = &fpfa_workloads::fir(64).source;
    let expected = direct.map_source(source).expect("fir64 maps on 4 tiles");

    let handle = start(ServerConfig::default(), Mapper::new());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let four = client
        .map(
            "fir64",
            source,
            MapKnobs {
                tiles: 4,
                ..MapKnobs::default()
            },
        )
        .expect("4-tile mapping");
    assert_eq!(four.tiles, 4);
    assert_eq!(four.digest, program_digest(&expected));
    assert_eq!(four.cycles, expected.report.cycles as u64);
    assert_eq!(
        four.inter_tile_transfers,
        expected.report.inter_tile_transfers as u64
    );

    let one = client
        .map(
            "fir64",
            source,
            MapKnobs {
                tiles: 1,
                ..MapKnobs::default()
            },
        )
        .expect("1-tile mapping");
    assert_eq!(one.tiles, 1);
    assert_ne!(one.digest, four.digest, "tile counts must not alias");
    handle.shutdown();
    handle.join();
}

#[test]
fn zero_knobs_inherit_the_daemon_defaults() {
    // A daemon configured for a 2-tile array: requests with the `0` tile
    // sentinel map on 2 tiles, explicit knobs still override it.
    let handle = start(ServerConfig::default(), Mapper::new().with_tiles(2));
    let mut client = Client::connect(handle.addr()).expect("connect");
    let source = &fpfa_workloads::fir(64).source;
    let inherited = client
        .map("fir64", source, MapKnobs::default())
        .expect("default-knob mapping");
    assert_eq!(inherited.tiles, 2, "tiles=0 inherits the daemon default");
    let expected = MappingService::new(Mapper::new().with_tiles(2))
        .map_source(source)
        .expect("direct 2-tile mapping");
    assert_eq!(inherited.digest, program_digest(&expected));
    let overridden = client
        .map(
            "fir64",
            source,
            MapKnobs {
                tiles: 1,
                ..MapKnobs::default()
            },
        )
        .expect("explicit single-tile mapping");
    assert_eq!(overridden.tiles, 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn simulate_knob_returns_consistent_outcomes() {
    let handle = start(ServerConfig::default(), Mapper::new());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let knobs = MapKnobs {
        simulate: true,
        ..MapKnobs::default()
    };
    let source = &fpfa_workloads::fir(5).source;
    let cold = client
        .map("fir5", source, knobs)
        .expect("simulated mapping");
    let sim = cold.sim.expect("simulate knob produces a sim summary");
    assert_eq!(sim.cycles, cold.cycles, "simulator agrees with allocator");
    // A cache-served repeat simulates the identical program.
    let warm = client.map("fir5", source, knobs).expect("warm repeat");
    assert_eq!(warm.sim, cold.sim);
    handle.shutdown();
    handle.join();
}

#[test]
fn saturated_queue_rejects_with_typed_overloaded() {
    let handle = start(
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            default_deadline: Duration::ZERO,
            ..ServerConfig::default()
        },
        Mapper::new(),
    );
    let addr = handle.addr();

    // Three heavy cold kernels contend for the single worker and the single
    // queue slot, retrying *immediately* when shed — so for as long as at
    // least two heavies remain unserved, the queue slot is (re)taken within
    // microseconds of freeing and quick probes must see `Overloaded`.
    let heavies: Vec<_> = (0..3)
        .map(|index| {
            let source = heavy_kernel(index);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect heavy");
                loop {
                    match client.map(&format!("heavy{index}"), &source, MapKnobs::default()) {
                        Ok(summary) => return summary,
                        Err(ClientError::Server(WireError::Overloaded { .. })) => {}
                        Err(e) => panic!("heavy kernel {index} failed: {e}"),
                    }
                }
            })
        })
        .collect();

    // Each probe is a *distinct* cold kernel, so it cannot be answered from
    // an I/O shard's warm table and must contend for the queue slot.
    let mut probe = Client::connect(addr).expect("connect probe");
    let mut overloaded = 0usize;
    for attempt in 0..2000 {
        let source = format!("void main() {{ int a[2]; int r; r = a[0] + a[1] + {attempt}; }}");
        match probe.call(&Request::Map {
            kernel: KernelSource::new("probe", &source),
            knobs: MapKnobs::default(),
        }) {
            Ok(Response::Error(WireError::Overloaded { queue_depth })) => {
                assert_eq!(queue_depth, 1);
                overloaded += 1;
                if overloaded >= 3 {
                    break;
                }
            }
            Ok(Response::Mapped(_)) => {} // slipped into a free slot
            other => panic!("unexpected probe outcome: {other:?}"),
        }
    }
    assert!(
        overloaded >= 1,
        "saturating a 1-deep queue never produced an Overloaded rejection"
    );

    for heavy in heavies {
        heavy.join().expect("heavy mapping threads");
    }
    // The shedding connection stays healthy: the same probe client now gets
    // served once capacity frees up.
    let served = probe
        .map("probe", TRIVIAL, MapKnobs::default())
        .expect("probe maps after the burst");
    assert!(served.cycles > 0);
    let stats = handle.stats();
    assert!(stats.rejected_overload >= overloaded as u64);
    handle.shutdown();
    handle.join();
}

#[test]
fn lapsed_deadline_budget_is_a_typed_rejection() {
    let handle = start(
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            default_deadline: Duration::ZERO,
            ..ServerConfig::default()
        },
        Mapper::new(),
    );
    let addr = handle.addr();
    // Busy the single worker with a heavy cold kernel...
    let source = heavy_kernel(99);
    let heavy = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect heavy");
        client
            .map("heavy", &source, MapKnobs::default())
            .expect("heavy maps")
    });
    // ... then queue a request whose 1 ms budget lapses while it waits.
    // (Retry in case the heavy kernel had not reached the worker yet; each
    // attempt is a distinct cold kernel so the shard's warm table cannot
    // answer it inline.)
    let mut client = Client::connect(addr).expect("connect");
    let mut saw_deadline = false;
    for attempt in 0..50 {
        let source = format!("void main() {{ int a[2]; int r; r = a[0] + a[1] + {attempt}; }}");
        match client.map(
            "impatient",
            &source,
            MapKnobs {
                deadline_ms: 1,
                ..MapKnobs::default()
            },
        ) {
            Err(ClientError::Server(WireError::DeadlineExceeded { budget_ms })) => {
                assert_eq!(budget_ms, 1);
                saw_deadline = true;
                break;
            }
            Ok(_) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        saw_deadline,
        "a 1 ms budget behind a heavy job never lapsed"
    );
    heavy.join().expect("heavy thread");
    assert!(handle.stats().rejected_deadline >= 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn batch_verb_disambiguates_names_and_reports_failures() {
    let handle = start(ServerConfig::default(), Mapper::new());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let batch = client
        .batch(
            vec![
                KernelSource::new("k", TRIVIAL),
                KernelSource::new("k", TRIVIAL),
                KernelSource::new("bad", "void main() { r = 1; }"),
            ],
            MapKnobs::default(),
        )
        .expect("batch call");
    assert_eq!(batch.entries.len(), 3);
    assert_eq!(batch.entries[0].name, "k");
    assert_eq!(batch.entries[1].name, "k#2");
    assert_eq!(batch.succeeded(), 2);
    assert_eq!(batch.deduped, 1, "identical sources dedup in-batch");
    let error = batch.entries[2].outcome.as_ref().unwrap_err();
    assert!(error.contains("frontend"), "unexpected error: {error}");
    // Structurally invalid batches are typed rejections.
    let empty = client.batch(Vec::new(), MapKnobs::default()).unwrap_err();
    assert!(matches!(empty, ClientError::Server(WireError::Invalid(_))));
    handle.shutdown();
    handle.join();
}

#[test]
fn invalid_knobs_and_payloads_are_typed_not_fatal() {
    let handle = start(ServerConfig::default(), Mapper::new());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let oversized_array = client
        .map(
            "k",
            TRIVIAL,
            MapKnobs {
                tiles: fpfa_server::server::MAX_TILES + 1,
                ..MapKnobs::default()
            },
        )
        .unwrap_err();
    assert!(matches!(
        oversized_array,
        ClientError::Server(WireError::Invalid(_))
    ));
    // A kernel that fails to map is a typed MapFailed naming the kernel.
    let failed = client
        .map("broken", "void main() { x = 1; }", MapKnobs::default())
        .unwrap_err();
    match failed {
        ClientError::Server(WireError::MapFailed { name, .. }) => assert_eq!(name, "broken"),
        other => panic!("expected MapFailed, got {other:?}"),
    }
    // The connection survives both rejections.
    assert!(client.map("k", TRIVIAL, MapKnobs::default()).is_ok());
    handle.shutdown();
    handle.join();
}

#[test]
fn verify_knob_rejects_bad_kernels_with_a_typed_error() {
    // Maps fine (the flow has no bounds model) but carries a deny-level
    // FS006 lint: the constant index 7 is out of bounds for `a[4]`.
    const OOB: &str = "void main() { int a[4]; int x; int y; x = a[7]; y = x; }";

    let handle = start(ServerConfig::default(), Mapper::new());
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Without the knob the kernel is served — and seeds the shard's warm
    // table, so the verified retry below also proves the fast path cannot
    // vouch for a request that asked for verification.
    let unchecked = client
        .map("oob", OOB, MapKnobs::default())
        .expect("maps without verification");
    assert_eq!(unchecked.name, "oob");

    let verify = MapKnobs {
        verify: true,
        ..MapKnobs::default()
    };
    let rejected = client.map("oob", OOB, verify).unwrap_err();
    match rejected {
        ClientError::Server(WireError::VerifyFailed {
            name,
            denies,
            first,
        }) => {
            assert_eq!(name, "oob");
            assert!(denies >= 1);
            assert!(first.contains("FS006"), "unexpected diagnostic: {first}");
        }
        other => panic!("expected VerifyFailed, got {other:?}"),
    }

    // The rejection is typed, not fatal: the same connection keeps serving,
    // and a clean kernel passes verification (cold and cache-served alike).
    let cold = client.map("k", TRIVIAL, verify).expect("clean verifies");
    let warm = client.map("k", TRIVIAL, verify).expect("warm re-verify");
    assert_eq!(warm.digest, cold.digest);

    // Batches verify per entry: the bad kernel is rejected in place while
    // its neighbours are served.
    let batch = client
        .batch(
            vec![
                KernelSource::new("good", TRIVIAL),
                KernelSource::new("oob", OOB),
            ],
            verify,
        )
        .expect("batch call");
    assert!(batch.entries[0].outcome.is_ok());
    let error = batch.entries[1].outcome.as_ref().unwrap_err();
    assert!(error.contains("FS006"), "unexpected batch error: {error}");

    let stats = handle.stats();
    assert!(stats.verify_failures_map >= 1, "map rejections: {stats:?}");
    assert!(
        stats.verify_failures_batch >= 1,
        "batch rejections: {stats:?}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn stats_reset_clears_cache_and_counters() {
    let handle = start(ServerConfig::default(), Mapper::new());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let miss = client.map("k", TRIVIAL, MapKnobs::default()).expect("cold");
    let hit = client.map("k", TRIVIAL, MapKnobs::default()).expect("warm");
    assert_eq!(miss.cache, fpfa_server::CacheFlavor::Miss);
    assert_eq!(hit.cache, fpfa_server::CacheFlavor::MappingHit);

    let health = client.health().expect("health");
    assert!(!health.draining);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.served_ok, 2);
    assert_eq!(stats.cache_mapping_hits, 1);
    assert!(stats.cache_entries >= 1);
    assert!(stats.map_latency.total() >= 2);

    let dropped = client.reset().expect("reset");
    assert!(dropped >= 1, "reset drops the resident entries");
    let stats = client.stats().expect("stats after reset");
    assert_eq!(stats.served_ok, 0);
    assert_eq!(stats.cache_mapping_hits, 0);
    assert_eq!(stats.cache_entries, 0);
    // The next map is a cold miss again.
    let cold = client
        .map("k", TRIVIAL, MapKnobs::default())
        .expect("re-map");
    assert_eq!(cold.cache, fpfa_server::CacheFlavor::Miss);
    handle.shutdown();
    handle.join();
}

#[test]
fn reset_truncates_the_disk_tier_and_the_l0_frames() {
    let dir = std::env::temp_dir().join(format!("fpfa-e2e-reset-tier-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = MappingService::with_cache_dir(Mapper::new(), 64, &dir).expect("open disk tier");
    let server = Server::bind("127.0.0.1:0", ServerConfig::default(), service).expect("bind");
    let handle = server.spawn().expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let cold = client.map("k", TRIVIAL, MapKnobs::default()).expect("cold");
    assert_eq!(cold.cache, fpfa_server::CacheFlavor::Miss);
    let warm = client.map("k", TRIVIAL, MapKnobs::default()).expect("warm");
    assert_eq!(warm.cache, fpfa_server::CacheFlavor::MappingHit);
    assert_eq!(warm.digest, cold.digest);
    let repeat = client
        .map("k", TRIVIAL, MapKnobs::default())
        .expect("repeat");
    assert_eq!(repeat.digest, cold.digest);

    let stats = client.stats().expect("stats");
    assert!(
        stats.persist_stores >= 1,
        "cold mappings are written through to the disk tier"
    );
    assert!(
        stats.l0_hits >= 1,
        "the identical repeat was answered from the pre-encoded L0 tier"
    );

    // `reset` (the `--cold-storm` primitive) must invalidate every tier:
    // the shards' L0 frames, the in-memory cache AND the on-disk segments.
    // A subsequent map must be a genuine cold miss — if the disk tier
    // survived the reset it would come back as a warm mapping hit.
    let dropped = client.reset().expect("reset");
    assert!(dropped >= 1);
    let cold_again = client
        .map("k", TRIVIAL, MapKnobs::default())
        .expect("re-map");
    assert_eq!(cold_again.cache, fpfa_server::CacheFlavor::Miss);
    assert_eq!(
        cold_again.digest, cold.digest,
        "a cold re-map reproduces the program"
    );

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_clients_are_rejected_with_a_typed_unsupported_version() {
    let handle = start(ServerConfig::default(), Mapper::new());

    // A bare v1 request (no hello) is answered with a typed
    // `UnsupportedVersion`, then the connection is closed — not hung.
    let mut v1 = TcpStream::connect(handle.addr()).expect("connect raw");
    write_frame(&mut v1, &Request::Stats.encode()).expect("write v1 frame");
    v1.flush().expect("flush");
    let payload = read_frame(&mut v1)
        .expect("read rejection")
        .expect("a reply, not a hang");
    match Response::decode(&payload).expect("typed rejection decodes") {
        Response::Error(WireError::UnsupportedVersion {
            requested,
            supported,
        }) => {
            assert_eq!(requested, 1);
            assert_eq!(supported, PROTOCOL_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    assert!(
        read_frame(&mut v1).expect("clean close").is_none(),
        "the connection closes after the rejection"
    );

    // A future version in the hello is rejected the same way.
    let mut future = TcpStream::connect(handle.addr()).expect("connect raw");
    write_frame(&mut future, &Hello { version: 99 }.encode()).expect("write hello");
    future.flush().expect("flush");
    let payload = read_frame(&mut future)
        .expect("read rejection")
        .expect("a reply");
    match Response::decode(&payload).expect("decodes") {
        Response::Error(WireError::UnsupportedVersion { requested, .. }) => {
            assert_eq!(requested, 99);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    assert!(handle.stats().rejected_version >= 2);
    handle.shutdown();
    handle.join();
}

#[test]
fn pipelined_requests_complete_out_of_order_by_request_id() {
    let handle = start(ServerConfig::default(), Mapper::new());

    // Handshake + warm the kernel through the plain client first.
    let mut warmup = Client::connect(handle.addr()).expect("connect warmup");
    let expected = warmup
        .map("k", TRIVIAL, MapKnobs::default())
        .expect("warmup map");

    // Raw v2 connection: hello, then two back-to-back requests — a
    // `simulate` map (always the worker path) followed by a plain map (the
    // shard's warm table answers it inline).  The second response must
    // overtake the first on the wire.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect raw");
    write_frame(&mut raw, &Hello::current().encode()).expect("hello");
    raw.flush().expect("flush hello");
    let ack = read_frame(&mut raw).expect("ack").expect("ack frame");
    assert!(matches!(
        Response::decode(&ack).expect("ack decodes"),
        Response::Hello(_)
    ));

    let slow = Request::Map {
        kernel: KernelSource::new("k", TRIVIAL),
        knobs: MapKnobs {
            simulate: true,
            ..MapKnobs::default()
        },
    };
    let fast = Request::Map {
        kernel: KernelSource::new("k", TRIVIAL),
        knobs: MapKnobs::default(),
    };
    write_frame(&mut raw, &encode_request_frame(7, &slow)).expect("write slow");
    write_frame(&mut raw, &encode_request_frame(8, &fast)).expect("write fast");
    raw.flush().expect("flush both");

    let first = read_frame(&mut raw).expect("first").expect("first frame");
    let (first_id, first_response) = decode_response_frame(&first).expect("first decodes");
    let second = read_frame(&mut raw).expect("second").expect("second frame");
    let (second_id, second_response) = decode_response_frame(&second).expect("second decodes");
    assert_eq!(
        (first_id, second_id),
        (8, 7),
        "the inline warm answer must overtake the queued simulate job"
    );
    match (&first_response, &second_response) {
        (Response::Mapped(fast_summary), Response::Mapped(slow_summary)) => {
            assert_eq!(fast_summary.digest, expected.digest);
            assert_eq!(slow_summary.digest, expected.digest);
            assert!(slow_summary.sim.is_some());
        }
        other => panic!("expected two mappings, got {other:?}"),
    }

    // The pipelined client API reassembles the same interleaving by ticket.
    let mut client = Client::connect(handle.addr()).expect("connect pipelined");
    let slow_ticket = client.submit(&slow).expect("submit slow");
    let fast_ticket = client.submit(&fast).expect("submit fast");
    let slow_response = client.wait(slow_ticket).expect("wait slow");
    let fast_response = client.wait(fast_ticket).expect("wait fast");
    assert!(matches!(slow_response, Response::Mapped(s) if s.sim.is_some()));
    assert!(matches!(fast_response, Response::Mapped(s) if s.sim.is_none()));

    handle.shutdown();
    handle.join();
}

#[test]
fn per_shard_counters_are_reported() {
    let handle = start(
        ServerConfig {
            shards: 2,
            ..ServerConfig::default()
        },
        Mapper::new(),
    );
    let mut a = Client::connect(handle.addr()).expect("connect a");
    let mut b = Client::connect(handle.addr()).expect("connect b");
    a.map("k", TRIVIAL, MapKnobs::default()).expect("map a");
    b.map("k", TRIVIAL, MapKnobs::default()).expect("map b");
    let stats = a.stats().expect("stats");
    assert_eq!(stats.shards.len(), 2, "one summary per shard");
    let accepted: u64 = stats.shards.iter().map(|s| s.accepted).sum();
    let served: u64 = stats.shards.iter().map(|s| s.served).sum();
    let bytes_in: u64 = stats.shards.iter().map(|s| s.bytes_in).sum();
    let bytes_out: u64 = stats.shards.iter().map(|s| s.bytes_out).sum();
    assert!(accepted >= 2, "both connections adopted: {stats:?}");
    assert!(served >= 3, "two maps + handshakes served: {stats:?}");
    assert!(bytes_in > 0 && bytes_out > 0);
    handle.shutdown();
    handle.join();
}

#[test]
fn graceful_shutdown_drains_and_rejects_new_work() {
    let handle = start(ServerConfig::default(), Mapper::new());
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.map("k", TRIVIAL, MapKnobs::default()).expect("map");

    let mut controller = Client::connect(handle.addr()).expect("connect controller");
    controller.shutdown().expect("shutdown ack");

    // The existing connection is answered with a typed ShuttingDown for new
    // mapping work (not a dropped socket).
    let refused = client.map("k", TRIVIAL, MapKnobs::default()).unwrap_err();
    assert!(matches!(
        refused,
        ClientError::Server(WireError::ShuttingDown)
            | ClientError::Io(_)
            | ClientError::Disconnected
    ));

    // join() returns only after the drain: workers exited, every
    // connection thread joined, the listener dropped.
    let stats = handle.join();
    assert!(stats.served_ok >= 1);
    assert!(
        stats.rejected_shutdown >= 1,
        "the refused request is accounted: {stats:?}"
    );
}

#[test]
fn metrics_verb_renders_prometheus_and_json_over_the_registry() {
    let handle = start(ServerConfig::default(), Mapper::new());
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.map("k", TRIVIAL, MapKnobs::default()).expect("cold");
    client.map("k", TRIVIAL, MapKnobs::default()).expect("warm");

    let text = client
        .metrics(MetricsFormat::Prometheus)
        .expect("prometheus scrape");
    assert!(
        text.contains("# TYPE serve_served counter"),
        "served family missing:\n{text}"
    );
    assert!(
        text.contains("serve_served{outcome=\"ok\"} 2"),
        "served{{ok}} sample missing:\n{text}"
    );
    assert!(
        text.contains("# TYPE serve_map_latency histogram")
            && text.contains("serve_map_latency_p99"),
        "map-latency histogram missing:\n{text}"
    );
    // The cold map went through the queue, so the queue-wait histogram has
    // at least one observation and renders its quantile lines.
    assert!(
        text.contains("serve_queue_wait_p99"),
        "queue-wait p99 missing:\n{text}"
    );
    assert!(
        text.contains("cache_mapping_hits 1"),
        "cache gauges missing:\n{text}"
    );
    assert!(
        text.contains("shard_served{shard=\"0\"}"),
        "per-shard counters missing:\n{text}"
    );

    // The JSON exposition round-trips through the obs parser and agrees
    // with the stats verb (the wire stats are a view over the registry).
    let json = client.metrics(MetricsFormat::Json).expect("json scrape");
    let snapshot = fpfa_obs::Snapshot::from_json(&json).expect("scrape parses");
    let served_ok = snapshot
        .metrics
        .iter()
        .find(|m| m.key.name == "serve.served" && m.key.labels == [("outcome".into(), "ok".into())])
        .expect("serve.served{outcome=ok} present");
    let stats = client.stats().expect("stats");
    match served_ok.value {
        fpfa_obs::MetricValue::Counter(v) => assert_eq!(v, stats.served_ok),
        ref other => panic!("serve.served is not a counter: {other:?}"),
    }

    // `reset` zeroes the registry's counters along with the legacy stats.
    client.reset().expect("reset");
    let text = client
        .metrics(MetricsFormat::Prometheus)
        .expect("post-reset scrape");
    assert!(
        text.contains("serve_served{outcome=\"ok\"} 0"),
        "reset must zero the registry:\n{text}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn dump_verb_reports_flight_entries_and_sampled_spans_decompose() {
    let handle = start(
        ServerConfig {
            trace_sample: 1,
            ..ServerConfig::default()
        },
        Mapper::new(),
    );
    let mut client = Client::connect(handle.addr()).expect("connect");
    // A cold map takes the worker path, so its flight entry carries a queue
    // wait and its sampled trace carries the full span decomposition.
    client.map("k", TRIVIAL, MapKnobs::default()).expect("cold");
    // A warm repeat is answered from the L0 tier and still flight-recorded.
    client.map("k", TRIVIAL, MapKnobs::default()).expect("warm");

    let dump = client.dump().expect("dump");
    let parsed = fpfa_obs::json::parse(&dump).expect("dump is valid JSON");
    let top = parsed.as_object().expect("dump is an object");
    let shards = top
        .get("shards")
        .and_then(|v| v.as_array())
        .expect("shards array");
    let entries: Vec<_> = shards
        .iter()
        .flat_map(|shard| {
            shard
                .as_object()
                .and_then(|o| o.get("recent"))
                .and_then(|v| v.as_array())
                .map(<[fpfa_obs::json::JsonValue]>::to_vec)
                .unwrap_or_default()
        })
        .collect();
    let outcome_of = |entry: &fpfa_obs::json::JsonValue, want: &str| {
        entry
            .as_object()
            .and_then(|o| o.get("outcome"))
            .and_then(|v| v.as_str().map(|s| s == want))
            .unwrap_or(false)
    };
    assert!(
        entries.iter().any(|e| outcome_of(e, "ok")),
        "no worker-path flight entry in: {dump}"
    );
    assert!(
        entries.iter().any(|e| outcome_of(e, "l0")),
        "no L0 flight entry in: {dump}"
    );

    // The sampled trace decomposes the worker-path request: queue wait,
    // worker service and write-back transit must sum to the request span's
    // end-to-end duration within 10%.
    let traces = top
        .get("traces")
        .and_then(|v| v.as_array())
        .expect("traces array");
    let span = |trace_id: u64, name: &str| -> Option<u64> {
        traces.iter().find_map(|span| {
            let span = span.as_object()?;
            (span.get("trace_id")?.as_u64()? == trace_id && span.get("name")?.as_str()? == name)
                .then(|| span.get("dur_us").and_then(|v| v.as_u64()))?
        })
    };
    let request_id = traces
        .iter()
        .find_map(|span| {
            let span = span.as_object()?;
            (span.get("name")?.as_str()? == "request").then(|| span.get("trace_id")?.as_u64())?
        })
        .expect("a sampled request span");
    let e2e = span(request_id, "request").expect("request span");
    let queue = span(request_id, "queue.wait").expect("queue.wait child");
    let service = span(request_id, "map.service").expect("map.service child");
    let respond = span(request_id, "respond").expect("respond child");
    let sum = queue + service + respond;
    let gap = e2e.abs_diff(sum);
    assert!(
        gap * 10 <= e2e,
        "span decomposition ({queue} + {service} + {respond} = {sum} us) strays more \
         than 10% from the request span ({e2e} us)"
    );
    // The flow's own stage spans ride along under the same trace id.
    assert!(
        span(request_id, "frontend").is_some() && span(request_id, "schedule").is_some(),
        "flow stage spans missing from: {dump}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn untraced_servers_record_flight_entries_but_no_spans() {
    let handle = start(ServerConfig::default(), Mapper::new());
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.map("k", TRIVIAL, MapKnobs::default()).expect("map");
    let dump = client.dump().expect("dump");
    let parsed = fpfa_obs::json::parse(&dump).expect("valid JSON");
    let top = parsed.as_object().expect("object");
    assert!(
        top.get("traces")
            .and_then(|v| v.as_array())
            .is_some_and(<[fpfa_obs::json::JsonValue]>::is_empty),
        "trace_sample=0 must not record spans: {dump}"
    );
    handle.shutdown();
    handle.join();
}
