//! Property tests for the wire protocol: arbitrary requests and responses
//! roundtrip byte-exactly, and no mangled payload (truncated, bit-flipped,
//! or random bytes) can make the decoder panic — corruption always surfaces
//! as a typed [`ProtocolError`] or decodes as a well-formed message.

use fpfa_server::protocol::{
    decode_request_frame, decode_response_frame, encode_request_frame, encode_response_frame,
    BatchEntrySummary, BatchSummary, CacheFlavor, FrameBuffer, HelloAck, Histogram, KernelSource,
    MapKnobs, MapSummary, ProtocolError, Request, Response, ShardStatsSummary, SimSummary,
    StatsSummary, WireError, HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;

/// Strings over a small alphabet plus some multi-byte UTF-8, so length
/// prefixes and byte counts disagree with char counts now and then.
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
        bytes
            .iter()
            .map(|&byte| match byte % 7 {
                0 => 'µ',
                1 => '→',
                _ => (b'a' + byte % 26) as char,
            })
            .collect()
    })
}

fn arb_knobs() -> impl Strategy<Value = MapKnobs> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<u32>(),
    )
        .prop_map(
            |(tiles, pps, clustering, locality, simulate, verify, deadline_ms)| MapKnobs {
                tiles,
                pps,
                clustering,
                locality,
                simulate,
                verify,
                deadline_ms,
            },
        )
}

fn arb_kernel() -> impl Strategy<Value = KernelSource> {
    (arb_string(), arb_string()).prop_map(|(name, source)| KernelSource { name, source })
}

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        (arb_kernel(), arb_knobs()).prop_map(|(kernel, knobs)| Request::Map { kernel, knobs }),
        (prop::collection::vec(arb_kernel(), 0..5), arb_knobs())
            .prop_map(|(kernels, knobs)| Request::Batch { kernels, knobs }),
        Just(Request::Stats),
        Just(Request::Reset),
        Just(Request::Health),
        Just(Request::Shutdown),
    ]
    .boxed()
}

fn arb_cache_flavor() -> impl Strategy<Value = CacheFlavor> {
    prop_oneof![
        Just(CacheFlavor::Uncached),
        Just(CacheFlavor::Miss),
        Just(CacheFlavor::MappingHit),
        Just(CacheFlavor::PostTransformHit),
    ]
}

fn arb_summary() -> impl Strategy<Value = MapSummary> {
    (
        arb_string(),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>()),
        arb_cache_flavor(),
        (any::<bool>(), any::<u64>(), any::<i64>(), any::<u64>()),
    )
        .prop_map(
            |(
                name,
                (digest, operations, clusters, levels, cycles),
                (tiles, inter_tile_transfers),
                cache,
                (has_sim, sim_cycles, checksum, server_micros),
            )| MapSummary {
                name,
                digest,
                operations,
                clusters,
                levels,
                cycles,
                tiles,
                inter_tile_transfers,
                cache,
                sim: has_sim.then_some(SimSummary {
                    cycles: sim_cycles,
                    checksum,
                }),
                server_micros,
            },
        )
}

fn arb_histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(any::<u64>(), HISTOGRAM_BUCKETS..=HISTOGRAM_BUCKETS)
        .prop_map(|buckets| Histogram { buckets })
}

fn arb_wire_error() -> BoxedStrategy<WireError> {
    prop_oneof![
        any::<u64>().prop_map(|queue_depth| WireError::Overloaded { queue_depth }),
        any::<u64>().prop_map(|budget_ms| WireError::DeadlineExceeded { budget_ms }),
        Just(WireError::ShuttingDown),
        arb_string().prop_map(WireError::Invalid),
        (arb_string(), arb_string()).prop_map(|(name, error)| WireError::MapFailed { name, error }),
        (arb_string(), any::<u64>(), arb_string()).prop_map(|(name, denies, first)| {
            WireError::VerifyFailed {
                name,
                denies,
                first,
            }
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(requested, supported)| {
            WireError::UnsupportedVersion {
                requested,
                supported,
            }
        }),
    ]
    .boxed()
}

fn arb_shard_stats() -> impl Strategy<Value = ShardStatsSummary> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(connections, accepted, served, bytes_in, bytes_out)| ShardStatsSummary {
                connections,
                accepted,
                served,
                bytes_in,
                bytes_out,
            },
        )
}

fn arb_response() -> BoxedStrategy<Response> {
    let entry = (arb_string(), any::<bool>(), arb_summary(), arb_string()).prop_map(
        |(name, ok, summary, error)| BatchEntrySummary {
            name,
            outcome: if ok { Ok(summary) } else { Err(error) },
        },
    );
    prop_oneof![
        arb_summary().prop_map(Response::Mapped),
        (
            prop::collection::vec(entry, 0..4),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(
                |(entries, wall_micros, deduped)| Response::Batch(BatchSummary {
                    entries,
                    wall_micros,
                    deduped,
                })
            ),
        (
            prop::collection::vec(any::<u64>(), 26..=26),
            arb_histogram(),
            arb_histogram(),
            prop::collection::vec(arb_shard_stats(), 0..4)
        )
            .prop_map(|(counters, map_latency, batch_latency, shards)| {
                Response::Stats(StatsSummary {
                    connections: counters[0],
                    accepted: counters[1],
                    served_ok: counters[2],
                    served_err: counters[3],
                    verify_failures_map: counters[4],
                    verify_failures_batch: counters[5],
                    rejected_overload: counters[6],
                    rejected_deadline: counters[7],
                    rejected_shutdown: counters[8],
                    rejected_version: counters[9],
                    protocol_errors: counters[10],
                    fast_hits: counters[11],
                    l0_hits: counters[12],
                    persist_loads: counters[13],
                    persist_stores: counters[14],
                    persist_corrupt_skipped: counters[15],
                    persist_warm_start_entries: counters[16],
                    persist_compactions: counters[17],
                    workers: counters[18],
                    queue_depth: counters[19],
                    cache_mapping_hits: counters[20],
                    cache_mapping_misses: counters[21],
                    cache_post_hits: counters[22],
                    cache_post_misses: counters[23],
                    cache_entries: counters[24],
                    cache_capacity: counters[25],
                    map_latency,
                    batch_latency,
                    shards,
                })
            }),
        any::<u64>().prop_map(|dropped_entries| Response::ResetDone { dropped_entries }),
        Just(Response::ShutdownStarted),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(version, shards, max_in_flight)| {
            Response::Hello(HelloAck {
                version,
                shards,
                max_in_flight,
            })
        }),
        arb_wire_error().prop_map(Response::Error),
    ]
    .boxed()
}

/// Length-prefixes one frame payload the way `write_frame` does.
fn framed(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits `bytes` into chunks of at most `chunk` bytes and feeds them to a
/// [`FrameBuffer`], collecting every complete frame payload.
fn feed_in_chunks(bytes: &[u8], chunk: usize) -> Result<Vec<Vec<u8>>, String> {
    let mut buffer = FrameBuffer::new();
    let mut frames = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        buffer.extend(piece);
        loop {
            match buffer.next_frame() {
                Ok(Some(frame)) => frames.push(frame.to_vec()),
                Ok(None) => break,
                Err(e) => return Err(e.to_string()),
            }
        }
    }
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_roundtrip(request in arb_request()) {
        let encoded = request.encode();
        prop_assert_eq!(Request::decode(&encoded), Ok(request));
    }

    #[test]
    fn responses_roundtrip(response in arb_response()) {
        let encoded = response.encode();
        prop_assert_eq!(Response::decode(&encoded), Ok(response));
    }

    #[test]
    fn truncated_requests_yield_typed_errors(request in arb_request(), cut in any::<usize>()) {
        let encoded = request.encode();
        let cut = cut % encoded.len().max(1);
        // A strict prefix can never decode to a complete message: every
        // trailing field is mandatory, so truncation must error (and, above
        // all, must not panic).
        let decoded = Request::decode(&encoded[..cut]);
        prop_assert!(decoded.is_err(), "cut at {} decoded: {:?}", cut, decoded);
    }

    #[test]
    fn bit_flips_never_panic(
        request in arb_request(),
        position in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut encoded = request.encode();
        let position = position % encoded.len().max(1);
        if !encoded.is_empty() {
            encoded[position] ^= 1 << bit;
        }
        // A flipped byte may still decode (e.g. a changed numeric knob) but
        // must never panic and never produce garbage lengths.
        let _ = Request::decode(&encoded);
        let _ = Response::decode(&encoded);
    }

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn pipelined_request_streams_parse_in_submission_order(
        requests in prop::collection::vec(arb_request(), 1..6),
        chunk in 1usize..64,
    ) {
        // Many v2 request frames written back-to-back, arriving in arbitrary
        // read() chunk sizes, parse back to the same ids and bodies.
        let mut stream = Vec::new();
        for (id, request) in requests.iter().enumerate() {
            stream.extend_from_slice(&framed(&encode_request_frame(id as u64, request)));
        }
        let frames = feed_in_chunks(&stream, chunk).map_err(TestCaseError::fail)?;
        prop_assert_eq!(frames.len(), requests.len());
        for (expected_id, (frame, expected)) in frames.iter().zip(&requests).enumerate() {
            let (id, request) = decode_request_frame(frame).map_err(|e| {
                TestCaseError::fail(e.to_string())
            })?;
            prop_assert_eq!(id, expected_id as u64);
            prop_assert_eq!(&request, expected);
        }
    }

    #[test]
    fn shuffled_response_streams_reassemble_by_request_id(
        responses in prop::collection::vec(arb_response(), 1..6),
        seed in any::<u64>(),
        chunk in 1usize..64,
    ) {
        // Responses completing in *any* order still pair with their
        // requests: the echoed id, not wire position, is the join key.
        let mut tagged: Vec<(u64, Response)> = responses
            .into_iter()
            .enumerate()
            .map(|(id, response)| (id as u64, response))
            .collect();
        // Seed-driven Fisher–Yates (xorshift), so every permutation of the
        // completion order gets exercised across cases.
        let mut state = seed | 1;
        for i in (1..tagged.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            tagged.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut stream = Vec::new();
        for (id, response) in &tagged {
            stream.extend_from_slice(&framed(&encode_response_frame(*id, response)));
        }
        let frames = feed_in_chunks(&stream, chunk).map_err(TestCaseError::fail)?;
        prop_assert_eq!(frames.len(), tagged.len());
        let mut reassembled = std::collections::HashMap::new();
        for frame in &frames {
            let (id, response) = decode_response_frame(frame).map_err(|e| {
                TestCaseError::fail(e.to_string())
            })?;
            prop_assert!(reassembled.insert(id, response).is_none(), "duplicate id {}", id);
        }
        for (id, expected) in &tagged {
            prop_assert_eq!(reassembled.get(id), Some(expected));
        }
    }

    #[test]
    fn corrupted_pipelined_streams_never_panic(
        tagged in prop::collection::vec(arb_response(), 1..5),
        cut in any::<usize>(),
        position in any::<usize>(),
        bit in 0u8..8,
    ) {
        // Truncation and bit flips anywhere in a pipelined stream surface as
        // typed frame/protocol errors or as fewer complete frames — never as
        // a panic.  (A flipped id byte may still decode; that is the
        // application's `UnknownRequestId` problem, not the parser's.)
        let mut stream = Vec::new();
        for (id, response) in tagged.iter().enumerate() {
            stream.extend_from_slice(&framed(&encode_response_frame(id as u64, response)));
        }
        let cut = cut % (stream.len() + 1);
        let mut mangled = stream[..cut].to_vec();
        if !mangled.is_empty() {
            let position = position % mangled.len();
            mangled[position] ^= 1 << bit;
        }
        // A shrunk length prefix can split one frame into several, so no
        // frame-count bound holds; the guarantees are typed errors and no
        // panics.
        if let Ok(frames) = feed_in_chunks(&mangled, 7) {
            for frame in &frames {
                let _ = decode_response_frame(frame);
            }
        }
    }

    #[test]
    fn corrupt_length_prefixes_are_rejected(request in arb_request(), lie in any::<u32>()) {
        // Overwrite the first length field after the tag (if any) with a
        // lie; decoding must fail with a typed error, not allocate wildly.
        let mut encoded = request.encode();
        if encoded.len() >= 5 {
            encoded[1..5].copy_from_slice(&lie.to_le_bytes());
            match Request::decode(&encoded) {
                Ok(_) => {} // a small lie can still parse coherently
                Err(
                    ProtocolError::Truncated { .. }
                    | ProtocolError::BadLength { .. }
                    | ProtocolError::BadTag { .. }
                    | ProtocolError::BadUtf8 { .. }
                    | ProtocolError::TrailingBytes { .. },
                ) => {}
            }
        }
    }
}
