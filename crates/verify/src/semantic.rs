//! Frontend semantic analysis: span-carrying lint diagnostics over the AST.
//!
//! [`analyze`] runs *before* lowering and reports the `FS0xx` rules of
//! [`crate::diag::RULES`]:
//!
//! * **FS003** (deny) mirrors the lowering's use-before-assignment rule: a
//!   scalar declared inside a loop construct and read before it was assigned
//!   fails to lower, and this pass points at the exact source position. At
//!   the top level an unassigned read legally becomes an implicit kernel
//!   parameter, so no diagnostic fires there.
//! * **FS006** (deny) flags constant array indices outside the declared
//!   bounds — the lowering happily emits the out-of-bounds statespace access,
//!   so this is the only line of defence before a silently corrupted
//!   mapping.
//! * **FS001/FS002/FS004/FS005** (warn) are lints: unused scalars and
//!   arrays, loop bounds that are not compile-time constants (the flow can
//!   only unroll constant-trip-count loops) and constant arithmetic that
//!   wraps the 64-bit machine word.

use crate::diag::{Diagnostic, VerifyReport};
use fpfa_cdfg::BinOp;
use fpfa_frontend::ast::{AstBinOp, Expr, LValue, Stmt, TranslationUnit};
use fpfa_frontend::token::Span;
use fpfa_frontend::{lexer, parser, FrontendError};
use std::collections::{BTreeSet, HashMap};

/// Lints a C-subset source string.
///
/// # Errors
/// Returns the lexer's or parser's [`FrontendError`] when the source does not
/// parse — semantic analysis needs an AST. Lowering errors do *not* surface
/// here; the overlap (use-before-assignment) is reported as FS003.
pub fn analyze(source: &str) -> Result<VerifyReport, FrontendError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens)?;
    Ok(analyze_unit(&unit))
}

/// Lints an already-parsed translation unit.
pub fn analyze_unit(unit: &TranslationUnit) -> VerifyReport {
    let mut report = VerifyReport::new();
    for function in &unit.functions {
        let mut env = Env::default();
        analyze_stmts(&function.body, &mut env, false, &mut report);
        env.finish(&mut report);
    }
    report
}

/// What the analyzer knows about one declared name.
#[derive(Clone, Debug)]
enum Var {
    Scalar {
        span: Span,
        assigned: bool,
        read: bool,
    },
    Array {
        span: Span,
        len: i64,
        accessed: bool,
    },
}

/// The per-scope environment: declaration state of every visible name.
#[derive(Clone, Default, Debug)]
struct Env {
    vars: HashMap<String, Var>,
    /// Declaration order, so unused-variable lints come out deterministic.
    order: Vec<String>,
}

impl Env {
    fn declare(&mut self, name: &str, var: Var) {
        if self.vars.insert(name.to_string(), var).is_none() {
            self.order.push(name.to_string());
        }
    }

    /// Emits the unused-name lints for everything declared in this scope.
    fn finish(&self, report: &mut VerifyReport) {
        for name in &self.order {
            match &self.vars[name] {
                Var::Scalar {
                    span, read: false, ..
                } => report.push(
                    Diagnostic::warn("FS001", format!("scalar '{name}' is never read"))
                        .with_span(*span),
                ),
                Var::Array {
                    span,
                    accessed: false,
                    ..
                } => report.push(
                    Diagnostic::warn("FS002", format!("array '{name}' is never accessed"))
                        .with_span(*span),
                ),
                _ => {}
            }
        }
    }

    /// Emits the unused lints for names declared here but not in `outer`
    /// (scope-local declarations about to go out of scope), then merges the
    /// read/assigned/accessed flags of the shared names back into `outer`.
    fn merge_into(self, outer: &mut Env, report: &mut VerifyReport) {
        for name in &self.order {
            if outer.vars.contains_key(name) {
                continue;
            }
            match &self.vars[name] {
                Var::Scalar {
                    span, read: false, ..
                } => report.push(
                    Diagnostic::warn("FS001", format!("scalar '{name}' is never read"))
                        .with_span(*span),
                ),
                Var::Array {
                    span,
                    accessed: false,
                    ..
                } => report.push(
                    Diagnostic::warn("FS002", format!("array '{name}' is never accessed"))
                        .with_span(*span),
                ),
                _ => {}
            }
        }
        for (name, var) in self.vars {
            if let Some(outer_var) = outer.vars.get_mut(&name) {
                match (outer_var, var) {
                    (
                        Var::Scalar { assigned, read, .. },
                        Var::Scalar {
                            assigned: inner_assigned,
                            read: inner_read,
                            ..
                        },
                    ) => {
                        *assigned |= inner_assigned;
                        *read |= inner_read;
                    }
                    (
                        Var::Array { accessed, .. },
                        Var::Array {
                            accessed: inner_accessed,
                            ..
                        },
                    ) => *accessed |= inner_accessed,
                    _ => {}
                }
            }
        }
    }
}

/// Scalar reads and writes of a statement list, mirroring the lowering's
/// `Usage` collection for loop-carried variable discovery.
#[derive(Default, Debug)]
struct Usage {
    reads: BTreeSet<String>,
    writes: BTreeSet<String>,
    locals: BTreeSet<String>,
}

fn collect_expr(expr: &Expr, usage: &mut Usage) {
    match expr {
        Expr::Literal { .. } => {}
        Expr::Var { name, .. } => {
            usage.reads.insert(name.clone());
        }
        Expr::Index { index, .. } => collect_expr(index, usage),
        Expr::Unary { operand, .. } => collect_expr(operand, usage),
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, usage);
            collect_expr(rhs, usage);
        }
    }
}

fn collect_stmts(stmts: &[Stmt], usage: &mut Usage) {
    for stmt in stmts {
        match stmt {
            Stmt::DeclScalar { name, init, .. } => {
                if let Some(init) = init {
                    collect_expr(init, usage);
                }
                usage.locals.insert(name.clone());
            }
            Stmt::DeclArray { name, .. } => {
                usage.locals.insert(name.clone());
            }
            Stmt::Assign { target, value, .. } => {
                collect_expr(value, usage);
                match target {
                    LValue::Var { name, .. } => {
                        usage.writes.insert(name.clone());
                    }
                    LValue::Index { index, .. } => collect_expr(index, usage),
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                collect_expr(cond, usage);
                collect_stmts(then_branch, usage);
                collect_stmts(else_branch, usage);
            }
            Stmt::While { cond, body, .. } => {
                collect_expr(cond, usage);
                collect_stmts(body, usage);
            }
            Stmt::Block { body, .. } => collect_stmts(body, usage),
            Stmt::Empty { .. } => {}
        }
    }
}

/// Constant-folds an expression without looking at variables, reporting
/// FS005 when a fold wraps the 64-bit machine word. Mirrors the wrapping
/// semantics of [`BinOp::eval`].
fn const_fold(expr: &Expr, report: &mut VerifyReport) -> Option<i64> {
    match expr {
        Expr::Literal { value, .. } => Some(*value),
        Expr::Var { .. } | Expr::Index { .. } => None,
        Expr::Unary { op, operand, span } => {
            let value = const_fold(operand, report)?;
            if matches!(op, fpfa_cdfg::UnOp::Neg) && value.checked_neg().is_none() {
                report.push(
                    Diagnostic::warn(
                        "FS005",
                        format!("negating {value} wraps the 64-bit machine word"),
                    )
                    .with_span(*span),
                );
            }
            Some(op.eval(value))
        }
        Expr::Binary { op, lhs, rhs, span } => {
            let lhs = const_fold(lhs, report)?;
            let rhs = const_fold(rhs, report)?;
            match op {
                AstBinOp::Word(word) => {
                    let wrapped = match word {
                        BinOp::Add => lhs.checked_add(rhs).is_none(),
                        BinOp::Sub => lhs.checked_sub(rhs).is_none(),
                        BinOp::Mul => lhs.checked_mul(rhs).is_none(),
                        _ => false,
                    };
                    if wrapped {
                        report.push(
                            Diagnostic::warn(
                                "FS005",
                                format!(
                                    "constant expression {lhs} {} {rhs} wraps the 64-bit \
                                     machine word",
                                    word.mnemonic()
                                ),
                            )
                            .with_span(*span),
                        );
                    }
                    word.eval(lhs, rhs)
                }
                AstBinOp::LogicalAnd => Some(i64::from(lhs != 0 && rhs != 0)),
                AstBinOp::LogicalOr => Some(i64::from(lhs != 0 || rhs != 0)),
            }
        }
    }
}

fn analyze_expr(expr: &Expr, env: &mut Env, nested: bool, report: &mut VerifyReport) {
    match expr {
        Expr::Literal { .. } => {}
        Expr::Var { name, span } => {
            // Undeclared names and arrays-as-scalars are hard frontend
            // errors with their own rendering; no lint for those here.
            if let Some(Var::Scalar { assigned, read, .. }) = env.vars.get_mut(name) {
                *read = true;
                if !*assigned {
                    if nested {
                        // Mirrors `FrontendError::UseBeforeAssignment`: a
                        // scalar declared inside the loop construct has no
                        // loop-carried initial value to fall back on.
                        report.push(
                            Diagnostic::deny("FS003", format!("'{name}' read before assignment"))
                                .with_span(*span),
                        );
                    } else {
                        // Top level: the read turns the scalar into an
                        // implicit kernel parameter.
                        *assigned = true;
                    }
                }
            }
        }
        Expr::Index { name, index, span } => {
            analyze_expr(index, env, nested, report);
            let folded = const_fold(index, &mut VerifyReport::new());
            if let Some(Var::Array { len, accessed, .. }) = env.vars.get_mut(name) {
                let len = *len;
                *accessed = true;
                if let Some(at) = folded {
                    if at < 0 || at >= len {
                        report.push(
                            Diagnostic::deny(
                                "FS006",
                                format!("constant index {at} is out of bounds for '{name}[{len}]'"),
                            )
                            .with_span(*span),
                        );
                    }
                }
            }
        }
        Expr::Unary { operand, .. } => {
            analyze_expr(operand, env, nested, report);
            const_fold(expr, report);
        }
        Expr::Binary { lhs, rhs, .. } => {
            analyze_expr(lhs, env, nested, report);
            analyze_expr(rhs, env, nested, report);
            const_fold(expr, report);
        }
    }
}

fn analyze_stmts(stmts: &[Stmt], env: &mut Env, nested: bool, report: &mut VerifyReport) {
    for stmt in stmts {
        match stmt {
            Stmt::DeclScalar { name, init, span } => {
                if let Some(init) = init {
                    analyze_expr(init, env, nested, report);
                }
                env.declare(
                    name,
                    Var::Scalar {
                        span: *span,
                        assigned: init.is_some(),
                        read: false,
                    },
                );
            }
            Stmt::DeclArray { name, len, span } => {
                env.declare(
                    name,
                    Var::Array {
                        span: *span,
                        len: *len,
                        accessed: false,
                    },
                );
            }
            Stmt::Assign { target, value, .. } => {
                analyze_expr(value, env, nested, report);
                match target {
                    LValue::Var { name, .. } => {
                        if let Some(Var::Scalar { assigned, .. }) = env.vars.get_mut(name) {
                            *assigned = true;
                        }
                    }
                    LValue::Index { name, index, span } => {
                        analyze_expr(index, env, nested, report);
                        let folded = const_fold(index, &mut VerifyReport::new());
                        if let Some(Var::Array { len, accessed, .. }) = env.vars.get_mut(name) {
                            let len = *len;
                            *accessed = true;
                            if let Some(at) = folded {
                                if at < 0 || at >= len {
                                    report.push(
                                        Diagnostic::deny(
                                            "FS006",
                                            format!(
                                                "constant index {at} is out of bounds for \
                                                 '{name}[{len}]'"
                                            ),
                                        )
                                        .with_span(*span),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                analyze_expr(cond, env, nested, report);
                let mut then_env = env.clone();
                analyze_stmts(then_branch, &mut then_env, nested, report);
                let mut else_env = env.clone();
                analyze_stmts(else_branch, &mut else_env, nested, report);
                // The lowering merges one-sided assignments through a mux
                // (materialising 0 on the missing side), so a variable
                // assigned in either branch counts as assigned afterwards.
                then_env.merge_into(env, report);
                else_env.merge_into(env, report);
            }
            Stmt::While { cond, body, span } => {
                // Mirror the lowering's loop-carried variable discovery:
                // outer scalars read or written by the loop, minus the
                // loop's own declarations.
                let mut usage = Usage::default();
                collect_expr(cond, &mut usage);
                collect_stmts(body, &mut usage);
                let mut loop_env = env.clone();
                for name in usage.reads.union(&usage.writes) {
                    if usage.locals.contains(name) {
                        continue;
                    }
                    let Some(Var::Scalar { assigned, .. }) = env.vars.get_mut(name) else {
                        continue;
                    };
                    if !*assigned && !usage.writes.contains(name) {
                        // The lowering reads the carried variable's initial
                        // value here; at the top level that read makes it a
                        // kernel parameter, inside a loop it is
                        // use-before-assignment.
                        if nested {
                            report.push(
                                Diagnostic::deny(
                                    "FS003",
                                    format!("'{name}' read before assignment"),
                                )
                                .with_span(*span),
                            );
                        } else {
                            *assigned = true;
                        }
                    }
                    // Inside the loop every carried variable starts from its
                    // carried value (or the materialised 0 for
                    // written-before-read variables).
                    if let Some(Var::Scalar { assigned, .. }) = loop_env.vars.get_mut(name) {
                        *assigned = true;
                    }
                }
                // FS004: the flow can only unroll loops whose trip count is
                // a compile-time constant — a comparison against a foldable
                // bound. Warn when no side of the condition folds.
                if let Expr::Binary { op, lhs, rhs, .. } = cond {
                    let comparison = matches!(op, AstBinOp::Word(word) if word.is_comparison());
                    let mut scratch = VerifyReport::new();
                    if comparison
                        && const_fold(lhs, &mut scratch).is_none()
                        && const_fold(rhs, &mut scratch).is_none()
                    {
                        report.push(
                            Diagnostic::warn(
                                "FS004",
                                "loop bound is not a compile-time constant; the flow cannot \
                                 unroll this loop"
                                    .to_string(),
                            )
                            .with_span(*span),
                        );
                    }
                }
                analyze_expr(cond, &mut loop_env, true, report);
                analyze_stmts(body, &mut loop_env, true, report);
                loop_env.merge_into(env, report);
                // After the loop, every carried variable holds its final
                // value.
                for name in usage.writes.iter() {
                    if usage.locals.contains(name) {
                        continue;
                    }
                    if let Some(Var::Scalar { assigned, .. }) = env.vars.get_mut(name) {
                        *assigned = true;
                    }
                }
            }
            Stmt::Block { body, .. } => {
                // Blocks are transparent in the lowering (the `for`
                // desugaring relies on it), so no scope is pushed.
                analyze_stmts(body, env, nested, report);
            }
            Stmt::Empty { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn run(source: &str) -> VerifyReport {
        analyze(source).expect("source should parse")
    }

    #[test]
    fn clean_kernel_has_no_diagnostics() {
        let report = run(r#"
            void main() {
                int a[8];
                int sum;
                int i;
                sum = 0; i = 0;
                while (i < 8) { sum = sum + a[i]; i = i + 1; }
            }
        "#);
        assert!(
            report.diagnostics.is_empty(),
            "unexpected diagnostics:\n{report}"
        );
    }

    #[test]
    fn read_before_assignment_inside_a_loop_is_fs003() {
        let report = run(r#"
            void main() {
                int i;
                int sum;
                sum = 0;
                i = 0;
                while (i < 4) {
                    int acc;
                    sum = sum + acc;
                    acc = sum;
                    i = i + 1;
                }
            }
        "#);
        assert!(report.has_rule("FS003"), "expected FS003:\n{report}");
        let diag = report.of_rule("FS003")[0];
        assert_eq!(diag.severity, Severity::Deny);
        assert!(diag.message.contains("'acc'"));
        assert!(diag.span.is_some());
    }

    #[test]
    fn top_level_unassigned_read_is_an_implicit_parameter() {
        // `x` becomes a kernel input — exactly what the lowering does — so
        // no FS003 fires and no FS001 either (it is read).
        let report = run(r#"
            void main() {
                int x;
                int y;
                y = x + 1;
            }
        "#);
        assert!(!report.has_rule("FS003"), "spurious FS003:\n{report}");
    }

    #[test]
    fn unused_scalar_and_array_warn() {
        let report = run(r#"
            void main() {
                int unused_scalar;
                int unused_array[4];
                int y;
                y = 1;
            }
        "#);
        assert!(report.has_rule("FS001"));
        assert!(report.has_rule("FS002"));
        // `y` is assigned but never read -> also FS001.
        assert_eq!(report.of_rule("FS001").len(), 2);
        assert!(report.is_clean(), "lints must stay warn-level:\n{report}");
    }

    #[test]
    fn non_constant_loop_bound_warns_fs004() {
        let report = run(r#"
            void main() {
                int n;
                int i;
                int sum;
                sum = 0; i = 0;
                while (i < n) { sum = sum + i; i = i + 1; }
            }
        "#);
        assert!(report.has_rule("FS004"), "expected FS004:\n{report}");
        assert!(report.is_clean());
    }

    #[test]
    fn constant_overflow_warns_fs005() {
        let report = run(r#"
            void main() {
                int x;
                x = 9223372036854775807 + 1;
            }
        "#);
        assert!(report.has_rule("FS005"), "expected FS005:\n{report}");
        assert!(report.is_clean());
    }

    #[test]
    fn constant_index_out_of_bounds_is_fs006() {
        let report = run(r#"
            void main() {
                int a[4];
                int x;
                x = a[4];
            }
        "#);
        assert!(report.has_rule("FS006"), "expected FS006:\n{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn in_bounds_constant_index_is_clean() {
        let report = run(r#"
            void main() {
                int a[4];
                int x;
                x = a[3];
                a[0] = x;
            }
        "#);
        assert!(!report.has_rule("FS006"), "spurious FS006:\n{report}");
    }

    #[test]
    fn if_branch_assignment_counts_after_the_branch() {
        // `v` is assigned in one branch only; the lowering materialises 0 on
        // the other side, so the later read inside the loop is legal.
        let report = run(r#"
            void main() {
                int i;
                int out;
                i = 0;
                out = 0;
                while (i < 4) {
                    int v;
                    if (i > 2) { v = i; } else { ; }
                    out = out + v;
                    i = i + 1;
                }
            }
        "#);
        assert!(!report.has_rule("FS003"), "spurious FS003:\n{report}");
    }
}
