//! The mapping verifier: translation validation of a [`MappingResult`].
//!
//! [`Verifier::verify`] re-checks a finished mapping against the dependence
//! graph and the machine description, *independently of the code that
//! produced it*: every check is a declarative rule with a stable `FV0xx` id
//! (see [`crate::diag::RULES`]). The verifier trusts only
//!
//! * the simplified CDFG and the extracted mapping graph (the semantics), and
//! * the [`TileConfig`]/[`ArrayConfig`] it was constructed with (the
//!   machine),
//!
//! and validates everything else — clustering coverage, level schedules,
//! per-cycle register/memory dataflow, port and capacity limits, inter-tile
//! transfers, traffic accounting and the headline report — bottom-up from
//! those two. A mapper bug, a corrupted cache entry or a hand-mutated
//! program therefore shows up as a deny-level [`Diagnostic`] rather than a
//! silently wrong simulation.

use crate::diag::{Diagnostic, VerifyReport};
use fpfa_arch::{ArrayConfig, EnergyModel, MemRef, RegRef, TileConfig, TileId};
use fpfa_core::cache::config_fingerprint;
use fpfa_core::program::OperandSource;
use fpfa_core::{
    ClusterId, CutEdge, FlowToggles, Mapper, MappingResult, OpId, Schedule, TileProgram,
    TransferJob, ValueRef,
};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The static mapping verifier.
///
/// Construct one per configuration (via [`Verifier::new`] or
/// [`Verifier::for_mapper`]) and call [`Verifier::verify`] on any number of
/// results.
#[derive(Clone, Debug)]
pub struct Verifier {
    config: TileConfig,
    array: ArrayConfig,
    toggles: FlowToggles,
}

/// A uniform view of a mapping: single-tile results are treated as a
/// one-tile array so every rule is written once.
struct View<'a> {
    multi: bool,
    tiles: Vec<&'a TileProgram>,
    schedules: Vec<&'a Schedule>,
    /// Tile each cluster was partitioned onto, indexed by cluster index.
    tile_of: Vec<TileId>,
    transfers: &'a [TransferJob],
    /// Ground-truth cut edges recomputed from the partition (sorted).
    cut: Vec<CutEdge>,
    statespace: HashMap<i64, (TileId, MemRef)>,
    written: HashSet<i64>,
}

impl<'a> View<'a> {
    fn of(result: &'a MappingResult) -> Self {
        match &result.multi {
            Some(multi) => {
                let mut tile_of = vec![0; result.clustered.len()];
                for cluster in result.clustered.ids() {
                    if cluster.index() < multi.partition.len() {
                        tile_of[cluster.index()] = multi.partition.tile_of(cluster);
                    }
                }
                View {
                    multi: true,
                    tiles: multi.program.tiles.iter().collect(),
                    schedules: multi.schedule.tiles().iter().collect(),
                    tile_of,
                    transfers: &multi.program.transfers,
                    cut: multi
                        .partition
                        .cut_edges(&result.mapping_graph, &result.clustered),
                    statespace: multi
                        .program
                        .statespace_map
                        .iter()
                        .map(|(&addr, &home)| (addr, home))
                        .collect(),
                    written: multi.program.written_addresses.iter().copied().collect(),
                }
            }
            None => View {
                multi: false,
                tiles: vec![&result.program],
                schedules: vec![&result.schedule],
                tile_of: vec![0; result.clustered.len()],
                transfers: &[],
                cut: Vec::new(),
                statespace: result
                    .program
                    .statespace_map
                    .iter()
                    .map(|(&addr, &home)| (addr, (0, home)))
                    .collect(),
                written: result.program.written_addresses.iter().copied().collect(),
            },
        }
    }
}

/// Cluster placements `(tile, level)` and executions `(tile, cycle, pp)`
/// gathered by the completeness pass and reused by the dataflow rules.
struct Placement {
    at: HashMap<ClusterId, (TileId, usize)>,
    exec: HashMap<ClusterId, (TileId, usize, usize)>,
    owner: HashMap<OpId, ClusterId>,
}

impl Verifier {
    /// Creates a verifier for the given machine description and flow
    /// toggles (the toggles take part in the configuration fingerprint that
    /// rule FV013 compares).
    pub fn new(config: TileConfig, array: ArrayConfig, toggles: FlowToggles) -> Self {
        Verifier {
            config,
            array,
            toggles,
        }
    }

    /// A verifier matching a mapper's configuration — results produced by
    /// `mapper` should verify clean against `Verifier::for_mapper(&mapper)`.
    pub fn for_mapper(mapper: &Mapper) -> Self {
        Verifier::new(*mapper.config(), *mapper.array(), mapper.toggles())
    }

    /// Checks every `FV0xx` rule against the result and returns all
    /// findings.
    pub fn verify(&self, result: &MappingResult) -> VerifyReport {
        let mut report = VerifyReport::new();

        // FV001: the simplified CDFG itself must be well formed.
        for error in fpfa_cdfg::validate::validate_all(&result.simplified) {
            report.push(Diagnostic::deny(
                "FV001",
                format!("simplified CDFG is malformed: {error}"),
            ));
        }

        // FV013: the result must have been produced under this exact
        // configuration (catches a stale or corrupted cache entry served to
        // a differently-configured request).
        let expected = config_fingerprint(&self.config, &self.array, &self.toggles);
        if expected != result.config_fingerprint {
            report.push(Diagnostic::deny(
                "FV013",
                format!(
                    "result carries configuration fingerprint {:#018x} but the requesting \
                     configuration fingerprints to {:#018x} (stale or corrupted cache entry?)",
                    result.config_fingerprint, expected
                ),
            ));
        }

        let view = View::of(result);
        let placement = self.check_completeness(result, &view, &mut report);
        self.check_dependences(result, &view, &placement, &mut report);
        self.check_memory_dataflow(result, &view, &placement, &mut report);
        self.check_register_dataflow(result, &view, &mut report);
        self.check_capacity(&view, &mut report);
        if view.multi {
            self.check_transfers(&view, &mut report);
            self.check_traffic(result, &view, &mut report);
        }
        self.check_input_homing(result, &view, &mut report);
        self.check_report(result, &view, &mut report);
        report
    }

    /// FV002 (plus FV004): every cluster scheduled and executed exactly
    /// once, on its assigned tile; every operation owned by exactly one
    /// cluster; levels execute in order; no level exceeds the ALU count.
    fn check_completeness(
        &self,
        result: &MappingResult,
        view: &View<'_>,
        report: &mut VerifyReport,
    ) -> Placement {
        let clustered = &result.clustered;
        let graph = &result.mapping_graph;

        // Operation coverage: the clusters partition the operation set.
        let mut owner: HashMap<OpId, ClusterId> = HashMap::new();
        let mut owners = vec![0usize; graph.op_count()];
        for cluster in clustered.ids() {
            for &op in &clustered.cluster(cluster).ops {
                if op.index() < owners.len() {
                    owners[op.index()] += 1;
                }
                owner.entry(op).or_insert(cluster);
            }
        }
        for op in graph.op_ids() {
            let count = owners[op.index()];
            if count != 1 {
                report.push(Diagnostic::deny(
                    "FV002",
                    format!("operation {op} belongs to {count} clusters (expected exactly 1)"),
                ));
            }
        }

        // Placement: every cluster on exactly one (tile, level).
        let mut at: HashMap<ClusterId, (TileId, usize)> = HashMap::new();
        let mut placed: HashMap<ClusterId, usize> = HashMap::new();
        for (tile, schedule) in view.schedules.iter().enumerate() {
            for (level, clusters) in schedule.levels().iter().enumerate() {
                if clusters.len() > self.config.num_pps {
                    report.push(
                        Diagnostic::deny(
                            "FV004",
                            format!(
                                "{} clusters share one level but the tile has {} ALUs",
                                clusters.len(),
                                self.config.num_pps
                            ),
                        )
                        .with_location(format!("tile {tile}, level {level}")),
                    );
                }
                for &cluster in clusters {
                    if cluster.index() >= clustered.len() {
                        report.push(
                            Diagnostic::deny(
                                "FV002",
                                format!("unknown cluster {cluster} is scheduled"),
                            )
                            .with_location(format!("tile {tile}, level {level}")),
                        );
                        continue;
                    }
                    *placed.entry(cluster).or_insert(0) += 1;
                    at.entry(cluster).or_insert((tile, level));
                }
            }
        }
        for cluster in clustered.ids() {
            match placed.get(&cluster).copied().unwrap_or(0) {
                0 => report.push(Diagnostic::deny(
                    "FV002",
                    format!("cluster {cluster} is never scheduled"),
                )),
                1 => {
                    if let Some(&(tile, _)) = at.get(&cluster) {
                        if tile != view.tile_of[cluster.index()] {
                            report.push(Diagnostic::deny(
                                "FV002",
                                format!(
                                    "cluster {cluster} is scheduled on tile {tile} but \
                                     partitioned onto tile {}",
                                    view.tile_of[cluster.index()]
                                ),
                            ));
                        }
                    }
                }
                n => report.push(Diagnostic::deny(
                    "FV002",
                    format!("cluster {cluster} is scheduled {n} times"),
                )),
            }
        }

        // Execution: every cluster executed by exactly one ALU job, on its
        // tile.
        let mut exec: HashMap<ClusterId, (TileId, usize, usize)> = HashMap::new();
        let mut executed: HashMap<ClusterId, usize> = HashMap::new();
        for (tile, program) in view.tiles.iter().enumerate() {
            for (cycle, job) in program.cycles.iter().enumerate() {
                for alu in &job.alus {
                    *executed.entry(alu.cluster).or_insert(0) += 1;
                    exec.entry(alu.cluster).or_insert((tile, cycle, alu.pp));
                }
            }
        }
        for cluster in clustered.ids() {
            match executed.get(&cluster).copied().unwrap_or(0) {
                0 => report.push(Diagnostic::deny(
                    "FV002",
                    format!("cluster {cluster} is never executed by any ALU job"),
                )),
                1 => {
                    if let Some(&(tile, _, _)) = exec.get(&cluster) {
                        if tile != view.tile_of[cluster.index()] {
                            report.push(Diagnostic::deny(
                                "FV002",
                                format!(
                                    "cluster {cluster} executes on tile {tile} but was \
                                     partitioned onto tile {}",
                                    view.tile_of[cluster.index()]
                                ),
                            ));
                        }
                    }
                }
                n => report.push(Diagnostic::deny(
                    "FV002",
                    format!("cluster {cluster} is executed {n} times"),
                )),
            }
        }

        // Levels execute in order: every cycle of level l precedes every
        // cycle of level l+1 on the same tile.
        for (tile, schedule) in view.schedules.iter().enumerate() {
            let mut previous: Option<(usize, usize)> = None;
            for (level, clusters) in schedule.levels().iter().enumerate() {
                let cycles: Vec<usize> = clusters
                    .iter()
                    .filter_map(|c| exec.get(c))
                    .filter(|(t, _, _)| *t == tile)
                    .map(|&(_, cycle, _)| cycle)
                    .collect();
                let (Some(&first), Some(&last)) = (cycles.iter().min(), cycles.iter().max()) else {
                    continue;
                };
                if let Some((prev_level, prev_last)) = previous {
                    if first <= prev_last {
                        report.push(
                            Diagnostic::deny(
                                "FV002",
                                format!(
                                    "level {level} executes at cycle {first}, not after \
                                     level {prev_level} (which runs through cycle {prev_last})"
                                ),
                            )
                            .with_location(format!("tile {tile}")),
                        );
                    }
                }
                previous = Some((level, last));
            }
        }

        Placement { at, exec, owner }
    }

    /// FV003/FV005: every dependence edge between clusters is
    /// level-separated — by at least one level on the same tile, by
    /// `1 + hop_latency` levels across tiles.
    fn check_dependences(
        &self,
        result: &MappingResult,
        _view: &View<'_>,
        placement: &Placement,
        report: &mut VerifyReport,
    ) {
        let graph = &result.mapping_graph;
        let hop = self.array.hop_latency;
        let mut seen: HashSet<(ClusterId, ClusterId)> = HashSet::new();
        for op in graph.op_ids() {
            let Some(&consumer) = placement.owner.get(&op) else {
                continue;
            };
            for input in &graph.op(op).inputs {
                let ValueRef::Op(producer_op) = input else {
                    continue;
                };
                let Some(&producer) = placement.owner.get(producer_op) else {
                    continue;
                };
                if producer == consumer || !seen.insert((producer, consumer)) {
                    continue;
                }
                let (Some(&(pt, pl)), Some(&(ct, cl))) =
                    (placement.at.get(&producer), placement.at.get(&consumer))
                else {
                    continue;
                };
                if pt == ct {
                    if cl <= pl {
                        report.push(
                            Diagnostic::deny(
                                "FV003",
                                format!(
                                    "cluster {consumer} (level {cl}) depends on cluster \
                                     {producer} (level {pl}) but is not scheduled strictly \
                                     later"
                                ),
                            )
                            .with_location(format!("tile {pt}")),
                        );
                    }
                } else if cl < pl + 1 + hop {
                    report.push(Diagnostic::deny(
                        "FV005",
                        format!(
                            "cluster {consumer} (tile {ct}, level {cl}) depends on cluster \
                             {producer} (tile {pt}, level {pl}) but the {hop}-level hop \
                             latency requires level {} or later",
                            pl + 1 + hop
                        ),
                    ));
                }
            }
        }
    }

    /// FV006: every register load reads a memory word that was stored (by
    /// the preload image, an earlier write-back or an arrived transfer)
    /// with the value the move claims; write-backs follow the producing
    /// execution on the same tile and processing part.
    fn check_memory_dataflow(
        &self,
        _result: &MappingResult,
        view: &View<'_>,
        placement: &Placement,
        report: &mut VerifyReport,
    ) {
        for (tile, program) in view.tiles.iter().enumerate() {
            // Store events per memory word: (cycle, value); the preload
            // image materialises before cycle 0.
            let mut events: HashMap<MemRef, Vec<(i64, ValueRef)>> = HashMap::new();
            for &(value, mem) in &program.preload {
                events.entry(mem).or_default().push((-1, value));
            }
            for (cycle, job) in program.cycles.iter().enumerate() {
                for wb in &job.writebacks {
                    events
                        .entry(wb.dest)
                        .or_default()
                        .push((cycle as i64, ValueRef::Op(wb.op)));
                    let produced = placement
                        .owner
                        .get(&wb.op)
                        .and_then(|cluster| placement.exec.get(cluster));
                    match produced {
                        None => report.push(
                            Diagnostic::deny(
                                "FV006",
                                format!("write-back of {} has no executing cluster", wb.op),
                            )
                            .with_location(format!("tile {tile}, cycle {cycle}")),
                        ),
                        Some(&(et, ecycle, epp)) => {
                            if et != tile || ecycle > cycle {
                                report.push(
                                    Diagnostic::deny(
                                        "FV006",
                                        format!(
                                            "write-back of {} at cycle {cycle} precedes its \
                                             execution (tile {et}, cycle {ecycle})",
                                            wb.op
                                        ),
                                    )
                                    .with_location(format!("tile {tile}, cycle {cycle}")),
                                );
                            } else if epp != wb.src_pp {
                                report.push(
                                    Diagnostic::deny(
                                        "FV006",
                                        format!(
                                            "write-back of {} names pp{} as its source but \
                                             the operation executed on pp{epp}",
                                            wb.op, wb.src_pp
                                        ),
                                    )
                                    .with_location(format!("tile {tile}, cycle {cycle}")),
                                );
                            }
                        }
                    }
                }
            }
            for transfer in view.transfers {
                if transfer.to == tile {
                    events
                        .entry(transfer.dst)
                        .or_default()
                        .push((transfer.arrive as i64, ValueRef::Op(transfer.op)));
                }
            }
            for stores in events.values_mut() {
                stores.sort_by_key(|&(cycle, _)| cycle);
            }
            for (cycle, job) in program.cycles.iter().enumerate() {
                for mv in &job.moves {
                    let latest = events
                        .get(&mv.src)
                        .and_then(|stores| stores.iter().rev().find(|&&(c, _)| c < cycle as i64));
                    match latest {
                        None => report.push(
                            Diagnostic::deny(
                                "FV006",
                                format!(
                                    "register load of {} reads {} before anything was stored \
                                     there",
                                    mv.value, mv.src
                                ),
                            )
                            .with_location(format!("tile {tile}, cycle {cycle}")),
                        ),
                        Some(&(_, stored)) if stored != mv.value => report.push(
                            Diagnostic::deny(
                                "FV006",
                                format!(
                                    "register load expects {} in {} but the last store there \
                                     was {stored}",
                                    mv.value, mv.src
                                ),
                            )
                            .with_location(format!("tile {tile}, cycle {cycle}")),
                        ),
                        _ => {}
                    }
                }
            }
        }
    }

    /// FV007: ALU operands match the dataflow graph — immediates equal the
    /// constant inputs, internal forwarding points at an earlier micro-op of
    /// the same cluster, and register operands were loaded (by a move in an
    /// earlier cycle) with exactly the value the graph expects.
    fn check_register_dataflow(
        &self,
        result: &MappingResult,
        view: &View<'_>,
        report: &mut VerifyReport,
    ) {
        let graph = &result.mapping_graph;
        let clustered = &result.clustered;
        for (tile, program) in view.tiles.iter().enumerate() {
            let mut regs: HashMap<RegRef, ValueRef> = HashMap::new();
            for (cycle, job) in program.cycles.iter().enumerate() {
                let here = |pp: usize| format!("tile {tile}, cycle {cycle}, pp{pp}");
                for alu in &job.alus {
                    if alu.cluster.index() >= clustered.len() {
                        continue; // FV002 already reported the unknown cluster.
                    }
                    let cluster = clustered.cluster(alu.cluster);
                    if alu.micro_ops.len() != cluster.ops.len() {
                        report.push(
                            Diagnostic::deny(
                                "FV007",
                                format!(
                                    "cluster {} executes {} micro-ops for {} operations",
                                    alu.cluster,
                                    alu.micro_ops.len(),
                                    cluster.ops.len()
                                ),
                            )
                            .with_location(here(alu.pp)),
                        );
                        continue;
                    }
                    for (k, micro) in alu.micro_ops.iter().enumerate() {
                        let op = cluster.ops[k];
                        if micro.op != op {
                            report.push(
                                Diagnostic::deny(
                                    "FV007",
                                    format!(
                                        "micro-op {k} of cluster {} implements {} (expected \
                                         {op})",
                                        alu.cluster, micro.op
                                    ),
                                )
                                .with_location(here(alu.pp)),
                            );
                            continue;
                        }
                        let map_op = graph.op(op);
                        if micro.kind != map_op.kind {
                            report.push(
                                Diagnostic::deny(
                                    "FV007",
                                    format!(
                                        "micro-op {k} of cluster {} computes {} (expected {})",
                                        alu.cluster,
                                        micro.kind.mnemonic(),
                                        map_op.kind.mnemonic()
                                    ),
                                )
                                .with_location(here(alu.pp)),
                            );
                        }
                        if micro.operands.len() != map_op.inputs.len() {
                            report.push(
                                Diagnostic::deny(
                                    "FV007",
                                    format!(
                                        "{op} takes {} operands but the micro-op supplies {}",
                                        map_op.inputs.len(),
                                        micro.operands.len()
                                    ),
                                )
                                .with_location(here(alu.pp)),
                            );
                            continue;
                        }
                        for (port, (source, expected)) in
                            micro.operands.iter().zip(&map_op.inputs).enumerate()
                        {
                            match *source {
                                OperandSource::Immediate(value) => {
                                    if *expected != ValueRef::Const(value) {
                                        report.push(
                                            Diagnostic::deny(
                                                "FV007",
                                                format!(
                                                    "operand {port} of {op} is immediate \
                                                     {value} but the graph expects {expected}"
                                                ),
                                            )
                                            .with_location(here(alu.pp)),
                                        );
                                    }
                                }
                                OperandSource::Internal(position) => {
                                    let forwarded =
                                        (position < k).then(|| ValueRef::Op(cluster.ops[position]));
                                    if forwarded != Some(*expected) {
                                        report.push(
                                            Diagnostic::deny(
                                                "FV007",
                                                format!(
                                                    "operand {port} of {op} forwards micro-op \
                                                     {position} but the graph expects \
                                                     {expected}"
                                                ),
                                            )
                                            .with_location(here(alu.pp)),
                                        );
                                    }
                                }
                                OperandSource::Register(reg) => {
                                    if reg.pp != alu.pp {
                                        report.push(
                                            Diagnostic::deny(
                                                "FV007",
                                                format!(
                                                    "operand {port} of {op} reads {reg}, a \
                                                     register of another processing part"
                                                ),
                                            )
                                            .with_location(here(alu.pp)),
                                        );
                                        continue;
                                    }
                                    match regs.get(&reg) {
                                        Some(held) if held == expected => {}
                                        Some(held) => report.push(
                                            Diagnostic::deny(
                                                "FV007",
                                                format!(
                                                    "operand {port} of {op} reads {reg} \
                                                     holding {held} (expected {expected})"
                                                ),
                                            )
                                            .with_location(here(alu.pp)),
                                        ),
                                        None => report.push(
                                            Diagnostic::deny(
                                                "FV007",
                                                format!(
                                                    "operand {port} of {op} reads {reg} before \
                                                     any move loaded it"
                                                ),
                                            )
                                            .with_location(here(alu.pp)),
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
                // Moves commit at the end of the cycle: ALU jobs of the same
                // cycle must not observe them (the allocator always loads
                // strictly ahead of use).
                for mv in &job.moves {
                    regs.insert(mv.dst, mv.value);
                }
            }
        }
    }

    /// FV008: references stay within the machine (processing parts,
    /// memories, register banks, memory words) and per-cycle port limits
    /// hold — memory ports, crossbar buses, register-bank write ports, one
    /// ALU job per processing part.
    fn check_capacity(&self, view: &View<'_>, report: &mut VerifyReport) {
        let cfg = &self.config;
        for (tile, program) in view.tiles.iter().enumerate() {
            let mut preloaded: HashSet<MemRef> = HashSet::new();
            for &(value, mem) in &program.preload {
                self.check_mem_ref(mem, &format!("tile {tile}, preload of {value}"), report);
                if !preloaded.insert(mem) {
                    report.push(
                        Diagnostic::deny(
                            "FV008",
                            format!("the preload image writes {mem} more than once"),
                        )
                        .with_location(format!("tile {tile}")),
                    );
                }
            }
            for (cycle, job) in program.cycles.iter().enumerate() {
                let here = format!("tile {tile}, cycle {cycle}");
                let mut mem_accesses: BTreeMap<(usize, usize), usize> = BTreeMap::new();
                let mut bank_writes: BTreeMap<(usize, usize), usize> = BTreeMap::new();
                let mut crossbar = 0usize;
                let mut busy_pps: HashSet<usize> = HashSet::new();
                for mv in &job.moves {
                    self.check_mem_ref(mv.src, &here, report);
                    self.check_reg_ref(mv.dst, &here, report);
                    *mem_accesses
                        .entry((mv.src.pp, mv.src.mem.index()))
                        .or_insert(0) += 1;
                    *bank_writes
                        .entry((mv.dst.pp, mv.dst.bank.index()))
                        .or_insert(0) += 1;
                    let crosses = mv.src.pp != mv.dst.pp;
                    if mv.via_crossbar != crosses {
                        report.push(
                            Diagnostic::deny(
                                "FV008",
                                format!(
                                    "move {} -> {} has via_crossbar = {} but {}",
                                    mv.src,
                                    mv.dst,
                                    mv.via_crossbar,
                                    if crosses {
                                        "it crosses processing parts"
                                    } else {
                                        "it stays within one processing part"
                                    }
                                ),
                            )
                            .with_location(here.clone()),
                        );
                    }
                    if crosses {
                        crossbar += 1;
                    }
                }
                for wb in &job.writebacks {
                    self.check_mem_ref(wb.dest, &here, report);
                    if wb.src_pp >= cfg.num_pps {
                        report.push(
                            Diagnostic::deny(
                                "FV008",
                                format!(
                                    "write-back of {} comes from pp{} but the tile has {} \
                                     processing parts",
                                    wb.op, wb.src_pp, cfg.num_pps
                                ),
                            )
                            .with_location(here.clone()),
                        );
                    }
                    *mem_accesses
                        .entry((wb.dest.pp, wb.dest.mem.index()))
                        .or_insert(0) += 1;
                    let crosses = wb.src_pp != wb.dest.pp;
                    if wb.via_crossbar != crosses {
                        report.push(
                            Diagnostic::deny(
                                "FV008",
                                format!(
                                    "write-back of {} has via_crossbar = {} but {}",
                                    wb.op,
                                    wb.via_crossbar,
                                    if crosses {
                                        "it crosses processing parts"
                                    } else {
                                        "it stays within one processing part"
                                    }
                                ),
                            )
                            .with_location(here.clone()),
                        );
                    }
                    if crosses {
                        crossbar += 1;
                    }
                }
                for alu in &job.alus {
                    if alu.pp >= cfg.num_pps {
                        report.push(
                            Diagnostic::deny(
                                "FV008",
                                format!(
                                    "ALU job on pp{} but the tile has {} processing parts",
                                    alu.pp, cfg.num_pps
                                ),
                            )
                            .with_location(here.clone()),
                        );
                    } else if !busy_pps.insert(alu.pp) {
                        report.push(
                            Diagnostic::deny(
                                "FV008",
                                format!("two ALU jobs on pp{} in one cycle", alu.pp),
                            )
                            .with_location(here.clone()),
                        );
                    }
                }
                if crossbar > cfg.crossbar_buses {
                    report.push(
                        Diagnostic::deny(
                            "FV008",
                            format!(
                                "{crossbar} crossbar transfers in one cycle exceed the {} buses",
                                cfg.crossbar_buses
                            ),
                        )
                        .with_location(here.clone()),
                    );
                }
                for ((pp, mem), accesses) in mem_accesses {
                    if accesses > cfg.mem_ports {
                        report.push(
                            Diagnostic::deny(
                                "FV008",
                                format!(
                                    "pp{pp} memory {} is accessed {accesses} times in one \
                                     cycle (port limit {})",
                                    mem + 1,
                                    cfg.mem_ports
                                ),
                            )
                            .with_location(here.clone()),
                        );
                    }
                }
                for ((pp, bank), writes) in bank_writes {
                    if writes > cfg.regbank_write_ports {
                        report.push(
                            Diagnostic::deny(
                                "FV008",
                                format!(
                                    "register bank {bank} of pp{pp} is written {writes} times \
                                     in one cycle (write-port limit {})",
                                    cfg.regbank_write_ports
                                ),
                            )
                            .with_location(here.clone()),
                        );
                    }
                }
            }
        }
        for transfer in view.transfers {
            let here = format!("transfer of {}", transfer.op);
            if transfer.from >= view.tiles.len() || transfer.to >= view.tiles.len() {
                report.push(
                    Diagnostic::deny(
                        "FV008",
                        format!(
                            "transfer connects tile {} to tile {} but the array has {} tiles",
                            transfer.from,
                            transfer.to,
                            view.tiles.len()
                        ),
                    )
                    .with_location(here.clone()),
                );
            }
            self.check_mem_ref(transfer.src, &here, report);
            self.check_mem_ref(transfer.dst, &here, report);
        }
    }

    fn check_mem_ref(&self, mem: MemRef, location: &str, report: &mut VerifyReport) {
        let cfg = &self.config;
        if mem.pp >= cfg.num_pps
            || mem.mem.index() >= cfg.mems_per_pp
            || mem.offset >= cfg.mem_words
        {
            report.push(
                Diagnostic::deny(
                    "FV008",
                    format!(
                        "memory reference {mem} is outside the machine ({} PPs, {} memories of \
                         {} words)",
                        cfg.num_pps, cfg.mems_per_pp, cfg.mem_words
                    ),
                )
                .with_location(location.to_string()),
            );
        }
    }

    fn check_reg_ref(&self, reg: RegRef, location: &str, report: &mut VerifyReport) {
        let cfg = &self.config;
        if reg.pp >= cfg.num_pps
            || reg.bank.index() >= cfg.banks_per_pp
            || reg.index >= cfg.regs_per_bank
        {
            report.push(
                Diagnostic::deny(
                    "FV008",
                    format!(
                        "register reference {reg} is outside the machine ({} PPs, {} banks of \
                         {} registers)",
                        cfg.num_pps, cfg.banks_per_pp, cfg.regs_per_bank
                    ),
                )
                .with_location(location.to_string()),
            );
        }
    }

    /// FV009/FV010: the transfers realise exactly the cut edges of the
    /// partition, depart after the producing write-back, arrive one hop
    /// later and never exceed the per-cycle link budget.
    fn check_transfers(&self, view: &View<'_>, report: &mut VerifyReport) {
        // Multiset comparison against the recomputed cut edges.
        let mut balance: BTreeMap<(OpId, TileId, TileId), i64> = BTreeMap::new();
        for edge in &view.cut {
            *balance.entry((edge.op, edge.from, edge.to)).or_insert(0) += 1;
        }
        for transfer in view.transfers {
            *balance
                .entry((transfer.op, transfer.from, transfer.to))
                .or_insert(0) -= 1;
        }
        for ((op, from, to), count) in balance {
            if count > 0 {
                report.push(Diagnostic::deny(
                    "FV009",
                    format!(
                        "cut edge {op}: tile {from} -> tile {to} has no transfer job \
                         ({count} missing)"
                    ),
                ));
            } else if count < 0 {
                report.push(Diagnostic::deny(
                    "FV009",
                    format!(
                        "{} transfer(s) of {op}: tile {from} -> tile {to} beyond the single \
                         cut edge",
                        -count
                    ),
                ));
            }
        }
        for transfer in view.transfers {
            if transfer.arrive != transfer.depart + self.array.hop_latency {
                report.push(Diagnostic::deny(
                    "FV009",
                    format!(
                        "transfer of {} arrives at cycle {} (expected depart {} + hop latency \
                         {})",
                        transfer.op, transfer.arrive, transfer.depart, self.array.hop_latency
                    ),
                ));
            }
            let written = view
                .tiles
                .get(transfer.from)
                .map(|program| {
                    program.cycles.iter().take(transfer.depart).any(|job| {
                        job.writebacks
                            .iter()
                            .any(|wb| wb.op == transfer.op && wb.dest == transfer.src)
                    })
                })
                .unwrap_or(false);
            if !written {
                report.push(Diagnostic::deny(
                    "FV009",
                    format!(
                        "transfer of {} departs tile {} at cycle {} before the value was \
                         written to {}",
                        transfer.op, transfer.from, transfer.depart, transfer.src
                    ),
                ));
            }
        }
        // FV010: per-cycle link budget.
        let mut departures: BTreeMap<usize, usize> = BTreeMap::new();
        for transfer in view.transfers {
            *departures.entry(transfer.depart).or_insert(0) += 1;
        }
        for (cycle, count) in departures {
            if count > self.array.links_per_cycle {
                report.push(
                    Diagnostic::deny(
                        "FV010",
                        format!(
                            "{count} transfers depart in one cycle but the interconnect \
                             provides {} links per cycle",
                            self.array.links_per_cycle
                        ),
                    )
                    .with_location(format!("cycle {cycle}")),
                );
            }
        }
    }

    /// FV011: the traffic report and the energy/transfer totals equal the
    /// values recomputed from the partition and the scheduled transfers.
    fn check_traffic(&self, result: &MappingResult, view: &View<'_>, report: &mut VerifyReport) {
        let Some(multi) = &result.multi else {
            return;
        };
        let traffic = &multi.program.traffic;

        let mut reported_edges = traffic.edges.clone();
        reported_edges.sort_unstable();
        if reported_edges != view.cut {
            report.push(Diagnostic::deny(
                "FV011",
                format!(
                    "traffic report lists {} cut edges but the partition implies {}",
                    traffic.edges.len(),
                    view.cut.len()
                ),
            ));
        }

        let mut per_pair: BTreeMap<(TileId, TileId), usize> = BTreeMap::new();
        for edge in &traffic.edges {
            *per_pair.entry((edge.from, edge.to)).or_insert(0) += 1;
        }
        for broadcast in &traffic.input_broadcasts {
            *per_pair.entry((broadcast.from, broadcast.to)).or_insert(0) += 1;
        }
        let recomputed: Vec<((TileId, TileId), usize)> = per_pair.into_iter().collect();
        if recomputed != traffic.per_pair {
            report.push(Diagnostic::deny(
                "FV011",
                "per-pair traffic counts do not equal the accounted edges and broadcasts"
                    .to_string(),
            ));
        }

        let mut departures: BTreeMap<usize, usize> = BTreeMap::new();
        for transfer in view.transfers {
            *departures.entry(transfer.depart).or_insert(0) += 1;
        }
        let pressure = departures.values().copied().max().unwrap_or(0);
        if pressure != traffic.max_link_pressure {
            report.push(Diagnostic::deny(
                "FV011",
                format!(
                    "traffic report claims link pressure {} but the transfers peak at \
                     {pressure} departures per cycle",
                    traffic.max_link_pressure
                ),
            ));
        }

        let accounted = view.transfers.len() + traffic.input_broadcasts.len();
        if multi.program.stats.inter_tile_transfers != accounted {
            report.push(Diagnostic::deny(
                "FV011",
                format!(
                    "stats count {} inter-tile transfers but {accounted} events are accounted \
                     (transfers plus input broadcasts)",
                    multi.program.stats.inter_tile_transfers
                ),
            ));
        }

        let model = EnergyModel::default();
        let expected =
            model.inter_tile_transfer * (view.cut.len() + traffic.input_broadcasts.len()) as f64;
        if traffic.energy(&model) != expected {
            report.push(Diagnostic::deny(
                "FV011",
                format!(
                    "traffic energy {} does not equal the accounted events' {expected}",
                    traffic.energy(&model)
                ),
            ));
        }

        let mut seen: HashSet<(ValueRef, TileId)> = HashSet::new();
        for broadcast in &traffic.input_broadcasts {
            if broadcast.from == broadcast.to {
                report.push(Diagnostic::deny(
                    "FV011",
                    format!(
                        "input broadcast of {} stays on tile {}",
                        broadcast.value, broadcast.from
                    ),
                ));
            }
            if !seen.insert((broadcast.value, broadcast.to)) {
                report.push(Diagnostic::deny(
                    "FV011",
                    format!(
                        "duplicate input broadcast of {} to tile {}",
                        broadcast.value, broadcast.to
                    ),
                ));
            }
            let delivered = view
                .tiles
                .get(broadcast.to)
                .map(|program| program.preload.iter().any(|&(v, _)| v == broadcast.value))
                .unwrap_or(false);
            if !delivered {
                report.push(Diagnostic::deny(
                    "FV011",
                    format!(
                        "input broadcast of {} to tile {} has no preload entry on the \
                         receiving tile",
                        broadcast.value, broadcast.to
                    ),
                ));
            }
        }
    }

    /// FV012: every statespace address the kernel reads is homed in the
    /// statespace map, and read-only addresses are preloaded at exactly
    /// their homed word.
    fn check_input_homing(
        &self,
        result: &MappingResult,
        view: &View<'_>,
        report: &mut VerifyReport,
    ) {
        let graph = &result.mapping_graph;
        if view.multi {
            for &addr in &graph.mem_reads {
                match view.statespace.get(&addr) {
                    None => report.push(Diagnostic::deny(
                        "FV012",
                        format!("statespace address {addr} is read but has no home"),
                    )),
                    Some(&(tile, home)) => {
                        if view.written.contains(&addr) {
                            continue;
                        }
                        let preloaded = view
                            .tiles
                            .get(tile)
                            .map(|program| {
                                program
                                    .preload
                                    .iter()
                                    .any(|&(v, m)| v == ValueRef::MemWord(addr) && m == home)
                            })
                            .unwrap_or(false);
                        if !preloaded {
                            report.push(Diagnostic::deny(
                                "FV012",
                                format!(
                                    "read-only statespace word {addr} is homed at tile \
                                     {tile}'s {home} but not preloaded there"
                                ),
                            ));
                        }
                    }
                }
            }
        } else {
            let Some(program) = view.tiles.first() else {
                return;
            };
            for &addr in &graph.mem_reads {
                let homes: Vec<MemRef> = program
                    .preload
                    .iter()
                    .filter(|&&(v, _)| v == ValueRef::MemWord(addr))
                    .map(|&(_, m)| m)
                    .collect();
                match homes.as_slice() {
                    [] => report.push(Diagnostic::deny(
                        "FV012",
                        format!("statespace word {addr} is read but never preloaded"),
                    )),
                    [home] => {
                        if view.written.contains(&addr) {
                            continue;
                        }
                        match view.statespace.get(&addr) {
                            Some(&(_, mapped)) if mapped == *home => {}
                            Some(&(_, mapped)) => report.push(Diagnostic::deny(
                                "FV012",
                                format!(
                                    "statespace map homes word {addr} at {mapped} but it is \
                                     preloaded at {home}"
                                ),
                            )),
                            None => report.push(Diagnostic::deny(
                                "FV012",
                                format!("statespace word {addr} has no statespace-map entry"),
                            )),
                        }
                    }
                    many => report.push(Diagnostic::deny(
                        "FV012",
                        format!("statespace word {addr} is preloaded {} times", many.len()),
                    )),
                }
            }
        }
    }

    /// FV014: the headline report equals the values recomputed from the
    /// artifacts (mirrors `MappingReport::absorb_program` /
    /// `absorb_multi_program`).
    fn check_report(&self, result: &MappingResult, view: &View<'_>, report: &mut VerifyReport) {
        let r = &result.report;
        let graph = &result.mapping_graph;
        let clustered = &result.clustered;
        expect_count(report, "operations", r.operations, graph.op_count());
        expect_count(report, "clusters", r.clusters, clustered.len());
        expect_count(
            report,
            "critical_path",
            r.critical_path,
            clustered.critical_path(),
        );
        expect_count(report, "tiles", r.tiles, view.tiles.len());
        match &result.multi {
            Some(multi) => {
                let program = &multi.program;
                expect_count(report, "levels", r.levels, multi.schedule.level_count());
                expect_count(report, "cycles", r.cycles, program.cycle_count());
                expect_count(
                    report,
                    "stall_cycles",
                    r.stall_cycles,
                    program.stats.stall_cycles,
                );
                let alus_used = (0..program.cycle_count())
                    .map(|cycle| {
                        program
                            .tiles
                            .iter()
                            .map(|tile| tile.cycles[cycle].busy_alus())
                            .sum::<usize>()
                    })
                    .max()
                    .unwrap_or(0);
                expect_count(report, "alus_used", r.alus_used, alus_used);
                expect_count(
                    report,
                    "register_hits",
                    r.register_hits,
                    program.stats.register_hits,
                );
                expect_count(
                    report,
                    "register_misses",
                    r.register_misses,
                    program.stats.register_misses,
                );
                expect_count(
                    report,
                    "mem_writebacks",
                    r.mem_writebacks,
                    program.stats.mem_writebacks,
                );
                expect_count(
                    report,
                    "crossbar_transfers",
                    r.crossbar_transfers,
                    program.stats.crossbar_transfers,
                );
                expect_count(
                    report,
                    "inter_tile_transfers",
                    r.inter_tile_transfers,
                    program.stats.inter_tile_transfers,
                );
                if (r.alu_utilization - program.alu_utilization()).abs() > 1e-9 {
                    report.push(Diagnostic::deny(
                        "FV014",
                        format!(
                            "report.alu_utilization is {}; the program implies {}",
                            r.alu_utilization,
                            program.alu_utilization()
                        ),
                    ));
                }
            }
            None => {
                let program = &result.program;
                expect_count(report, "levels", r.levels, result.schedule.level_count());
                expect_count(report, "cycles", r.cycles, program.cycle_count());
                expect_count(
                    report,
                    "stall_cycles",
                    r.stall_cycles,
                    program.stats.stall_cycles,
                );
                let alus_used = program
                    .cycles
                    .iter()
                    .map(|cycle| cycle.busy_alus())
                    .max()
                    .unwrap_or(0);
                expect_count(report, "alus_used", r.alus_used, alus_used);
                expect_count(
                    report,
                    "register_hits",
                    r.register_hits,
                    program.stats.register_hits,
                );
                expect_count(
                    report,
                    "register_misses",
                    r.register_misses,
                    program.stats.register_misses,
                );
                expect_count(
                    report,
                    "mem_writebacks",
                    r.mem_writebacks,
                    program.stats.mem_writebacks,
                );
                expect_count(
                    report,
                    "crossbar_transfers",
                    r.crossbar_transfers,
                    program.stats.crossbar_transfers,
                );
                expect_count(report, "inter_tile_transfers", r.inter_tile_transfers, 0);
                if (r.alu_utilization - program.alu_utilization()).abs() > 1e-9 {
                    report.push(Diagnostic::deny(
                        "FV014",
                        format!(
                            "report.alu_utilization is {}; the program implies {}",
                            r.alu_utilization,
                            program.alu_utilization()
                        ),
                    ));
                }
            }
        }
    }
}

/// Pushes an FV014 diagnostic when a recomputed report field differs.
fn expect_count(report: &mut VerifyReport, field: &str, got: usize, want: usize) {
    if got != want {
        report.push(Diagnostic::deny(
            "FV014",
            format!("report.{field} is {got}; the program implies {want}"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIR: &str = r#"
        void main() {
            int a[8];
            int c[8];
            int sum;
            int i;
            sum = 0; i = 0;
            while (i < 8) { sum = sum + a[i] * c[i]; i = i + 1; }
        }
    "#;

    #[test]
    fn clean_single_tile_mapping_verifies_clean() {
        let mapper = Mapper::new();
        let result = mapper.map_source(FIR).unwrap();
        let report = Verifier::for_mapper(&mapper).verify(&result);
        assert!(report.is_clean(), "unexpected diagnostics:\n{report}");
        assert_eq!(report.warn_count(), 0);
    }

    #[test]
    fn clean_multi_tile_mapping_verifies_clean() {
        let mapper = Mapper::new().with_tiles(4);
        let result = mapper.map_source(FIR).unwrap();
        assert!(result.multi.is_some());
        let report = Verifier::for_mapper(&mapper).verify(&result);
        assert!(report.is_clean(), "unexpected diagnostics:\n{report}");
    }

    #[test]
    fn fingerprint_mismatch_is_fv013() {
        let mapper = Mapper::new();
        let mut result = mapper.map_source(FIR).unwrap();
        result.config_fingerprint ^= 1;
        let report = Verifier::for_mapper(&mapper).verify(&result);
        assert!(report.has_rule("FV013"));
    }

    #[test]
    fn differently_configured_verifier_rejects_the_result() {
        let producer = Mapper::new();
        let result = producer.map_source(FIR).unwrap();
        let consumer = Mapper::new().with_tiles(2);
        let report = Verifier::for_mapper(&consumer).verify(&result);
        assert!(report.has_rule("FV013"));
    }

    #[test]
    fn report_tampering_is_fv014() {
        let mapper = Mapper::new();
        let mut result = mapper.map_source(FIR).unwrap();
        result.report.cycles += 1;
        let report = Verifier::for_mapper(&mapper).verify(&result);
        assert!(report.has_rule("FV014"));
    }
}
