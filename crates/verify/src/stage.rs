//! [`VerifyStage`]: the mapping verifier packaged as an opt-in flow stage.
//!
//! The stage passes its input through untouched when
//! [`fpfa_core::FlowToggles::verify`] is off; when on, it runs the full
//! [`Verifier`] against the result and turns any deny-level diagnostic into a
//! [`MapError::VerificationFailed`]. Warnings never fail the stage.
//!
//! `fpfa-core` cannot depend on this crate (the verifier depends on the
//! flow's types), so the stage is appended by the *callers* of the mapper —
//! the CLI binaries, the server's job loop, or any custom
//! [`Stage`] chain built downstream.

use crate::diag::Severity;
use crate::mapping::Verifier;
use fpfa_core::{FlowContext, MapError, MappingResult, Stage};

/// A flow stage that verifies the mapping it is handed.
#[derive(Clone, Copy, Default, Debug)]
pub struct VerifyStage;

impl Stage<MappingResult, MappingResult> for VerifyStage {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn run(&self, input: MappingResult, cx: &mut FlowContext) -> Result<MappingResult, MapError> {
        if !cx.toggles.verify {
            return Ok(input);
        }
        let verifier = Verifier::new(cx.config, cx.array, cx.toggles);
        let report = verifier.verify(&input);
        if report.is_clean() {
            return Ok(input);
        }
        let first = report
            .diagnostics
            .iter()
            .find(|d| d.severity == Severity::Deny)
            .map(ToString::to_string)
            .unwrap_or_default();
        Err(MapError::VerificationFailed {
            denies: report.deny_count(),
            first,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfa_arch::TileConfig;
    use fpfa_core::{FlowToggles, Mapper};

    const FIR: &str = r#"
        void main() {
            int a[8];
            int c[8];
            int sum;
            int i;
            sum = 0; i = 0;
            while (i < 8) { sum = sum + a[i] * c[i]; i = i + 1; }
        }
    "#;

    fn context(verify: bool) -> FlowContext {
        let toggles = FlowToggles {
            verify,
            ..FlowToggles::default()
        };
        FlowContext::new(TileConfig::default()).with_toggles(toggles)
    }

    #[test]
    fn passes_clean_results_through() {
        let result = Mapper::default().map_source(FIR).unwrap();
        let mut cx = context(true);
        let out = VerifyStage.run(result, &mut cx).unwrap();
        assert_eq!(out.report.kernel, "main");
    }

    #[test]
    fn rejects_tampered_results_when_toggled_on() {
        let mut result = Mapper::default().map_source(FIR).unwrap();
        result.report.cycles += 1;
        let mut cx = context(true);
        let err = VerifyStage.run(result, &mut cx).unwrap_err();
        match err {
            MapError::VerificationFailed { denies, first } => {
                assert!(denies >= 1);
                assert!(first.contains("FV014"), "first diagnostic: {first}");
            }
            other => panic!("expected VerificationFailed, got {other}"),
        }
    }

    #[test]
    fn is_a_no_op_when_toggled_off() {
        let mut result = Mapper::default().map_source(FIR).unwrap();
        result.report.cycles += 1;
        let mut cx = context(false);
        assert!(VerifyStage.run(result, &mut cx).is_ok());
    }
}
