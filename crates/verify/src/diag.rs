//! The shared diagnostics core: one [`Diagnostic`] type emitted by both the
//! mapping verifier (`FV0xx` rules) and the frontend semantic pass (`FS0xx`
//! rules), with text and machine-readable (`--diag-json`) rendering.

use fpfa_frontend::Span;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// A lint: suspicious but legal; never fails a run.
    Warn,
    /// A violation of a hard constraint; fails `--verify` runs.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => f.write_str("warning"),
            Severity::Deny => f.write_str("error"),
        }
    }
}

/// One finding of a verification or lint rule.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Stable rule identifier (`FV003`, `FS001`, ...).
    pub rule: &'static str,
    /// Deny (error) or warn.
    pub severity: Severity,
    /// Source position, for frontend diagnostics.
    pub span: Option<Span>,
    /// Structural position, for mapping diagnostics (`"tile 1, level 3"`,
    /// `"cycle 12, pp2"`, ...).
    pub location: Option<String>,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// A deny-level diagnostic.
    pub fn deny(rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Deny,
            span: None,
            location: None,
            message: message.into(),
        }
    }

    /// A warn-level diagnostic.
    pub fn warn(rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warn,
            span: None,
            location: None,
            message: message.into(),
        }
    }

    /// Attaches a source span (frontend rules).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches a structural location (mapping rules).
    pub fn with_location(mut self, location: impl Into<String>) -> Self {
        self.location = Some(location.into());
        self
    }

    /// One JSON object: `{"rule":..,"severity":..,"line":..,"column":..,
    /// "location":..,"message":..}` (span/location keys present only when
    /// set).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"rule\":\"{}\"", json_escape(self.rule)));
        out.push_str(&format!(
            ",\"severity\":\"{}\"",
            match self.severity {
                Severity::Warn => "warn",
                Severity::Deny => "deny",
            }
        ));
        if let Some(span) = self.span {
            out.push_str(&format!(
                ",\"line\":{},\"column\":{}",
                span.line, span.column
            ));
        }
        if let Some(location) = &self.location {
            out.push_str(&format!(",\"location\":\"{}\"", json_escape(location)));
        }
        out.push_str(&format!(",\"message\":\"{}\"", json_escape(&self.message)));
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    /// `kernel.c:12:7: error[FS003]: ...` for spanned diagnostics (the file
    /// prefix is the caller's job), `error[FV003]: ... (tile 1, level 3)`
    /// for structural ones.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(span) = self.span {
            write!(f, "{span}: ")?;
        }
        write!(f, "{}[{}]: {}", self.severity, self.rule, self.message)?;
        if let Some(location) = &self.location {
            write!(f, " ({location})")?;
        }
        Ok(())
    }
}

/// The outcome of one verification or lint run: every diagnostic found.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct VerifyReport {
    /// The findings, in rule order of discovery.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        VerifyReport::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Absorbs every finding of another report.
    pub fn merge(&mut self, other: VerifyReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// `true` when nothing deny-level was found (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// `true` when some finding carries the given rule id.
    pub fn has_rule(&self, rule: &str) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// The diagnostics carrying the given rule id.
    pub fn of_rule(&self, rule: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// A JSON array of every finding (the `--diag-json` payload body).
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!("[{}]", items.join(","))
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for diagnostic in &self.diagnostics {
            writeln!(f, "{diagnostic}")?;
        }
        Ok(())
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Documentation of one rule, for `--help`-style listings and the README
/// table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RuleInfo {
    /// Stable rule identifier.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary of what the rule checks.
    pub summary: &'static str,
}

/// Every rule the crate implements, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "FV001",
        severity: Severity::Deny,
        summary: "simplified CDFG is well formed (all violations collected)",
    },
    RuleInfo {
        id: "FV002",
        severity: Severity::Deny,
        summary: "schedule is complete and consistent with clustering and program",
    },
    RuleInfo {
        id: "FV003",
        severity: Severity::Deny,
        summary: "every same-tile dependence edge is level-separated",
    },
    RuleInfo {
        id: "FV004",
        severity: Severity::Deny,
        summary: "at most num_pps data-paths per tile per level",
    },
    RuleInfo {
        id: "FV005",
        severity: Severity::Deny,
        summary: "cross-tile dependences separated by 1 + hop latency levels",
    },
    RuleInfo {
        id: "FV006",
        severity: Severity::Deny,
        summary: "every memory read sees a value stored (or preloaded) earlier",
    },
    RuleInfo {
        id: "FV007",
        severity: Severity::Deny,
        summary: "register moves precede use and operands match the dataflow",
    },
    RuleInfo {
        id: "FV008",
        severity: Severity::Deny,
        summary: "per-cycle memory/crossbar/register-port and capacity limits hold",
    },
    RuleInfo {
        id: "FV009",
        severity: Severity::Deny,
        summary: "each cut edge has exactly one transfer, correctly timed",
    },
    RuleInfo {
        id: "FV010",
        severity: Severity::Deny,
        summary: "per-cycle inter-tile link budget is respected",
    },
    RuleInfo {
        id: "FV011",
        severity: Severity::Deny,
        summary: "traffic report and energy totals equal the accounted events",
    },
    RuleInfo {
        id: "FV012",
        severity: Severity::Deny,
        summary: "statespace reads are homed and preloaded consistently",
    },
    RuleInfo {
        id: "FV013",
        severity: Severity::Deny,
        summary: "result fingerprint matches the requesting configuration",
    },
    RuleInfo {
        id: "FV014",
        severity: Severity::Deny,
        summary: "headline report equals values recomputed from the program",
    },
    RuleInfo {
        id: "FS001",
        severity: Severity::Warn,
        summary: "scalar variable is never read",
    },
    RuleInfo {
        id: "FS002",
        severity: Severity::Warn,
        summary: "array is never accessed",
    },
    RuleInfo {
        id: "FS003",
        severity: Severity::Deny,
        summary: "scalar read before assignment inside a loop",
    },
    RuleInfo {
        id: "FS004",
        severity: Severity::Warn,
        summary: "loop bound is not a compile-time constant (may not unroll)",
    },
    RuleInfo {
        id: "FS005",
        severity: Severity::Warn,
        summary: "constant arithmetic wraps the 64-bit machine word",
    },
    RuleInfo {
        id: "FS006",
        severity: Severity::Deny,
        summary: "constant array index out of bounds",
    },
];

/// Looks up a rule's documentation by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_and_json() {
        let d = Diagnostic::deny("FV003", "cluster c3 not level-separated")
            .with_location("tile 0, level 2");
        assert_eq!(
            d.to_string(),
            "error[FV003]: cluster c3 not level-separated (tile 0, level 2)"
        );
        let json = d.to_json();
        assert!(json.contains("\"rule\":\"FV003\""));
        assert!(json.contains("\"severity\":\"deny\""));
        assert!(json.contains("\"location\":\"tile 0, level 2\""));

        let s = Diagnostic::warn("FS001", "`x` is never read").with_span(Span::new(3, 9));
        assert_eq!(s.to_string(), "3:9: warning[FS001]: `x` is never read");
        assert!(s.to_json().contains("\"line\":3,\"column\":9"));
    }

    #[test]
    fn report_counts_and_json_array() {
        let mut report = VerifyReport::new();
        assert!(report.is_clean());
        report.push(Diagnostic::warn("FS001", "w"));
        report.push(Diagnostic::deny("FV001", "e\"quoted\""));
        assert_eq!(report.warn_count(), 1);
        assert_eq!(report.deny_count(), 1);
        assert!(!report.is_clean());
        assert!(report.has_rule("FV001"));
        assert!(!report.has_rule("FV002"));
        let json = report.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("e\\\"quoted\\\""));
    }

    #[test]
    fn rule_table_is_sorted_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for rule in RULES {
            assert!(seen.insert(rule.id), "duplicate rule id {}", rule.id);
            assert!(!rule.summary.is_empty());
        }
        assert!(rule_info("FV013").is_some());
        assert!(rule_info("FV999").is_none());
    }
}
