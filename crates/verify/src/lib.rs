//! `fpfa-verify`: static analysis for the FPFA mapping flow.
//!
//! Two halves share one diagnostics core:
//!
//! * **The mapping verifier** ([`Verifier`]) re-checks a finished
//!   [`fpfa_core::MappingResult`] against the architecture contract,
//!   independently of the code that produced it — translation validation in
//!   the spirit of Pnueli/Necula, applied to the paper's CDFG → cluster →
//!   schedule → allocate flow. Every check is a declarative rule with a
//!   stable `FV0xx` id (see [`RULES`]).
//! * **The frontend semantic pass** ([`analyze`]) lints kernel sources
//!   before lowering, with span-carrying `FS0xx` diagnostics (use before
//!   assignment, unused variables, out-of-bounds constant indices, ...).
//!
//! Both report through [`Diagnostic`]/[`VerifyReport`], render as
//! `rustc`-style text or `--diag-json` machine output, and distinguish
//! deny-level errors (fail the run) from warn-level lints.
//!
//! The [`mutate`] module seeds known-bad defects into mapping results so
//! kill suites can prove the verifier actually rejects each defect class
//! with the documented rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod mapping;
pub mod mutate;
pub mod semantic;
pub mod stage;

pub use diag::{rule_info, Diagnostic, RuleInfo, Severity, VerifyReport, RULES};
pub use mapping::Verifier;
pub use mutate::Mutation;
pub use semantic::{analyze, analyze_unit};
pub use stage::VerifyStage;
