//! Mutation harness: seeds known-bad defects into a [`MappingResult`] so a
//! kill suite can assert the verifier rejects every mutant with the
//! documented rule id.
//!
//! Each [`Mutation`] names one defect class from the issue's threat model
//! (swapped schedule levels, a dropped transfer, an oversubscribed level,
//! corrupted input homing, a capacity overflow, a stale fingerprint, a
//! tampered report) together with [`Mutation::expected_rule`], the rule a
//! correct verifier must fire. [`Mutation::apply`] performs the in-memory
//! corruption; it returns `Err` when the mutation does not apply to the given
//! result (for example dropping a transfer from a single-tile mapping).

use crate::diag::rule_info;
use fpfa_arch::{MemId, MemRef};
use fpfa_core::{ClusterId, MappingResult, ValueRef};
use std::sync::Arc;

/// One seedable defect class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Swap two dependence-connected schedule levels (single tile).
    SwapScheduleLevels,
    /// Move clusters until one level holds more than `num_pps` data-paths
    /// (single tile).
    OversubscribeLevel,
    /// Remove one inter-tile [`fpfa_core::TransferJob`] (multi tile).
    DropTransfer,
    /// Re-home one read-only statespace word without moving its preload.
    CorruptInputHoming,
    /// Add a preload entry past the end of a memory.
    OverflowPreload,
    /// Flip a bit of the stored configuration fingerprint.
    CorruptFingerprint,
    /// Bump a headline report counter.
    TamperReport,
}

impl Mutation {
    /// Every defect class, in documentation order.
    pub fn all() -> &'static [Mutation] {
        &[
            Mutation::SwapScheduleLevels,
            Mutation::OversubscribeLevel,
            Mutation::DropTransfer,
            Mutation::CorruptInputHoming,
            Mutation::OverflowPreload,
            Mutation::CorruptFingerprint,
            Mutation::TamperReport,
        ]
    }

    /// The rule id a correct verifier must report for this defect class.
    pub fn expected_rule(self) -> &'static str {
        let id = match self {
            Mutation::SwapScheduleLevels => "FV003",
            Mutation::OversubscribeLevel => "FV004",
            Mutation::DropTransfer => "FV009",
            Mutation::CorruptInputHoming => "FV012",
            Mutation::OverflowPreload => "FV008",
            Mutation::CorruptFingerprint => "FV013",
            Mutation::TamperReport => "FV014",
        };
        debug_assert!(rule_info(id).is_some(), "undocumented rule {id}");
        id
    }

    /// Corrupts `result` in place.
    ///
    /// # Errors
    /// A human-readable reason when the mutation does not apply to this
    /// result's shape (wrong tile count, nothing to corrupt). The result is
    /// untouched in that case.
    pub fn apply(self, result: &mut MappingResult) -> Result<String, String> {
        match self {
            Mutation::SwapScheduleLevels => swap_schedule_levels(result),
            Mutation::OversubscribeLevel => oversubscribe_level(result),
            Mutation::DropTransfer => drop_transfer(result),
            Mutation::CorruptInputHoming => corrupt_input_homing(result),
            Mutation::OverflowPreload => overflow_preload(result),
            Mutation::CorruptFingerprint => {
                result.config_fingerprint ^= 1;
                Ok("flipped the low bit of the configuration fingerprint".into())
            }
            Mutation::TamperReport => {
                result.report.cycles = result.report.cycles.wrapping_add(1);
                Ok("incremented report.cycles".into())
            }
        }
    }
}

/// Finds a dependence edge spanning adjacent levels and swaps those levels.
fn swap_schedule_levels(result: &mut MappingResult) -> Result<String, String> {
    if result.multi.is_some() {
        return Err("schedule-level swap targets single-tile results".into());
    }
    let mut pair: Option<(usize, usize)> = None;
    for cluster in result.clustered.ids() {
        let Some(level) = result.schedule.level_of(cluster) else {
            continue;
        };
        for pred in result.clustered.predecessors(cluster) {
            if result.schedule.level_of(*pred) == Some(level.wrapping_sub(1)) {
                pair = Some((level - 1, level));
                break;
            }
        }
        if pair.is_some() {
            break;
        }
    }
    let Some((a, b)) = pair else {
        return Err("no dependence edge spans adjacent levels".into());
    };
    Arc::make_mut(&mut result.schedule).swap_levels(a, b);
    Ok(format!("swapped dependence-connected levels {a} and {b}"))
}

/// Crams clusters into level 0 until it exceeds the ALU count.
fn oversubscribe_level(result: &mut MappingResult) -> Result<String, String> {
    if result.multi.is_some() {
        return Err("level oversubscription targets single-tile results".into());
    }
    let num_pps = result.program.config.num_pps;
    if result.clustered.len() <= num_pps {
        return Err(format!(
            "only {} clusters; cannot oversubscribe {num_pps} ALUs",
            result.clustered.len()
        ));
    }
    let ids: Vec<ClusterId> = result.clustered.ids().collect();
    let schedule = Arc::make_mut(&mut result.schedule);
    let mut moved = 0usize;
    for id in ids {
        if schedule.level(0).len() > num_pps {
            break;
        }
        if schedule.level_of(id) != Some(0) {
            schedule.move_cluster(id, 0);
            moved += 1;
        }
    }
    Ok(format!(
        "moved {moved} clusters into level 0 ({} > {num_pps} ALUs)",
        schedule.level(0).len()
    ))
}

/// Deletes the first inter-tile transfer, leaving its cut edge unserved.
fn drop_transfer(result: &mut MappingResult) -> Result<String, String> {
    let Some(multi) = result.multi.as_mut() else {
        return Err("transfer drop targets multi-tile results".into());
    };
    if multi.program.transfers.is_empty() {
        return Err("mapping has no inter-tile transfers".into());
    }
    let multi = Arc::make_mut(multi);
    let dropped = multi.program.transfers.remove(0);
    Ok(format!(
        "dropped transfer of {} ({} -> {})",
        dropped.op, dropped.from, dropped.to
    ))
}

/// Moves a read-only statespace word's map entry without moving its preload.
fn corrupt_input_homing(result: &mut MappingResult) -> Result<String, String> {
    let read_only: Vec<i64> = result
        .mapping_graph
        .mem_reads
        .iter()
        .copied()
        .filter(|addr| {
            let written = match result.multi.as_deref() {
                Some(multi) => multi.program.written_addresses.contains(addr),
                None => result.program.written_addresses.contains(addr),
            };
            !written
        })
        .collect();
    let Some(&addr) = read_only.first() else {
        return Err("kernel has no read-only statespace words".into());
    };
    if let Some(multi) = result.multi.as_mut() {
        let multi = Arc::make_mut(multi);
        let Some((_, home)) = multi.program.statespace_map.get_mut(&addr) else {
            return Err(format!("address {addr} is not in the statespace map"));
        };
        home.offset += 1;
    } else {
        let program = Arc::make_mut(&mut result.program);
        let Some(home) = program.statespace_map.get_mut(&addr) else {
            return Err(format!("address {addr} is not in the statespace map"));
        };
        home.offset += 1;
    }
    Ok(format!("re-homed read-only statespace word {addr}"))
}

/// Adds a preload entry one word past the end of mem1.
fn overflow_preload(result: &mut MappingResult) -> Result<String, String> {
    let bogus = |config: &fpfa_arch::TileConfig| {
        (
            ValueRef::Const(1),
            MemRef {
                pp: 0,
                mem: MemId::Mem1,
                offset: config.mem_words,
            },
        )
    };
    if let Some(multi) = result.multi.as_mut() {
        let multi = Arc::make_mut(multi);
        let entry = bogus(&multi.program.tiles[0].config);
        multi.program.tiles[0].preload.push(entry);
    } else {
        let program = Arc::make_mut(&mut result.program);
        let entry = bogus(&program.config);
        program.preload.push(entry);
    }
    Ok("preloaded a word one past the end of mem1".into())
}
