//! Mutation-kill suite: every seeded defect class from
//! [`fpfa_verify::Mutation`] must be rejected by the verifier with its
//! documented rule id, on every result shape the mutation applies to.
//!
//! This is the empirical half of the translation-validation argument: the
//! rules in `mapping.rs` claim to catch whole defect classes, and this suite
//! demonstrates each class is actually killed, not just plausibly covered.

use fpfa_core::pipeline::Mapper;
use fpfa_core::MappingResult;
use fpfa_verify::{Mutation, Verifier};

/// A kernel with enough clusters and schedule levels that every single-tile
/// mutation finds something to corrupt.
const FIR16: &str = r#"
    void main() {
        int a[16];
        int c[16];
        int sum;
        int i;
        sum = 0; i = 0;
        while (i < 16) { sum = sum + a[i] * c[i]; i = i + 1; }
    }
"#;

fn single_tile() -> (Mapper, MappingResult) {
    let mapper = Mapper::new();
    let result = mapper.map_source(FIR16).expect("FIR-16 maps on one tile");
    assert!(result.multi.is_none());
    (mapper, result)
}

fn multi_tile() -> (Mapper, MappingResult) {
    let mapper = Mapper::new().with_tiles(4);
    let result = mapper.map_source(FIR16).expect("FIR-16 maps on 4 tiles");
    assert!(result.multi.is_some());
    (mapper, result)
}

/// Applies `mutation` to a fresh mapping of the given shape; returns the
/// verifier's report when the mutation applied, `None` when it reported
/// itself inapplicable to that shape.
fn kill_on(
    mutation: Mutation,
    make: fn() -> (Mapper, MappingResult),
) -> Option<fpfa_verify::VerifyReport> {
    let (mapper, mut result) = make();
    let baseline = Verifier::for_mapper(&mapper).verify(&result);
    assert!(
        baseline.is_clean(),
        "the unmutated mapping must verify clean, got:\n{baseline}"
    );
    match mutation.apply(&mut result) {
        Ok(_) => Some(Verifier::for_mapper(&mapper).verify(&result)),
        Err(_) => None,
    }
}

#[test]
fn every_mutation_class_is_killed_with_its_documented_rule() {
    for &mutation in Mutation::all() {
        let rule = mutation.expected_rule();
        let mut applied_somewhere = false;
        for make in [single_tile as fn() -> _, multi_tile as fn() -> _] {
            if let Some(report) = kill_on(mutation, make) {
                applied_somewhere = true;
                assert!(
                    report.has_rule(rule),
                    "{mutation:?} survived: expected {rule}, got:\n{report}"
                );
                assert!(report.deny_count() >= 1, "{rule} must be deny-level");
            }
        }
        assert!(
            applied_somewhere,
            "{mutation:?} applied to neither result shape — the kill suite \
             never exercised it"
        );
    }
}

#[test]
fn schedule_mutations_apply_to_single_tile_results() {
    for mutation in [Mutation::SwapScheduleLevels, Mutation::OversubscribeLevel] {
        let (_, mut result) = single_tile();
        mutation
            .apply(&mut result)
            .unwrap_or_else(|reason| panic!("{mutation:?} should apply: {reason}"));
    }
}

#[test]
fn transfer_drop_applies_to_multi_tile_results() {
    let (_, mut result) = multi_tile();
    Mutation::DropTransfer
        .apply(&mut result)
        .expect("a 4-tile FIR-16 mapping has inter-tile transfers");
}

#[test]
fn inapplicable_mutations_leave_the_result_untouched() {
    let (mapper, mut result) = single_tile();
    let refused = Mutation::DropTransfer.apply(&mut result);
    assert!(refused.is_err(), "single-tile results have no transfers");
    let report = Verifier::for_mapper(&mapper).verify(&result);
    assert!(report.is_clean(), "refused mutation corrupted the result");
}
