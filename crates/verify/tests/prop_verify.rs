//! Property tests for the verifier: random kernels verify clean on every
//! path the flow can produce them (cold and cache-served, one tile and
//! four), and every applicable mutation class is detected on random
//! kernels, not just the hand-picked FIR of the kill suite.

use fpfa_core::pipeline::Mapper;
use fpfa_core::service::MappingService;
use fpfa_verify::{Mutation, Verifier};
use proptest::prelude::*;

/// A random straight-line kernel: each element builds
/// `t{i} = <expr over array a and earlier temps>` (the generator from the
/// mapper's own property tests, so verified coverage matches mapped
/// coverage).
fn random_kernel_source(ops: &[(u8, u8, u8)]) -> String {
    let mut body = String::new();
    for (i, (kind, a, b)) in ops.iter().enumerate() {
        let lhs = format!("a[{}]", a % 6);
        let rhs = if i == 0 {
            format!("a[{}]", b % 6)
        } else {
            format!("t{}", (*b as usize) % i)
        };
        let op = match kind % 4 {
            0 => "+",
            1 => "-",
            2 => "*",
            _ => "^",
        };
        body.push_str(&format!("            t{i} = {lhs} {op} {rhs};\n"));
    }
    let decls: String = (0..ops.len())
        .map(|i| format!("            int t{i};\n"))
        .collect();
    format!("void main() {{\n            int a[6];\n{decls}{body}        }}")
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12)
}

fn arb_tiles() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(4usize)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_kernels_verify_clean_cold_and_cached(
        ops in arb_ops(),
        tiles in arb_tiles(),
    ) {
        let source = random_kernel_source(&ops);
        let mapper = Mapper::new().with_tiles(tiles);
        let verifier = Verifier::for_mapper(&mapper);
        let service = MappingService::new(mapper);

        let cold = service.map_source(&source).expect("random kernels map");
        let report = verifier.verify(&cold);
        prop_assert!(
            report.is_clean(),
            "cold {tiles}-tile mapping failed verification:\n{report}"
        );

        // The cache-served repeat must verify identically: a cache that
        // hands back anything the verifier would reject is a cache bug.
        let cached = service.map_source(&source).expect("cached repeat maps");
        let report = verifier.verify(&cached);
        prop_assert!(
            report.is_clean(),
            "cache-served {tiles}-tile mapping failed verification:\n{report}"
        );
    }

    #[test]
    fn applicable_mutations_are_detected_on_random_kernels(
        ops in arb_ops(),
        tiles in arb_tiles(),
    ) {
        let source = random_kernel_source(&ops);
        let mapper = Mapper::new().with_tiles(tiles);
        let result = mapper.map_source(&source).expect("random kernels map");
        let verifier = Verifier::for_mapper(&mapper);
        prop_assert!(verifier.verify(&result).is_clean());

        for &mutation in Mutation::all() {
            let mut mutant = result.clone();
            // Small random kernels legitimately dodge some mutations (no
            // adjacent-level dependence to swap, too few clusters to
            // oversubscribe); `apply` says so and leaves the result alone.
            if mutation.apply(&mut mutant).is_err() {
                continue;
            }
            let report = verifier.verify(&mutant);
            prop_assert!(
                report.has_rule(mutation.expected_rule()),
                "{mutation:?} survived on a random {tiles}-tile kernel \
                 (expected {}):\n{report}\nsource:\n{source}",
                mutation.expected_rule()
            );
        }
    }
}
