//! End-to-end verification over the whole workload registry: every
//! registry kernel, at one and four tiles, cold-mapped and cache-served,
//! must come out of the flow with zero deny-level diagnostics — the
//! repository-wide "the flow produces only legal mappings" gate.

use fpfa_core::pipeline::Mapper;
use fpfa_core::service::MappingService;
use fpfa_verify::Verifier;

#[test]
fn the_whole_registry_verifies_clean_at_one_and_four_tiles() {
    for tiles in [1usize, 4] {
        let mapper = Mapper::new().with_tiles(tiles);
        let verifier = Verifier::for_mapper(&mapper);
        let service = MappingService::new(mapper);
        for kernel in fpfa_workloads::registry() {
            // Frontend lints: registry kernels must be deny-free (warnings
            // are tolerated — some kernels keep illustrative scratch vars).
            let lints = fpfa_verify::analyze(&kernel.source)
                .unwrap_or_else(|e| panic!("`{}` fails the frontend: {e}", kernel.name));
            assert_eq!(
                lints.deny_count(),
                0,
                "`{}` has deny-level lints:\n{lints}",
                kernel.name
            );

            let cold = service.map_source(&kernel.source).unwrap_or_else(|e| {
                panic!("`{}` fails to map on {tiles} tile(s): {e}", kernel.name)
            });
            let report = verifier.verify(&cold);
            assert_eq!(
                report.deny_count(),
                0,
                "`{}` cold-mapped on {tiles} tile(s) fails verification:\n{report}",
                kernel.name
            );

            let warm = service
                .map_source(&kernel.source)
                .unwrap_or_else(|e| panic!("`{}` warm repeat failed: {e}", kernel.name));
            let report = verifier.verify(&warm);
            assert_eq!(
                report.deny_count(),
                0,
                "`{}` cache-served on {tiles} tile(s) fails verification:\n{report}",
                kernel.name
            );
        }
    }
}
