//! Cycle-by-cycle execution of a tile program.

use crate::error::SimError;
use crate::trace::{CycleTrace, Trace};
use fpfa_arch::{ArchError, EnergyModel, EnergyReport, EventCounts, MemRef, RegRef, Tile};
use fpfa_cdfg::StateSpace;
use fpfa_core::program::{CycleJob, Location, OperandSource};
use fpfa_core::{OpId, OpKind, TileProgram, ValueRef};
use std::collections::HashMap;

/// Run-time inputs of a kernel: scalar values plus the initial statespace.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SimInputs {
    /// Values of the named scalar kernel inputs.
    pub scalars: HashMap<String, i64>,
    /// Initial statespace (array contents).
    pub statespace: StateSpace,
}

impl SimInputs {
    /// Creates empty inputs.
    pub fn new() -> Self {
        SimInputs::default()
    }

    /// Sets a scalar input.
    pub fn scalar(mut self, name: impl Into<String>, value: i64) -> Self {
        self.scalars.insert(name.into(), value);
        self
    }

    /// Loads an array at a base address of the statespace.
    pub fn array(mut self, base: i64, values: &[i64]) -> Self {
        self.statespace.store_array(base, values);
        self
    }
}

/// The result of one simulation.
#[derive(Clone, PartialEq, Debug)]
pub struct SimOutcome {
    /// Scalar outputs by name.
    pub scalars: HashMap<String, i64>,
    /// The final statespace (initial contents overlaid with every address the
    /// kernel wrote).
    pub final_statespace: StateSpace,
    /// Architectural event counts.
    pub counts: EventCounts,
    /// Per-cycle trace.
    pub trace: Trace,
}

impl SimOutcome {
    /// Value of a scalar output.
    pub fn scalar(&self, name: &str) -> Option<i64> {
        self.scalars.get(name).copied()
    }

    /// Energy estimate under the given model.
    pub fn energy(&self, model: &EnergyModel) -> EnergyReport {
        model.report(self.counts)
    }
}

/// The cycle-accurate simulator.
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p TileProgram,
    check_structure: bool,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator for a program.
    pub fn new(program: &'p TileProgram) -> Self {
        Simulator {
            program,
            check_structure: true,
        }
    }

    /// Disables the per-cycle structural re-checks (ports, buses, ALU
    /// capability). Only useful for performance experiments on very large
    /// programs; the default re-checks everything.
    pub fn without_structural_checks(mut self) -> Self {
        self.check_structure = false;
        self
    }

    /// Executes the program.
    ///
    /// # Errors
    /// Returns a [`SimError`] when an input is missing, a structural
    /// constraint is violated, or the program reads values that were never
    /// produced.
    pub fn run(&self, inputs: &SimInputs) -> Result<SimOutcome, SimError> {
        let config = self.program.config;
        let mut tile = Tile::new(config);
        let mut counts = EventCounts::default();
        let mut trace = Trace::default();
        let mut results: HashMap<OpId, i64> = HashMap::new();

        // ------------------------------------------------------------------
        // Pre-load: kernel inputs into the local memories.
        // ------------------------------------------------------------------
        for (value, home) in &self.program.preload {
            let word = match value {
                ValueRef::Const(c) => *c,
                ValueRef::MemWord(addr) => {
                    inputs
                        .statespace
                        .fetch(*addr)
                        .ok_or_else(|| SimError::MissingInput {
                            what: format!("statespace word at address {addr}"),
                        })?
                }
                ValueRef::ScalarInput(index) => {
                    // Index into the preserved input-name table is not carried
                    // by the program; the allocator preserves the order, so we
                    // recover the name through the scalar output map when
                    // possible. The mapping result's graph knows the names;
                    // the program's preload only needs the value, which the
                    // caller supplies by name. We look the name up from the
                    // program's scalar inputs table.
                    let name =
                        self.program
                            .scalar_input_name(*index as usize)
                            .ok_or_else(|| SimError::MissingInput {
                                what: format!("scalar input #{index}"),
                            })?;
                    *inputs
                        .scalars
                        .get(name)
                        .ok_or_else(|| SimError::MissingInput {
                            what: format!("scalar input `{name}`"),
                        })?
                }
                ValueRef::Op(op) => {
                    return Err(SimError::MissingInput {
                        what: format!("pre-load of computed value {op}"),
                    })
                }
            };
            write_mem(&mut tile, *home, word, 0)?;
        }

        // ------------------------------------------------------------------
        // Cycle loop.
        // ------------------------------------------------------------------
        for (cycle_index, cycle) in self.program.cycles.iter().enumerate() {
            if self.check_structure {
                check_cycle(&config, cycle_index, cycle)?;
            }
            let mut cycle_trace = CycleTrace {
                cycle: cycle_index,
                ..CycleTrace::default()
            };
            execute_cycle(
                &mut tile,
                cycle_index,
                cycle,
                &mut results,
                &mut counts,
                &mut cycle_trace,
            )?;
            counts.cycles += 1;
            trace.cycles.push(cycle_trace);
        }

        // ------------------------------------------------------------------
        // Read back outputs.
        // ------------------------------------------------------------------
        let mut scalars = HashMap::new();
        for (name, location) in &self.program.scalar_outputs {
            let value = match location {
                Location::Constant(c) => *c,
                Location::Mem(mem) => read_mem(&tile, *mem, self.program.cycle_count())?,
                Location::Reg(reg) => read_reg(&tile, *reg, self.program.cycle_count())?,
            };
            scalars.insert(name.clone(), value);
        }

        let mut final_statespace = inputs.statespace.clone();
        for (addr, home) in &self.program.statespace_map {
            let value = read_mem(&tile, *home, self.program.cycle_count())?;
            final_statespace.store(*addr, value);
        }

        Ok(SimOutcome {
            scalars,
            final_statespace,
            counts,
            trace,
        })
    }
}

/// Executes one tile's jobs for one cycle on the given tile state (shared by
/// the single-tile and multi-tile simulators).
pub(crate) fn execute_cycle(
    tile: &mut Tile,
    cycle_index: usize,
    cycle: &CycleJob,
    results: &mut HashMap<OpId, i64>,
    counts: &mut EventCounts,
    cycle_trace: &mut CycleTrace,
) -> Result<(), SimError> {
    // Register loads.
    for mv in &cycle.moves {
        let word = read_mem(tile, mv.src, cycle_index)?;
        write_reg(tile, mv.dst, word, cycle_index)?;
        counts.mem_reads += 1;
        counts.reg_writes += 1;
        if mv.via_crossbar {
            counts.crossbar_transfers += 1;
            cycle_trace.crossbar_transfers += 1;
        }
        cycle_trace.moves += 1;
    }

    // ALU execution.
    for alu in &cycle.alus {
        let mut internal: Vec<i64> = Vec::with_capacity(alu.micro_ops.len());
        for micro in &alu.micro_ops {
            let mut operands = Vec::with_capacity(micro.operands.len());
            for source in &micro.operands {
                let value = match source {
                    OperandSource::Immediate(c) => *c,
                    OperandSource::Register(reg) => {
                        counts.reg_reads += 1;
                        read_reg(tile, *reg, cycle_index)?
                    }
                    OperandSource::Internal(pos) => {
                        *internal.get(*pos).ok_or(SimError::BadInternalOperand {
                            cycle: cycle_index,
                            op: micro.op,
                        })?
                    }
                };
                operands.push(value);
            }
            let result = eval_op(micro.kind, &operands).ok_or(SimError::DivisionByZero {
                cycle: cycle_index,
                op: micro.op,
            })?;
            internal.push(result);
            results.insert(micro.op, result);
            counts.alu_ops += 1;
            cycle_trace.alu_ops += 1;
        }
        cycle_trace.busy_alus += 1;
    }

    // Write-backs.
    for wb in &cycle.writebacks {
        let value = *results.get(&wb.op).ok_or(SimError::MissingResult {
            cycle: cycle_index,
            op: wb.op,
        })?;
        write_mem(tile, wb.dest, value, cycle_index)?;
        counts.mem_writes += 1;
        if wb.via_crossbar {
            counts.crossbar_transfers += 1;
            cycle_trace.crossbar_transfers += 1;
        }
        cycle_trace.writebacks += 1;
    }
    Ok(())
}

/// Re-checks the structural constraints of one cycle against a tile
/// configuration (shared by the single-tile and multi-tile simulators).
pub(crate) fn check_cycle(
    config: &fpfa_arch::TileConfig,
    cycle_index: usize,
    cycle: &CycleJob,
) -> Result<(), SimError> {
    {
        // One cluster per PP.
        let mut pps_seen: Vec<usize> = Vec::new();
        for alu in &cycle.alus {
            if pps_seen.contains(&alu.pp) {
                return Err(SimError::AluConflict {
                    cycle: cycle_index,
                    pp: alu.pp,
                });
            }
            pps_seen.push(alu.pp);
            // ALU capability: count ops, multiplies, depth (approximated by
            // the number of internal dependencies on the longest chain),
            // register operands.
            let ops = alu.micro_ops.len();
            let multiplies = alu
                .micro_ops
                .iter()
                .filter(|m| m.kind.is_multiply())
                .count();
            let mut depth = vec![1usize; ops];
            for (i, micro) in alu.micro_ops.iter().enumerate() {
                for source in &micro.operands {
                    if let OperandSource::Internal(pos) = source {
                        if *pos < i {
                            depth[i] = depth[i].max(depth[*pos] + 1);
                        }
                    }
                }
            }
            let max_depth = depth.iter().copied().max().unwrap_or(0);
            let register_inputs: std::collections::HashSet<RegRef> = alu
                .micro_ops
                .iter()
                .flat_map(|m| m.operands.iter())
                .filter_map(|s| match s {
                    OperandSource::Register(r) => Some(*r),
                    _ => None,
                })
                .collect();
            if let Some(reason) = config.alu.check(
                register_inputs.len(),
                max_depth,
                ops,
                multiplies,
                config.alu.max_outputs,
                0,
            ) {
                return Err(SimError::CapabilityViolated {
                    cycle: cycle_index,
                    pp: alu.pp,
                    reason,
                });
            }
        }
        // Memory ports.
        let mut mem_accesses: HashMap<(usize, fpfa_arch::MemId), usize> = HashMap::new();
        for mv in &cycle.moves {
            *mem_accesses.entry((mv.src.pp, mv.src.mem)).or_insert(0) += 1;
        }
        for wb in &cycle.writebacks {
            *mem_accesses.entry((wb.dest.pp, wb.dest.mem)).or_insert(0) += 1;
        }
        for ((pp, mem), used) in &mem_accesses {
            if *used > config.mem_ports {
                return Err(SimError::Arch {
                    cycle: cycle_index,
                    source: ArchError::PortConflict {
                        resource: format!("pp{pp}.{mem}"),
                        requested: *used,
                        available: config.mem_ports,
                    },
                });
            }
        }
        // Crossbar buses.
        let transfers = cycle.moves.iter().filter(|m| m.via_crossbar).count()
            + cycle.writebacks.iter().filter(|w| w.via_crossbar).count();
        if transfers > config.crossbar_buses {
            return Err(SimError::Arch {
                cycle: cycle_index,
                source: ArchError::CrossbarOversubscribed {
                    requested: transfers,
                    available: config.crossbar_buses,
                },
            });
        }
        // Register-bank write ports.
        let mut bank_writes: HashMap<(usize, fpfa_arch::RegBankName), usize> = HashMap::new();
        for mv in &cycle.moves {
            *bank_writes.entry((mv.dst.pp, mv.dst.bank)).or_insert(0) += 1;
        }
        for ((pp, bank), used) in &bank_writes {
            if *used > config.regbank_write_ports {
                return Err(SimError::Arch {
                    cycle: cycle_index,
                    source: ArchError::PortConflict {
                        resource: format!("pp{pp}.{bank}"),
                        requested: *used,
                        available: config.regbank_write_ports,
                    },
                });
            }
        }
        Ok(())
    }
}

pub(crate) fn eval_op(kind: OpKind, operands: &[i64]) -> Option<i64> {
    match kind {
        OpKind::Bin(op) => op.eval(operands[0], operands[1]),
        OpKind::Un(op) => Some(op.eval(operands[0])),
        OpKind::Mux => Some(if operands[0] != 0 {
            operands[1]
        } else {
            operands[2]
        }),
    }
}

pub(crate) fn read_mem(tile: &Tile, mem: MemRef, cycle: usize) -> Result<i64, SimError> {
    tile.pp(mem.pp)
        .and_then(|pp| pp.memory(mem.mem))
        .and_then(|m| m.read(mem.offset))
        .map_err(|source| SimError::Arch { cycle, source })
}

pub(crate) fn write_mem(
    tile: &mut Tile,
    mem: MemRef,
    value: i64,
    cycle: usize,
) -> Result<(), SimError> {
    tile.pp_mut(mem.pp)
        .and_then(|pp| pp.memory_mut(mem.mem))
        .and_then(|m| m.write(mem.offset, value))
        .map_err(|source| SimError::Arch { cycle, source })
}

pub(crate) fn read_reg(tile: &Tile, reg: RegRef, cycle: usize) -> Result<i64, SimError> {
    tile.pp(reg.pp)
        .and_then(|pp| pp.bank(reg.bank))
        .and_then(|b| b.read(reg.index))
        .map_err(|source| SimError::Arch { cycle, source })
}

pub(crate) fn write_reg(
    tile: &mut Tile,
    reg: RegRef,
    value: i64,
    cycle: usize,
) -> Result<(), SimError> {
    tile.pp_mut(reg.pp)
        .and_then(|pp| pp.bank_mut(reg.bank))
        .and_then(|b| b.write(reg.index, value))
        .map_err(|source| SimError::Arch { cycle, source })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfa_core::pipeline::Mapper;

    const FIR: &str = r#"
        void main() {
            int a[4];
            int c[4];
            int sum;
            int i;
            sum = 0; i = 0;
            while (i < 4) { sum = sum + a[i] * c[i]; i = i + 1; }
        }
    "#;

    fn fir_inputs() -> SimInputs {
        SimInputs::new()
            .array(0, &[1, 2, 3, 4])
            .array(4, &[10, 20, 30, 40])
    }

    #[test]
    fn executes_the_fir_kernel_correctly() {
        let mapping = Mapper::new().map_source(FIR).unwrap();
        let outcome = Simulator::new(&mapping.program).run(&fir_inputs()).unwrap();
        assert_eq!(outcome.scalar("sum"), Some(10 + 40 + 90 + 160));
        assert_eq!(outcome.scalar("i"), Some(4));
        assert_eq!(
            outcome.counts.cycles as usize,
            mapping.program.cycle_count()
        );
        assert!(outcome.counts.alu_ops >= 7);
        assert!(!outcome.trace.is_empty());
    }

    #[test]
    fn missing_array_data_is_reported() {
        let mapping = Mapper::new().map_source(FIR).unwrap();
        let err = Simulator::new(&mapping.program)
            .run(&SimInputs::new())
            .unwrap_err();
        assert!(matches!(err, SimError::MissingInput { .. }));
    }

    #[test]
    fn scalar_inputs_are_passed_by_name() {
        let src = "void main() { int n; int r; r = n * 3 + 1; }";
        let mapping = Mapper::new().map_source(src).unwrap();
        let outcome = Simulator::new(&mapping.program)
            .run(&SimInputs::new().scalar("n", 13))
            .unwrap();
        assert_eq!(outcome.scalar("r"), Some(40));
        let err = Simulator::new(&mapping.program)
            .run(&SimInputs::new())
            .unwrap_err();
        assert!(matches!(err, SimError::MissingInput { .. }));
    }

    #[test]
    fn statespace_writes_appear_in_the_final_state() {
        let src = r#"
            void main() {
                int x[4];
                int y[4];
                int i;
                i = 0;
                while (i < 4) { y[i] = x[i] * x[i]; i = i + 1; }
            }
        "#;
        let mapping = Mapper::new().map_source(src).unwrap();
        let inputs = SimInputs::new().array(0, &[1, 2, 3, 4]);
        let outcome = Simulator::new(&mapping.program).run(&inputs).unwrap();
        let y_base = mapping.layout.array("y").unwrap().base;
        for i in 0..4i64 {
            assert_eq!(
                outcome.final_statespace.fetch(y_base + i),
                Some((i + 1) * (i + 1))
            );
        }
        // Inputs are unchanged.
        assert_eq!(outcome.final_statespace.fetch(0), Some(1));
    }

    #[test]
    fn event_counts_feed_the_energy_model() {
        let mapping = Mapper::new().map_source(FIR).unwrap();
        let outcome = Simulator::new(&mapping.program).run(&fir_inputs()).unwrap();
        let energy = outcome.energy(&EnergyModel::default_model());
        assert!(energy.total > 0.0);
        assert!(outcome.counts.mem_reads > 0);
        assert!(outcome.counts.reg_writes >= outcome.counts.mem_reads);
    }

    #[test]
    fn structural_checks_can_be_disabled() {
        let mapping = Mapper::new().map_source(FIR).unwrap();
        let outcome = Simulator::new(&mapping.program)
            .without_structural_checks()
            .run(&fir_inputs())
            .unwrap();
        assert_eq!(outcome.scalar("sum"), Some(10 + 40 + 90 + 160));
    }
}
