//! Execution traces: what the tile did in every cycle.

use std::fmt;

/// Summary of one executed cycle.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CycleTrace {
    /// Cycle index.
    pub cycle: usize,
    /// Number of register loads performed.
    pub moves: usize,
    /// Number of busy ALUs.
    pub busy_alus: usize,
    /// Number of ALU micro-operations executed.
    pub alu_ops: usize,
    /// Number of results written back to memory.
    pub writebacks: usize,
    /// Number of crossbar transfers.
    pub crossbar_transfers: usize,
}

/// A whole-program execution trace.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    /// Per-cycle summaries in execution order.
    pub cycles: Vec<CycleTrace>,
}

impl Trace {
    /// Number of traced cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// `true` when nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Number of cycles in which no ALU was busy (pure load/stall cycles).
    pub fn idle_alu_cycles(&self) -> usize {
        self.cycles.iter().filter(|c| c.busy_alus == 0).count()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycle  moves  alus  ops  stores  xbar")?;
        for c in &self.cycles {
            writeln!(
                f,
                "{:5}  {:5}  {:4}  {:3}  {:6}  {:4}",
                c.cycle, c.moves, c.busy_alus, c.alu_ops, c.writebacks, c.crossbar_transfers
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cycle_counting() {
        let trace = Trace {
            cycles: vec![
                CycleTrace {
                    cycle: 0,
                    moves: 2,
                    busy_alus: 0,
                    ..CycleTrace::default()
                },
                CycleTrace {
                    cycle: 1,
                    busy_alus: 3,
                    alu_ops: 5,
                    ..CycleTrace::default()
                },
            ],
        };
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.idle_alu_cycles(), 1);
        assert!(trace.to_string().contains("cycle"));
    }
}
