//! The `simulate` stage: plugs the cycle-accurate simulator into the staged
//! flow engine of `fpfa-core`, so a mapping flow can end with an execution
//! on the tile model and the simulation time shows up in the same per-stage
//! instrumentation as the mapping phases.

use crate::exec::{SimInputs, SimOutcome, Simulator};
use crate::multi::MultiSimulator;
use fpfa_core::flow::{FlowContext, Stage};
use fpfa_core::pipeline::MappingResult;
use fpfa_core::MapError;

/// A finished mapping together with its simulated execution.
#[derive(Clone, PartialEq, Debug)]
pub struct SimulatedMapping {
    /// The mapping the simulation ran on.
    pub mapping: MappingResult,
    /// Scalar outputs and architectural event counts of the run.
    pub outcome: SimOutcome,
}

/// Runs the allocated tile program on the cycle-accurate simulator
/// (stage `simulate`).
#[derive(Clone, Debug, Default)]
pub struct SimulateStage {
    inputs: SimInputs,
}

impl SimulateStage {
    /// Simulates with the given inputs.
    pub fn new(inputs: SimInputs) -> Self {
        SimulateStage { inputs }
    }
}

impl Stage<MappingResult, SimulatedMapping> for SimulateStage {
    fn name(&self) -> &'static str {
        "simulate"
    }

    fn run(
        &self,
        input: MappingResult,
        cx: &mut FlowContext,
    ) -> Result<SimulatedMapping, MapError> {
        // Multi-tile mappings carry the whole array program in `multi`
        // (`input.program` is only tile 0's slice), so they must run on the
        // array simulator.
        let outcome = match &input.multi {
            Some(multi) => MultiSimulator::new(&multi.program).run(&self.inputs),
            None => Simulator::new(&input.program).run(&self.inputs),
        }
        .map_err(|error| MapError::Simulation {
            reason: error.to_string(),
        })?;
        cx.info(
            self.name(),
            format!(
                "{} cycles, {} alu ops, {}/{} mem r/w",
                outcome.counts.cycles,
                outcome.counts.alu_ops,
                outcome.counts.mem_reads,
                outcome.counts.mem_writes
            ),
        );
        Ok(SimulatedMapping {
            mapping: input,
            outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfa_core::flow::StageExt;
    use fpfa_core::pipeline::Mapper;

    #[test]
    fn simulate_stage_records_timing_and_matches_direct_simulation() {
        let mapper = Mapper::new();
        let mapping = mapper
            .map_source("void main() { int a[2]; int r; r = a[0] * a[1]; }")
            .unwrap();

        let inputs = SimInputs::new().array(0, &[6, 7]);
        let stage = SimulateStage::new(inputs.clone());
        let mut cx = mapper.flow_context();
        let simulated = fpfa_core::flow::run_timed(&stage, mapping.clone(), &mut cx).unwrap();

        assert_eq!(simulated.outcome.scalar("r"), Some(42));
        assert!(cx.wall_of("simulate").is_some());

        let direct = Simulator::new(&mapping.program).run(&inputs).unwrap();
        assert_eq!(direct.scalars, simulated.outcome.scalars);
    }

    #[test]
    fn simulate_stage_dispatches_multi_tile_mappings_to_the_array_simulator() {
        let source = r#"
            void main() {
                int a[8];
                int c[8];
                int sum;
                int i;
                sum = 0; i = 0;
                while (i < 8) { sum = sum + a[i] * c[i]; i = i + 1; }
            }
        "#;
        let mapper = Mapper::new().with_tiles(4);
        let mapping = mapper.map_source(source).unwrap();
        assert!(mapping.multi.is_some());

        let inputs = SimInputs::new()
            .array(0, &[1, 2, 3, 4, 5, 6, 7, 8])
            .array(8, &[1, 1, 1, 1, 1, 1, 1, 1]);
        let stage = SimulateStage::new(inputs);
        let mut cx = mapper.flow_context();
        let simulated = fpfa_core::flow::run_timed(&stage, mapping, &mut cx).unwrap();
        assert_eq!(simulated.outcome.scalar("sum"), Some(36));
        assert!(cx.wall_of("simulate").is_some());
    }

    /// A test stage mapping source to a finished mapping, so the simulate
    /// stage can be composed into a cross-crate chain.
    struct MapStage(Mapper);

    impl Stage<&'static str, MappingResult> for MapStage {
        fn name(&self) -> &'static str {
            "map"
        }
        fn run(
            &self,
            input: &'static str,
            _cx: &mut FlowContext,
        ) -> Result<MappingResult, MapError> {
            self.0.map_source(input)
        }
    }

    #[test]
    fn simulate_stage_composes_into_a_cross_crate_chain() {
        let mapper = Mapper::new();
        let flow =
            MapStage(mapper.clone()).then(SimulateStage::new(SimInputs::new().array(0, &[3, 4])));
        let mut cx = mapper.flow_context();
        let simulated = fpfa_core::flow::FlowDriver::new()
            .run(
                &flow,
                "void main() { int a[2]; int r; r = a[0] + a[1]; }",
                &mut cx,
            )
            .unwrap();
        assert_eq!(simulated.outcome.scalar("r"), Some(7));
        // Both chained stages were timed individually.
        assert!(cx.wall_of("map").is_some());
        assert!(cx.wall_of("simulate").is_some());
    }
}
