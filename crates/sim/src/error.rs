//! Error type for the simulator.

use fpfa_arch::ArchError;
use fpfa_core::OpId;
use std::fmt;

/// Errors raised while executing a tile program.
#[derive(Clone, PartialEq, Debug)]
pub enum SimError {
    /// A structural tile constraint was violated at run time (ports, buses,
    /// invalid references, uninitialised reads).
    Arch {
        /// The cycle at which the violation happened.
        cycle: usize,
        /// The underlying architectural error.
        source: ArchError,
    },
    /// Two ALU jobs target the same processing part in the same cycle.
    AluConflict {
        /// The cycle at which the conflict happened.
        cycle: usize,
        /// The contested processing part.
        pp: usize,
    },
    /// An ALU cluster violates the ALU data-path capability.
    CapabilityViolated {
        /// The cycle at which the violation happened.
        cycle: usize,
        /// The contested processing part.
        pp: usize,
        /// Why the cluster does not fit.
        reason: String,
    },
    /// A kernel input required by the pre-load image was not provided.
    MissingInput {
        /// Description of the missing input.
        what: String,
    },
    /// A write-back refers to an operation whose result was never computed.
    MissingResult {
        /// The cycle of the write-back.
        cycle: usize,
        /// The operation.
        op: OpId,
    },
    /// Division (or remainder) by zero during ALU execution.
    DivisionByZero {
        /// The cycle of the offending operation.
        cycle: usize,
        /// The operation.
        op: OpId,
    },
    /// An internal operand referenced a micro-op that has not executed yet.
    BadInternalOperand {
        /// The cycle of the offending operation.
        cycle: usize,
        /// The operation.
        op: OpId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Arch { cycle, source } => write!(f, "cycle {cycle}: {source}"),
            SimError::AluConflict { cycle, pp } => {
                write!(f, "cycle {cycle}: two clusters assigned to pp{pp}")
            }
            SimError::CapabilityViolated { cycle, pp, reason } => {
                write!(
                    f,
                    "cycle {cycle}: cluster on pp{pp} exceeds the ALU data-path: {reason}"
                )
            }
            SimError::MissingInput { what } => write!(f, "missing kernel input: {what}"),
            SimError::MissingResult { cycle, op } => {
                write!(
                    f,
                    "cycle {cycle}: write-back of {op} before it was computed"
                )
            }
            SimError::DivisionByZero { cycle, op } => {
                write!(f, "cycle {cycle}: division by zero in {op}")
            }
            SimError::BadInternalOperand { cycle, op } => {
                write!(
                    f,
                    "cycle {cycle}: {op} reads an internal operand that has not executed"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Arch { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::Arch {
            cycle: 3,
            source: ArchError::UnknownPp(9),
        };
        assert!(e.to_string().contains("cycle 3"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(SimError::AluConflict { cycle: 1, pp: 2 }
            .to_string()
            .contains("pp2"));
    }
}
