//! Cycle-by-cycle execution of a multi-tile program on an FPFA tile array.
//!
//! All tiles advance in lock-step on one global clock. Each global cycle
//!
//! 1. words departing over the inter-tile interconnect are read from their
//!    source tile's memory (the allocator guarantees the write-back happened
//!    in an earlier cycle) and enter the in-flight buffer;
//! 2. every tile executes its own [`CycleJob`](fpfa_core::CycleJob) — moves,
//!    ALU clusters, write-backs — exactly like the single-tile simulator;
//! 3. words whose [`TransferJob::arrive`](fpfa_core::multi::TransferJob::arrive)
//!    cycle is reached are written into their destination tile's memory
//!    (readable from the next cycle on).
//!
//! Structural checks cover each tile's ports/buses/ALU capability *and* the
//! interconnect's per-cycle link budget.

use crate::error::SimError;
use crate::exec::{check_cycle, execute_cycle, read_mem, write_mem, SimInputs, SimOutcome};
use crate::trace::{CycleTrace, Trace};
use fpfa_arch::{ArchError, EventCounts, TileArray};
use fpfa_core::multi::MultiTileProgram;
use fpfa_core::program::Location;
use fpfa_core::{OpId, ValueRef};
use std::collections::HashMap;

/// The cycle-accurate simulator for a whole tile array.
#[derive(Debug)]
pub struct MultiSimulator<'p> {
    program: &'p MultiTileProgram,
    check_structure: bool,
}

impl<'p> MultiSimulator<'p> {
    /// Creates a simulator for a multi-tile program.
    pub fn new(program: &'p MultiTileProgram) -> Self {
        MultiSimulator {
            program,
            check_structure: true,
        }
    }

    /// Disables the per-cycle structural re-checks.
    pub fn without_structural_checks(mut self) -> Self {
        self.check_structure = false;
        self
    }

    /// Executes the program on the array.
    ///
    /// # Errors
    /// Returns a [`SimError`] when an input is missing, a structural
    /// constraint (including the inter-tile link budget) is violated, or the
    /// program reads values that were never produced.
    pub fn run(&self, inputs: &SimInputs) -> Result<SimOutcome, SimError> {
        let program = self.program;
        let tile_config = program
            .tiles
            .first()
            .map(|tile| tile.config)
            .unwrap_or_default();
        let mut array = TileArray::new(tile_config, program.array)
            .map_err(|source| SimError::Arch { cycle: 0, source })?;
        let mut counts = EventCounts::default();
        let mut trace = Trace::default();
        let mut results: HashMap<OpId, i64> = HashMap::new();

        // ------------------------------------------------------------------
        // Pre-load every tile's kernel inputs.
        // ------------------------------------------------------------------
        // Inputs replicated beyond their home tile cross the interconnect
        // while the statespace is loaded; count those words so the
        // simulator's transfer count and energy agree with the allocator's
        // traffic report.
        counts.inter_tile_transfers += program.traffic.input_broadcasts.len() as u64;
        for (tile_id, tile_program) in program.tiles.iter().enumerate() {
            for (value, home) in &tile_program.preload {
                let word =
                    match value {
                        ValueRef::Const(c) => *c,
                        ValueRef::MemWord(addr) => {
                            inputs.statespace.fetch(*addr).ok_or_else(|| {
                                SimError::MissingInput {
                                    what: format!("statespace word at address {addr}"),
                                }
                            })?
                        }
                        ValueRef::ScalarInput(index) => {
                            let name = tile_program.scalar_input_name(*index as usize).ok_or_else(
                                || SimError::MissingInput {
                                    what: format!("scalar input #{index}"),
                                },
                            )?;
                            *inputs
                                .scalars
                                .get(name)
                                .ok_or_else(|| SimError::MissingInput {
                                    what: format!("scalar input `{name}`"),
                                })?
                        }
                        ValueRef::Op(op) => {
                            return Err(SimError::MissingInput {
                                what: format!("pre-load of computed value {op}"),
                            })
                        }
                    };
                let tile = array
                    .tile_mut(tile_id)
                    .map_err(|source| SimError::Arch { cycle: 0, source })?;
                write_mem(tile, *home, word, 0)?;
            }
        }

        // Transfers grouped by departure and arrival cycle.
        let mut departing: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut arriving: HashMap<usize, Vec<usize>> = HashMap::new();
        for (index, transfer) in program.transfers.iter().enumerate() {
            departing.entry(transfer.depart).or_default().push(index);
            arriving.entry(transfer.arrive).or_default().push(index);
        }
        let mut in_flight: HashMap<usize, i64> = HashMap::new();

        // ------------------------------------------------------------------
        // Global cycle loop.
        // ------------------------------------------------------------------
        let total_cycles = program.cycle_count();
        for cycle_index in 0..total_cycles {
            let mut cycle_trace = CycleTrace {
                cycle: cycle_index,
                ..CycleTrace::default()
            };

            // 1. Departures: read the source words into the in-flight buffer.
            if let Some(indices) = departing.get(&cycle_index) {
                if self.check_structure && indices.len() > program.array.links_per_cycle {
                    return Err(SimError::Arch {
                        cycle: cycle_index,
                        source: ArchError::InterconnectOversubscribed {
                            requested: indices.len(),
                            available: program.array.links_per_cycle,
                        },
                    });
                }
                for &index in indices {
                    let transfer = &program.transfers[index];
                    let tile = array.tile(transfer.from).map_err(|source| SimError::Arch {
                        cycle: cycle_index,
                        source,
                    })?;
                    let word = read_mem(tile, transfer.src, cycle_index)?;
                    in_flight.insert(index, word);
                    counts.mem_reads += 1;
                }
            }

            // 2. Every tile executes its own jobs for this cycle.
            for (tile_id, tile_program) in program.tiles.iter().enumerate() {
                let cycle = &tile_program.cycles[cycle_index];
                if self.check_structure {
                    check_cycle(&tile_program.config, cycle_index, cycle)?;
                }
                let tile = array.tile_mut(tile_id).map_err(|source| SimError::Arch {
                    cycle: cycle_index,
                    source,
                })?;
                execute_cycle(
                    tile,
                    cycle_index,
                    cycle,
                    &mut results,
                    &mut counts,
                    &mut cycle_trace,
                )?;
            }

            // 3. Arrivals: commit in-flight words to the destination tiles.
            if let Some(indices) = arriving.get(&cycle_index) {
                for &index in indices {
                    let transfer = &program.transfers[index];
                    let word = in_flight.remove(&index).ok_or(SimError::MissingResult {
                        cycle: cycle_index,
                        op: transfer.op,
                    })?;
                    let tile = array
                        .tile_mut(transfer.to)
                        .map_err(|source| SimError::Arch {
                            cycle: cycle_index,
                            source,
                        })?;
                    write_mem(tile, transfer.dst, word, cycle_index)?;
                    counts.mem_writes += 1;
                    counts.inter_tile_transfers += 1;
                }
            }

            counts.cycles += 1;
            trace.cycles.push(cycle_trace);
        }

        // ------------------------------------------------------------------
        // Read back outputs.
        // ------------------------------------------------------------------
        let mut scalars = HashMap::new();
        for (name, tile_id, location) in &program.scalar_outputs {
            let value = match location {
                Location::Constant(c) => *c,
                Location::Mem(mem) => {
                    let tile = array.tile(*tile_id).map_err(|source| SimError::Arch {
                        cycle: total_cycles,
                        source,
                    })?;
                    read_mem(tile, *mem, total_cycles)?
                }
                Location::Reg(reg) => {
                    let tile = array.tile(*tile_id).map_err(|source| SimError::Arch {
                        cycle: total_cycles,
                        source,
                    })?;
                    crate::exec::read_reg(tile, *reg, total_cycles)?
                }
            };
            scalars.insert(name.clone(), value);
        }

        let mut final_statespace = inputs.statespace.clone();
        for (addr, (tile_id, home)) in &program.statespace_map {
            let tile = array.tile(*tile_id).map_err(|source| SimError::Arch {
                cycle: total_cycles,
                source,
            })?;
            let value = read_mem(tile, *home, total_cycles)?;
            final_statespace.store(*addr, value);
        }

        Ok(SimOutcome {
            scalars,
            final_statespace,
            counts,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfa_core::pipeline::Mapper;

    const FIR: &str = r#"
        void main() {
            int a[8];
            int c[8];
            int sum;
            int i;
            sum = 0; i = 0;
            while (i < 8) { sum = sum + a[i] * c[i]; i = i + 1; }
        }
    "#;

    fn fir_inputs() -> SimInputs {
        SimInputs::new()
            .array(0, &[1, 2, 3, 4, 5, 6, 7, 8])
            .array(8, &[10, 20, 30, 40, 50, 60, 70, 80])
    }

    fn expected_sum() -> i64 {
        (1..=8).map(|i| i * i * 10).sum()
    }

    #[test]
    fn multi_tile_fir_computes_the_same_sum() {
        let mapping = Mapper::new().with_tiles(4).map_source(FIR).unwrap();
        let multi = mapping.multi.as_ref().expect("multi-tile mapping");
        let outcome = MultiSimulator::new(&multi.program)
            .run(&fir_inputs())
            .unwrap();
        assert_eq!(outcome.scalar("sum"), Some(expected_sum()));
        assert_eq!(outcome.counts.cycles as usize, multi.program.cycle_count());
    }

    #[test]
    fn inter_tile_transfers_are_counted_and_cost_energy() {
        let mapping = Mapper::new().with_tiles(4).map_source(FIR).unwrap();
        let multi = mapping.multi.as_ref().unwrap();
        let outcome = MultiSimulator::new(&multi.program)
            .run(&fir_inputs())
            .unwrap();
        // The simulator's count matches the allocator's accounting: one per
        // executed transfer plus one per pre-execution input broadcast.
        assert_eq!(
            outcome.counts.inter_tile_transfers as usize,
            multi.program.transfers.len() + multi.program.traffic.input_broadcasts.len()
        );
        assert_eq!(
            outcome.counts.inter_tile_transfers as usize,
            multi.program.stats.inter_tile_transfers
        );
        if multi.program.transfers.is_empty() {
            return;
        }
        // The same kernel on one tile moves nothing between tiles.
        let single = Mapper::new().map_source(FIR).unwrap();
        let single_outcome = crate::exec::Simulator::new(&single.program)
            .run(&fir_inputs())
            .unwrap();
        assert_eq!(single_outcome.counts.inter_tile_transfers, 0);
    }

    #[test]
    fn missing_inputs_are_reported() {
        let mapping = Mapper::new().with_tiles(2).map_source(FIR).unwrap();
        let multi = mapping.multi.as_ref().unwrap();
        let err = MultiSimulator::new(&multi.program)
            .run(&SimInputs::new())
            .unwrap_err();
        assert!(matches!(err, SimError::MissingInput { .. }));
    }

    #[test]
    fn structural_checks_can_be_disabled() {
        let mapping = Mapper::new().with_tiles(3).map_source(FIR).unwrap();
        let multi = mapping.multi.as_ref().unwrap();
        let outcome = MultiSimulator::new(&multi.program)
            .without_structural_checks()
            .run(&fir_inputs())
            .unwrap();
        assert_eq!(outcome.scalar("sum"), Some(expected_sum()));
    }
}
