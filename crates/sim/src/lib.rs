//! Cycle-accurate simulator for one FPFA processor tile.
//!
//! The paper evaluates its mapping flow on the FPFA hardware (and its VHDL
//! model), neither of which is available. This crate is the substitute
//! substrate: it executes a [`TileProgram`](fpfa_core::TileProgram) cycle by
//! cycle on the structural tile model of `fpfa-arch`,
//!
//! * re-checking every structural constraint the allocator must respect
//!   (one cluster per ALU per cycle, ALU data-path limits, memory ports,
//!   register-bank write ports, crossbar buses),
//! * counting architectural events (ALU operations, register and memory
//!   accesses, crossbar transfers) for the energy model,
//! * producing the kernel's outputs so they can be compared with the CDFG
//!   reference interpreter ([`equivalence`]).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fpfa_core::pipeline::Mapper;
//! use fpfa_sim::{SimInputs, Simulator};
//!
//! let mapping = Mapper::new().map_source(
//!     "void main() { int a[2]; int r; r = a[0] * a[1]; }",
//! )?;
//! let mut inputs = SimInputs::new();
//! inputs.statespace.store_array(0, &[6, 7]);
//! let outcome = Simulator::new(&mapping.program).run(&inputs)?;
//! assert_eq!(outcome.scalar("r"), Some(42));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equivalence;
pub mod error;
pub mod exec;
pub mod flow;
pub mod multi;
pub mod trace;

pub use equivalence::{check_against_cdfg, check_multi_against_cdfg, EquivalenceReport};
pub use error::SimError;
pub use exec::{SimInputs, SimOutcome, Simulator};
pub use flow::{SimulateStage, SimulatedMapping};
pub use multi::MultiSimulator;
pub use trace::{CycleTrace, Trace};
