//! Functional equivalence checking between the mapped program and the CDFG.
//!
//! The mapping flow is only useful when the tile computes exactly what the
//! source program computes. This module runs the CDFG reference interpreter
//! and the cycle-accurate simulator on the same inputs and compares every
//! scalar output and the final statespace.

use crate::error::SimError;
use crate::exec::{SimInputs, SimOutcome, Simulator};
use crate::multi::MultiSimulator;
use fpfa_cdfg::interp::Interpreter;
use fpfa_cdfg::{Cdfg, Value};
use fpfa_core::multi::MultiTileProgram;
use fpfa_core::TileProgram;
use std::fmt;

/// The result of one equivalence check.
#[derive(Clone, PartialEq, Debug)]
pub struct EquivalenceReport {
    /// Differences found (empty when the behaviours match).
    pub mismatches: Vec<String>,
    /// The simulation outcome (for further inspection).
    pub outcome: SimOutcome,
}

impl EquivalenceReport {
    /// `true` when the mapped program matches the CDFG semantics.
    pub fn is_equivalent(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_equivalent() {
            write!(f, "mapped program matches the CDFG semantics")
        } else {
            writeln!(f, "{} mismatches:", self.mismatches.len())?;
            for m in &self.mismatches {
                writeln!(f, "  {m}")?;
            }
            Ok(())
        }
    }
}

/// Errors raised by the equivalence checker.
#[derive(Clone, PartialEq, Debug)]
pub enum EquivalenceError {
    /// The reference interpreter failed.
    Interpreter(fpfa_cdfg::CdfgError),
    /// The simulator failed.
    Simulator(SimError),
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceError::Interpreter(e) => write!(f, "reference interpreter failed: {e}"),
            EquivalenceError::Simulator(e) => write!(f, "simulator failed: {e}"),
        }
    }
}

impl std::error::Error for EquivalenceError {}

/// Runs the CDFG interpreter and the tile simulator on the same inputs and
/// compares their results.
///
/// The CDFG is expected to use the frontend conventions: the statespace flows
/// through the `mem` input/output and scalar inputs are bound by name.
///
/// # Errors
/// Returns [`EquivalenceError`] when either execution fails; behavioural
/// differences are reported through [`EquivalenceReport::mismatches`], not as
/// errors.
pub fn check_against_cdfg(
    cdfg: &Cdfg,
    program: &TileProgram,
    inputs: &SimInputs,
) -> Result<EquivalenceReport, EquivalenceError> {
    let reference = reference_run(cdfg, inputs)?;
    let outcome = Simulator::new(program)
        .run(inputs)
        .map_err(EquivalenceError::Simulator)?;
    Ok(diff_against_reference(&reference, outcome))
}

/// Multi-tile variant of [`check_against_cdfg`]: executes the whole array
/// program (inter-tile transfer latency modeled) and compares the result
/// against the CDFG reference interpreter.
///
/// # Errors
/// Returns [`EquivalenceError`] when either execution fails; behavioural
/// differences are reported through [`EquivalenceReport::mismatches`], not as
/// errors.
pub fn check_multi_against_cdfg(
    cdfg: &Cdfg,
    program: &MultiTileProgram,
    inputs: &SimInputs,
) -> Result<EquivalenceReport, EquivalenceError> {
    let reference = reference_run(cdfg, inputs)?;
    let outcome = MultiSimulator::new(program)
        .run(inputs)
        .map_err(EquivalenceError::Simulator)?;
    Ok(diff_against_reference(&reference, outcome))
}

/// Runs the CDFG reference interpreter on the simulation inputs.
fn reference_run(
    cdfg: &Cdfg,
    inputs: &SimInputs,
) -> Result<fpfa_cdfg::interp::RunResult, EquivalenceError> {
    let mut interp = Interpreter::new(cdfg);
    interp.bind("mem", Value::State(inputs.statespace.clone()));
    for (name, value) in &inputs.scalars {
        interp.bind(name.clone(), Value::Word(*value));
    }
    interp.run().map_err(EquivalenceError::Interpreter)
}

/// Diffs a simulation outcome against the reference interpretation.
fn diff_against_reference(
    reference: &fpfa_cdfg::interp::RunResult,
    outcome: SimOutcome,
) -> EquivalenceReport {
    let mut mismatches = Vec::new();
    for (name, value) in reference.sorted() {
        match value {
            Value::Word(expected) => match outcome.scalar(name) {
                Some(actual) if actual == *expected => {}
                Some(actual) => mismatches.push(format!(
                    "scalar `{name}`: interpreter {expected}, simulator {actual}"
                )),
                None => mismatches.push(format!(
                    "scalar `{name}`: interpreter {expected}, simulator produced nothing"
                )),
            },
            Value::State(expected) => {
                if *expected != outcome.final_statespace {
                    // Report the first few differing addresses for debugging.
                    let mut detail = Vec::new();
                    for (addr, value) in expected.iter() {
                        if outcome.final_statespace.fetch(addr) != Some(value) {
                            detail.push(format!(
                                "mem[{addr}]: interpreter {value}, simulator {:?}",
                                outcome.final_statespace.fetch(addr)
                            ));
                        }
                        if detail.len() >= 4 {
                            break;
                        }
                    }
                    for (addr, value) in outcome.final_statespace.iter() {
                        if expected.fetch(addr).is_none() {
                            detail.push(format!("mem[{addr}]: simulator wrote spurious {value}"));
                        }
                        if detail.len() >= 8 {
                            break;
                        }
                    }
                    mismatches.push(format!("final statespace differs: {}", detail.join("; ")));
                }
            }
        }
    }
    EquivalenceReport {
        mismatches,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfa_core::pipeline::Mapper;

    #[test]
    fn fir_mapping_is_equivalent_to_the_cdfg() {
        let src = r#"
            void main() {
                int a[6];
                int c[6];
                int sum;
                int i;
                sum = 0; i = 0;
                while (i < 6) { sum = sum + a[i] * c[i]; i = i + 1; }
            }
        "#;
        let mapping = Mapper::new().map_source(src).unwrap();
        let inputs = SimInputs::new()
            .array(0, &[1, -2, 3, -4, 5, -6])
            .array(6, &[7, 8, 9, 10, 11, 12]);
        let report = check_against_cdfg(&mapping.simplified, &mapping.program, &inputs).unwrap();
        assert!(report.is_equivalent(), "{report}");
        assert!(report.to_string().contains("matches"));
    }

    #[test]
    fn array_writing_kernels_are_equivalent() {
        let src = r#"
            void main() {
                int x[5];
                int y[5];
                int i;
                i = 0;
                while (i < 5) { y[i] = (x[i] + 1) * x[i]; i = i + 1; }
            }
        "#;
        let mapping = Mapper::new().map_source(src).unwrap();
        let inputs = SimInputs::new().array(0, &[3, 0, -7, 2, 9]);
        let report = check_against_cdfg(&mapping.simplified, &mapping.program, &inputs).unwrap();
        assert!(report.is_equivalent(), "{report}");
    }

    #[test]
    fn interpreter_failures_are_distinguished_from_mismatches() {
        let src = "void main() { int a[2]; int r; r = a[0] + a[1]; }";
        let mapping = Mapper::new().map_source(src).unwrap();
        // No array contents provided: both engines fail on the missing input.
        let err = check_against_cdfg(&mapping.simplified, &mapping.program, &SimInputs::new())
            .unwrap_err();
        assert!(matches!(err, EquivalenceError::Interpreter(_)));
    }
}
