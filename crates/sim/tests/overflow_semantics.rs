//! Overflow-semantics agreement across the whole stack: constant folding,
//! the CDFG reference interpreter and the cycle-accurate simulator must all
//! produce the same (two's-complement wrapping) results, so that simplified
//! and unsimplified mappings of the same graph cannot diverge.

use fpfa_cdfg::interp::Interpreter;
use fpfa_cdfg::{BinOp, CdfgBuilder, UnOp};
use fpfa_core::pipeline::Mapper;
use fpfa_sim::{check_against_cdfg, SimInputs};

/// Builds `r = (MAX * 2) + (MIN - 1) + (-MIN)`: every operation overflows.
fn overflowing_graph() -> fpfa_cdfg::Cdfg {
    let mut b = CdfgBuilder::new("overflow");
    let max = b.constant(i64::MAX);
    let min = b.constant(i64::MIN);
    let two = b.constant(2);
    let one = b.constant(1);
    let doubled = b.binop(BinOp::Mul, max, two);
    let under = b.binop(BinOp::Sub, min, one);
    let neg_min = b.unop(UnOp::Neg, min);
    let sum = b.binop(BinOp::Add, doubled, under);
    let total = b.binop(BinOp::Add, sum, neg_min);
    b.output("r", total);
    b.finish().expect("graph is well formed")
}

fn interpret(graph: &fpfa_cdfg::Cdfg) -> i64 {
    Interpreter::new(graph)
        .run()
        .expect("interpretation succeeds")
        .word("r")
        .expect("r produced")
}

#[test]
fn const_fold_interpreter_and_simulator_agree_on_wrapping_overflow() {
    let graph = overflowing_graph();
    let reference = interpret(&graph);

    // Constant folding (via the full simplification pipeline) must compute
    // the same wrapped value the interpreter does.
    let simplified = Mapper::new().map_cdfg(&graph).expect("mapping succeeds");
    assert_eq!(interpret(&simplified.simplified), reference);

    // The unsimplified mapping executes the overflowing operations on the
    // simulated ALUs; the equivalence checker compares against the
    // interpreter directly.
    let unsimplified = Mapper::new()
        .without_simplification()
        .map_cdfg(&graph)
        .expect("mapping succeeds without simplification");
    let report = check_against_cdfg(
        &unsimplified.simplified,
        &unsimplified.program,
        &SimInputs::new(),
    )
    .expect("simulation succeeds");
    assert!(
        report.is_equivalent(),
        "simulator diverged from the interpreter on overflow: {report}"
    );
}

#[test]
fn shift_semantics_agree_between_folding_and_simulation() {
    // Shift counts are masked to 0..63 by `BinOp::eval`; both the folded and
    // the simulated path must apply the same mask.
    let mut b = CdfgBuilder::new("shifts");
    let x = b.constant(-7);
    let big_shift = b.constant(67); // masked to 3
    let shl = b.binop(BinOp::Shl, x, big_shift);
    let shr = b.binop(BinOp::Shr, x, big_shift);
    let sum = b.binop(BinOp::Add, shl, shr);
    b.output("r", sum);
    let graph = b.finish().expect("graph is well formed");

    let reference = interpret(&graph);
    assert_eq!(reference, (-7i64 << 3) + (-7i64 >> 3));

    let simplified = Mapper::new().map_cdfg(&graph).expect("mapping succeeds");
    assert_eq!(interpret(&simplified.simplified), reference);

    let unsimplified = Mapper::new()
        .without_simplification()
        .map_cdfg(&graph)
        .expect("mapping succeeds");
    let report = check_against_cdfg(
        &unsimplified.simplified,
        &unsimplified.program,
        &SimInputs::new(),
    )
    .expect("simulation succeeds");
    assert!(report.is_equivalent(), "{report}");
}

#[test]
fn array_addressing_at_extreme_bases_does_not_trap() {
    // `store_array`/`fetch_array` use wrapping address arithmetic; a base
    // near i64::MAX must not abort in debug builds.
    let mut inputs = SimInputs::new();
    inputs.statespace.store_array(i64::MAX - 1, &[1, 2, 3]);
    let read = inputs.statespace.fetch_array(i64::MAX - 1, 3);
    assert_eq!(read, vec![Some(1), Some(2), Some(3)]);
    assert_eq!(inputs.statespace.fetch(i64::MIN), Some(3));
}
