//! Cross-check between the two equivalence oracles: the static verifier
//! (`fpfa-verify`, translation validation over the finished mapping) and
//! the dynamic one (the cycle-accurate simulator diffed against the CDFG
//! reference interpreter).  A mapping the verifier passes must also
//! simulate equivalently, and a mutation the verifier rejects for a
//! *semantic* defect must not be vouched for by the simulator either.

use fpfa_core::pipeline::Mapper;
use fpfa_sim::{check_against_cdfg, check_multi_against_cdfg, SimInputs};
use fpfa_verify::{Mutation, Verifier};
use fpfa_workloads::Kernel;

fn inputs_for(kernel: &Kernel, mapping: &fpfa_core::MappingResult) -> SimInputs {
    let mut inputs = SimInputs::new();
    for (name, values) in &kernel.arrays {
        let sym = mapping.layout.array(name).expect("array in layout");
        inputs.statespace.store_array(sym.base, values);
    }
    for (name, value) in &kernel.scalars {
        inputs.scalars.insert(name.clone(), *value);
    }
    inputs
}

#[test]
fn statically_verified_mappings_also_simulate_equivalently() {
    for tiles in [1usize, 4] {
        let mapper = Mapper::new().with_tiles(tiles);
        let verifier = Verifier::for_mapper(&mapper);
        for kernel in fpfa_workloads::registry() {
            let mapping = mapper.map_source(&kernel.source).expect("registry maps");
            let report = verifier.verify(&mapping);
            assert!(
                report.is_clean(),
                "`{}` on {tiles} tile(s) fails static verification:\n{report}",
                kernel.name
            );
            let inputs = inputs_for(&kernel, &mapping);
            let equivalence = match mapping.multi.as_deref() {
                Some(multi) => {
                    check_multi_against_cdfg(&mapping.simplified, &multi.program, &inputs)
                }
                None => check_against_cdfg(&mapping.simplified, &mapping.program, &inputs),
            }
            .expect("both oracles execute");
            assert!(
                equivalence.is_equivalent(),
                "`{}` on {tiles} tile(s): the verifier passed a mapping the \
                 simulator rejects — {equivalence}",
                kernel.name
            );
        }
    }
}

#[test]
fn a_dropped_transfer_is_caught_by_both_oracles() {
    // Seed the one mutation class whose defect is observable dynamically
    // (missing inter-tile data): the static verifier must flag it as FV009
    // and the simulator must not certify the mutant as equivalent.
    let kernel = fpfa_workloads::fir(64);
    let mapper = Mapper::new().with_tiles(4);
    let mut mapping = mapper.map_source(&kernel.source).expect("fir64 maps");
    Mutation::DropTransfer
        .apply(&mut mapping)
        .expect("a 4-tile fir64 mapping has transfers");

    let report = Verifier::for_mapper(&mapper).verify(&mapping);
    assert!(report.has_rule("FV009"), "static oracle missed:\n{report}");

    let inputs = inputs_for(&kernel, &mapping);
    let multi = mapping.multi.as_deref().expect("multi-tile result");
    let dynamically_ok = check_multi_against_cdfg(&mapping.simplified, &multi.program, &inputs)
        .map(|equivalence| equivalence.is_equivalent())
        .unwrap_or(false);
    assert!(
        !dynamically_ok,
        "the simulator certified a mapping with a dropped transfer"
    );
}
