//! Cross-crate integration tests: every workload kernel, mapped by every
//! mapper variant, must execute on the simulator with exactly the semantics
//! of the CDFG reference interpreter, and the simulator's event counts must
//! be internally consistent.

use fpfa_core::baseline;
use fpfa_core::pipeline::Mapper;
use fpfa_sim::{check_against_cdfg, SimInputs, Simulator};
use fpfa_workloads::Kernel;

fn inputs_for(kernel: &Kernel, mapping: &fpfa_core::MappingResult) -> SimInputs {
    let mut inputs = SimInputs::new();
    for (name, values) in &kernel.arrays {
        let sym = mapping.layout.array(name).expect("array in layout");
        inputs.statespace.store_array(sym.base, values);
    }
    for (name, value) in &kernel.scalars {
        inputs.scalars.insert(name.clone(), *value);
    }
    inputs
}

#[test]
fn simulator_event_counts_are_consistent_with_the_program() {
    for kernel in fpfa_workloads::registry() {
        let mapping = Mapper::new().map_source(&kernel.source).unwrap();
        let inputs = inputs_for(&kernel, &mapping);
        let outcome = Simulator::new(&mapping.program).run(&inputs).unwrap();

        // The simulator executes exactly the cycles of the program.
        assert_eq!(
            outcome.counts.cycles as usize,
            mapping.program.cycle_count()
        );
        // Every ALU micro-op of the program is executed exactly once.
        let program_ops: usize = mapping
            .program
            .cycles
            .iter()
            .flat_map(|c| c.alus.iter())
            .map(|a| a.micro_ops.len())
            .sum();
        assert_eq!(outcome.counts.alu_ops as usize, program_ops);
        // Moves and write-backs match the memory traffic.
        let moves: usize = mapping.program.cycles.iter().map(|c| c.moves.len()).sum();
        let writebacks: usize = mapping
            .program
            .cycles
            .iter()
            .map(|c| c.writebacks.len())
            .sum();
        assert_eq!(outcome.counts.mem_reads as usize, moves);
        assert_eq!(outcome.counts.mem_writes as usize, writebacks);
        assert_eq!(outcome.counts.reg_writes as usize, moves);
        // The allocator's own counters agree with the emitted program.
        assert_eq!(mapping.program.stats.register_misses, moves);
        assert_eq!(mapping.program.stats.mem_writebacks, writebacks);
    }
}

#[test]
fn unclustered_and_sequential_variants_stay_equivalent_for_every_kernel() {
    for kernel in fpfa_workloads::registry() {
        for mapping in [
            baseline::unclustered(&kernel.source).unwrap(),
            baseline::sequential(&kernel.source).unwrap(),
        ] {
            let inputs = inputs_for(&kernel, &mapping);
            let report =
                check_against_cdfg(&mapping.simplified, &mapping.program, &inputs).unwrap();
            assert!(report.is_equivalent(), "{}: {report}", kernel.name);
        }
    }
}

#[test]
fn narrower_tiles_remain_functionally_correct() {
    // Shrinking the tile (fewer PPs, fewer buses, shallow ALU) must never
    // change results — only the cycle count.
    let kernel = fpfa_workloads::dct4(2);
    let configs = [
        fpfa_arch::TileConfig::paper().with_num_pps(2),
        fpfa_arch::TileConfig::paper().with_crossbar_buses(2),
        fpfa_arch::TileConfig::paper().with_alu(fpfa_arch::AluCapability::single_op()),
    ];
    let mut cycles = Vec::new();
    for config in configs {
        let mapping = Mapper::new()
            .with_config(config)
            .map_source(&kernel.source)
            .unwrap();
        let inputs = inputs_for(&kernel, &mapping);
        let report = check_against_cdfg(&mapping.simplified, &mapping.program, &inputs).unwrap();
        assert!(report.is_equivalent(), "{report}");
        cycles.push(mapping.report.cycles);
    }
    // The paper tile is at least as fast as any of the degraded variants.
    let full = Mapper::new().map_source(&kernel.source).unwrap();
    assert!(cycles.iter().all(|c| *c >= full.report.cycles));
}
