//! Criterion benches: end-to-end mapping time per workload kernel (drives the
//! per-kernel rows of experiments T1/T2).

use criterion::{criterion_group, criterion_main, Criterion};
use fpfa_core::pipeline::Mapper;
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_kernel");
    group.sample_size(20);
    for kernel in fpfa_workloads::registry() {
        group.bench_function(&kernel.name, |b| {
            b.iter(|| {
                let mapping = Mapper::new()
                    .map_source(black_box(&kernel.source))
                    .expect("kernel maps");
                black_box(mapping.report.cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
