//! Criterion benches: scheduler runtime vs. cluster count on layered random
//! DAGs — the measured series behind experiment T3 (linear complexity claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpfa_core::cluster::ClusteredGraph;
use fpfa_core::schedule::Scheduler;
use std::hint::black_box;

fn layered_dag(n: usize, width: usize) -> ClusteredGraph {
    let mut edges = Vec::new();
    for i in width..n {
        edges.push((i - width, i));
        if i % 3 == 0 && i > width {
            edges.push((i - width - 1, i));
        }
    }
    ClusteredGraph::from_dependencies(n, &edges)
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_clusters");
    group.sample_size(20);
    let scheduler = Scheduler::new(5);
    for &n in &[50usize, 200, 1000, 4000] {
        let dag = layered_dag(n, 8);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &dag, |b, dag| {
            b.iter(|| {
                black_box(
                    scheduler
                        .schedule(black_box(dag))
                        .expect("layered DAGs schedule")
                        .level_count(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
