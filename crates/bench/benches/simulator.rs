//! Criterion benches: cycle-accurate simulation throughput on mapped kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use fpfa_core::pipeline::Mapper;
use fpfa_sim::{SimInputs, Simulator};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_kernel");
    group.sample_size(30);
    for kernel in [fpfa_workloads::fir(16), fpfa_workloads::matmul(3)] {
        let mapping = Mapper::new()
            .map_source(&kernel.source)
            .expect("kernel maps");
        let mut inputs = SimInputs::new();
        for (name, values) in &kernel.arrays {
            let sym = mapping.layout.array(name).expect("array in layout");
            inputs.statespace.store_array(sym.base, values);
        }
        group.bench_function(&kernel.name, |b| {
            b.iter(|| {
                let outcome = Simulator::new(black_box(&mapping.program))
                    .run(black_box(&inputs))
                    .expect("simulation succeeds");
                black_box(outcome.counts.cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
