//! Criterion benches for the content-addressed mapping cache: cold batch
//! mapping vs. warm `MappingService` passes — the measured series behind the
//! cache/service roadmap item.
//!
//! Three series over the full 15-kernel workload registry:
//!
//! * `cold_map_many` — the uncached baseline (`Mapper::map_many`);
//! * `warm_mapping_hits` — a pre-warmed service re-mapping the identical
//!   sources (every kernel is a full-mapping hit);
//! * `warm_post_transform_hits` — the same kernels with whitespace-shifted
//!   sources, so every pass re-runs frontend + transform but reuses the
//!   cluster/partition/schedule/allocate work from the cache.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfa_core::flow::KernelSpec;
use fpfa_core::pipeline::Mapper;
use fpfa_core::service::MappingService;
use std::hint::black_box;

fn specs() -> Vec<KernelSpec> {
    fpfa_workloads::registry()
        .into_iter()
        .map(|k| KernelSpec::new(k.name, k.source))
        .collect()
}

/// The same kernels padded with `n` trailing newlines: different source
/// hashes (fresh for every `n`), the same canonical structure after
/// simplification — so every pass misses the full-mapping cache but hits
/// the post-transform cache.
fn reformatted(specs: &[KernelSpec], n: usize) -> Vec<KernelSpec> {
    specs
        .iter()
        .map(|spec| {
            KernelSpec::new(
                spec.name.clone(),
                format!("{}{}", spec.source, "\n".repeat(n)),
            )
        })
        .collect()
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_cache");
    group.sample_size(10);
    let specs = specs();
    group.throughput(Throughput::Elements(specs.len() as u64));

    group.bench_function("cold_map_many", |b| {
        b.iter(|| {
            let report = Mapper::new().map_many(black_box(&specs));
            assert_eq!(report.failed(), 0, "all registry kernels map");
            black_box(report.total_cycles())
        })
    });

    let warm = MappingService::new(Mapper::new());
    let first = warm.map_many(&specs);
    assert_eq!(first.failed(), 0, "warm-up pass maps all kernels");
    group.bench_function("warm_mapping_hits", |b| {
        b.iter(|| {
            let report = warm.map_many(black_box(&specs));
            assert_eq!(report.failed(), 0);
            black_box(report.total_cycles())
        })
    });

    let structural = MappingService::new(Mapper::new());
    let first = structural.map_many(&specs);
    assert_eq!(first.failed(), 0);
    let pass = std::cell::Cell::new(0usize);
    group.bench_function("warm_post_transform_hits", |b| {
        b.iter(|| {
            pass.set(pass.get() + 1);
            let shifted = reformatted(&specs, pass.get());
            let report = structural.map_many(black_box(&shifted));
            assert_eq!(report.failed(), 0);
            black_box(report.total_cycles())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
