//! Criterion benches: CDFG simplification pipeline (loop unrolling, constant
//! folding, CSE, DCE) on FIR kernels of growing tap count (experiment FIG3's
//! cost as the kernel scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpfa_transform::Pipeline;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplify_fir");
    group.sample_size(20);
    for taps in [4usize, 8, 16, 32] {
        let kernel = fpfa_workloads::fir(taps);
        let program = fpfa_frontend::compile(&kernel.source).expect("FIR compiles");
        group.bench_with_input(
            BenchmarkId::from_parameter(taps),
            &program.cdfg,
            |b, cdfg| {
                b.iter(|| {
                    let mut graph = cdfg.clone();
                    Pipeline::standard()
                        .run(black_box(&mut graph))
                        .expect("pipeline converges");
                    black_box(graph.node_count())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
