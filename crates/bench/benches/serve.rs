//! Criterion benches for the serving layer: protocol encode/decode cost and
//! loopback request round-trips against a live in-process daemon.
//!
//! Three series:
//!
//! * `encode_decode_map` — the pure wire-protocol cost of one map request +
//!   mapped response (no sockets);
//! * `warm_map_roundtrip` — a full client→daemon→client round-trip for a
//!   cache-warm registry kernel over loopback TCP (the per-request cost the
//!   `fpfa-loadgen` throughput figures are built from);
//! * `direct_warm_map` — the same warm mapping served in-process by the
//!   `MappingService`, isolating what the wire adds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfa_core::pipeline::Mapper;
use fpfa_core::service::MappingService;
use fpfa_server::protocol::{KernelSource, MapKnobs, Request, Response};
use fpfa_server::{Client, Server, ServerConfig};
use std::hint::black_box;

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));

    let kernel = fpfa_workloads::fir(16);

    // Pure protocol layer: one request + one plausible response.
    let request = Request::Map {
        kernel: KernelSource::new(kernel.name.clone(), kernel.source.clone()),
        knobs: MapKnobs::default(),
    };
    let service = MappingService::new(Mapper::new());
    let mapped = service.map_source(&kernel.source).expect("fir16 maps");
    let response = Response::Mapped(fpfa_server::MapSummary {
        name: kernel.name.clone(),
        digest: fpfa_server::program_digest(&mapped),
        operations: mapped.report.operations as u64,
        clusters: mapped.report.clusters as u64,
        levels: mapped.report.levels as u64,
        cycles: mapped.report.cycles as u64,
        tiles: 1,
        inter_tile_transfers: 0,
        cache: fpfa_server::CacheFlavor::MappingHit,
        sim: None,
        server_micros: 100,
    });
    group.bench_function("encode_decode_map", |b| {
        b.iter(|| {
            let req = Request::decode(black_box(&request.encode())).expect("request decodes");
            let resp = Response::decode(black_box(&response.encode())).expect("response decodes");
            black_box((req, resp))
        })
    });

    // Loopback round-trips against a live daemon, warm cache.
    let server = Server::bind("127.0.0.1:0", ServerConfig::default(), service.clone())
        .expect("bind loopback daemon");
    let handle = server.spawn().expect("spawn daemon");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .map(&kernel.name, &kernel.source, MapKnobs::default())
        .expect("warm-up mapping");
    group.bench_function("warm_map_roundtrip", |b| {
        b.iter(|| {
            let summary = client
                .map(&kernel.name, &kernel.source, MapKnobs::default())
                .expect("warm mapping");
            black_box(summary.digest)
        })
    });

    group.bench_function("direct_warm_map", |b| {
        b.iter(|| {
            let result = service.map_source(black_box(&kernel.source)).expect("maps");
            black_box(result.report.cycles)
        })
    });
    group.finish();

    handle.shutdown();
    handle.join();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
