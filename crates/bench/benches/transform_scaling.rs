//! Criterion benches: minimiser scaling — the legacy scan-until-fixpoint
//! pipeline versus the worklist-driven incremental engine on unrolled
//! kernels of growing size, plus the CSE value-numbering key
//! micro-benchmark (`String` keys versus the hashable `ValueKey`).
//!
//! The incremental engine's advantage grows with graph size: full scans cost
//! `rounds × passes × nodes` while the worklist only re-examines the
//! neighbourhood of earlier rewrites.  On this container the crossover sits
//! around the conv8x8 kernel (~900 unrolled nodes); conv12x12 runs ~4x
//! faster on the worklist engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpfa_cdfg::{Cdfg, Endpoint, NodeId, NodeKind};
use fpfa_transform::{Pipeline, Transform, WorklistDriver};
use std::collections::HashMap;
use std::hint::black_box;

fn sweep_kernels() -> Vec<(String, Cdfg)> {
    let mut kernels = vec![
        fpfa_workloads::fir(32),
        fpfa_workloads::fir(64),
        fpfa_workloads::fft_butterfly_stage(16),
        fpfa_workloads::conv2d_3x3(8, 8),
    ];
    if std::env::var_os("FPFA_BENCH_QUICK").is_none() {
        kernels.push(fpfa_workloads::fir(128));
        kernels.push(fpfa_workloads::conv2d_3x3(12, 12));
    }
    kernels
        .into_iter()
        .map(|k| {
            let program = fpfa_frontend::compile(&k.source).expect("kernel compiles");
            (k.name, program.cdfg)
        })
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    let kernels = sweep_kernels();
    let mut group = c.benchmark_group("transform_scaling");
    group.sample_size(10);
    for (name, cdfg) in &kernels {
        group.bench_with_input(BenchmarkId::new("legacy", name), cdfg, |b, cdfg| {
            b.iter(|| {
                let mut graph = cdfg.clone();
                Pipeline::standard()
                    .run(black_box(&mut graph))
                    .expect("legacy pipeline converges");
                black_box(graph.node_count())
            })
        });
        group.bench_with_input(BenchmarkId::new("worklist", name), cdfg, |b, cdfg| {
            b.iter(|| {
                let mut graph = cdfg.clone();
                WorklistDriver::new()
                    .run_standard(black_box(&mut graph))
                    .expect("worklist engine converges");
                black_box(graph.node_count())
            })
        });
    }
    group.finish();
}

/// The retired `String` value-numbering key, re-created here so the bench
/// can show what replacing it with the hashable [`fpfa_transform::ValueKey`]
/// enum buys.
fn string_key(graph: &Cdfg, id: NodeId) -> Option<String> {
    let node = graph.node(id).ok()?;
    let mut inputs: Vec<Endpoint> = Vec::new();
    for port in 0..node.input_count() {
        inputs.push(graph.input_source(id, port)?);
    }
    let fmt_inputs = |inputs: &[Endpoint]| -> String {
        inputs
            .iter()
            .map(|e| format!("{}.{}", e.node.index(), e.port))
            .collect::<Vec<_>>()
            .join(",")
    };
    Some(match &node.kind {
        NodeKind::Const(v) => format!("const:{v}"),
        NodeKind::UnOp(op) => format!("un:{op:?}:{}", fmt_inputs(&inputs)),
        NodeKind::BinOp(op) => {
            let mut operands = inputs.clone();
            if op.is_commutative() {
                operands.sort();
            }
            format!("bin:{op:?}:{}", fmt_inputs(&operands))
        }
        NodeKind::Mux => format!("mux:{}", fmt_inputs(&inputs)),
        NodeKind::Fetch => format!("fe:{}", fmt_inputs(&inputs)),
        _ => return None,
    })
}

fn bench_cse_keys(c: &mut Criterion) {
    // A realistic subject: the unrolled conv8x8 graph (~900 nodes).
    let kernel = fpfa_workloads::conv2d_3x3(8, 8);
    let program = fpfa_frontend::compile(&kernel.source).expect("kernel compiles");
    let mut unrolled = program.cdfg.clone();
    Transform::apply(
        &fpfa_transform::unroll::UnrollLoops::default(),
        &mut unrolled,
    )
    .expect("unroll succeeds");
    let ids: Vec<NodeId> = unrolled.node_ids().collect();

    let mut group = c.benchmark_group("cse_value_numbering");
    group.sample_size(20);
    group.bench_function("string_keys", |b| {
        b.iter(|| {
            let mut table: HashMap<String, NodeId> = HashMap::new();
            for &id in &ids {
                if let Some(key) = string_key(black_box(&unrolled), id) {
                    table.entry(key).or_insert(id);
                }
            }
            black_box(table.len())
        })
    });
    group.bench_function("value_keys", |b| {
        b.iter(|| {
            let mut table: HashMap<fpfa_transform::ValueKey, NodeId> = HashMap::new();
            for &id in &ids {
                if let Some(key) = fpfa_transform::value_key(black_box(&unrolled), id) {
                    table.entry(key).or_insert(id);
                }
            }
            black_box(table.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_cse_keys);
criterion_main!(benches);
