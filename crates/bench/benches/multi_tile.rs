//! Criterion benches: multi-tile partitioning and allocation cost, and the
//! cycle-count payoff of spreading an oversized kernel across a tile array.
//!
//! Two series:
//!
//! * `map/…` — wall-clock of the whole mapping flow for the multi-tile
//!   acceptance kernels at 1 and 4 tiles (the 4-tile runs add the partition
//!   stage and the inter-tile transfer scheduling);
//! * `partition/…` — wall-clock of the partitioner alone (greedy seeding +
//!   Kernighan–Lin-style refinement) at growing cluster counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpfa_core::cluster::Clusterer;
use fpfa_core::dfg::MappingGraph;
use fpfa_core::partition::Partitioner;
use fpfa_core::pipeline::Mapper;
use std::hint::black_box;

fn prepared(source: &str) -> (MappingGraph, fpfa_core::ClusteredGraph) {
    let program = fpfa_frontend::compile(source).expect("kernel compiles");
    let mut graph = program.cdfg;
    fpfa_transform::Pipeline::standard()
        .run(&mut graph)
        .expect("pipeline converges");
    let mapping = MappingGraph::from_cdfg(&graph).expect("kernel is mappable");
    let clustered = Clusterer::default().cluster(&mapping).expect("clusterable");
    (mapping, clustered)
}

fn bench_multi_tile_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("map");
    group.sample_size(10);
    for kernel in fpfa_workloads::multi_tile_registry() {
        for tiles in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(&kernel.name, format!("{tiles}t")),
                &tiles,
                |b, &tiles| {
                    b.iter(|| {
                        let mapping = Mapper::new()
                            .with_tiles(tiles)
                            .map_source(black_box(&kernel.source))
                            .expect("kernel maps");
                        black_box(mapping.report.cycles)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for taps in [16usize, 32, 64] {
        let source = format!(
            r#"
            void main() {{
                int a[{taps}];
                int c[{taps}];
                int sum;
                int i;
                sum = 0; i = 0;
                while (i < {taps}) {{ sum = sum + a[i] * c[i]; i = i + 1; }}
            }}
            "#
        );
        let (mapping, clustered) = prepared(&source);
        group.bench_with_input(
            BenchmarkId::new("fir", clustered.len()),
            &clustered,
            |b, clustered| {
                b.iter(|| {
                    let assignment = Partitioner::new(4)
                        .partition(black_box(&mapping), black_box(clustered))
                        .expect("partitionable");
                    black_box(assignment.cut_size(&mapping, clustered))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_multi_tile_mapping, bench_partitioner);
criterion_main!(benches);
