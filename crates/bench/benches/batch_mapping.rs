//! Criterion benches: batched multi-kernel mapping throughput
//! (`Mapper::map_many`) vs. sequential single-kernel mapping — the measured
//! series behind the heavy-traffic/batching roadmap item.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfa_core::flow::KernelSpec;
use fpfa_core::pipeline::Mapper;
use std::hint::black_box;

fn specs() -> Vec<KernelSpec> {
    fpfa_workloads::registry()
        .into_iter()
        .map(|k| KernelSpec::new(k.name, k.source))
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_many");
    group.sample_size(10);
    let specs = specs();
    group.throughput(Throughput::Elements(specs.len() as u64));

    group.bench_function("parallel", |b| {
        b.iter(|| {
            let report = Mapper::new().map_many(black_box(&specs));
            assert_eq!(report.failed(), 0, "all registry kernels map");
            black_box(report.total_cycles())
        })
    });

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut cycles = 0usize;
            for spec in black_box(&specs) {
                let mapping = Mapper::new().map_source(&spec.source).expect("kernel maps");
                cycles += mapping.report.cycles;
            }
            black_box(cycles)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
