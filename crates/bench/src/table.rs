//! Minimal fixed-width table printer shared by the experiment binaries.

/// Prints a row of columns, left-aligned, with the given widths.
pub fn row(widths: &[usize], cells: &[String]) -> String {
    let mut out = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let width = widths.get(i).copied().unwrap_or(12);
        out.push_str(&format!("{cell:<width$}  "));
    }
    out.trim_end().to_string()
}

/// Prints a separator line matching the given widths.
pub fn separator(widths: &[usize]) -> String {
    widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("--")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_alignment() {
        let r = row(&[4, 6], &["ab".into(), "cdef".into()]);
        assert!(r.starts_with("ab  "));
        assert!(r.contains("cdef"));
    }

    #[test]
    fn separator_width() {
        assert_eq!(separator(&[3, 2]), "-----2".replace('2', "--"));
    }
}
