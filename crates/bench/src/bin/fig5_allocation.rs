//! Experiment FIG5 — the heuristic resource allocation of Fig. 5.
//!
//! Maps the FIR kernel with the full flow and prints "the job of an FPFA tile
//! for each clock cycle": per cycle, the register loads (inputs moved to
//! registers ahead of their use), the ALU clusters, and the results stored to
//! the local memories. Also demonstrates the "insert one or more clock
//! cycles" rule by shrinking the look-back window.

use fpfa_arch::TileConfig;
use fpfa_core::pipeline::Mapper;

fn main() {
    let kernel = fpfa_workloads::fir(8);
    println!("FIG5 — per-cycle job of the tile for {}", kernel.name);

    let mapping = Mapper::new().map_source(&kernel.source).expect("FIR maps");
    println!(
        "\nschedule: {} levels; allocation: {} cycles ({} inserted load cycles)",
        mapping.report.levels, mapping.report.cycles, mapping.report.stall_cycles
    );
    println!("\n{}", mapping.program.listing());

    println!("-- effect of the input-move look-back window (\"four steps before\") --");
    println!("{:<10} {:>8} {:>8}", "window", "cycles", "stalls");
    for window in [4usize, 3, 2, 1] {
        let config = TileConfig::paper().with_input_move_window(window);
        let result = Mapper::new()
            .with_config(config)
            .map_source(&kernel.source)
            .expect("FIR maps");
        println!(
            "{:<10} {:>8} {:>8}",
            window, result.report.cycles, result.report.stall_cycles
        );
    }
}
