//! Experiment FIG3 — the FIR CDFG after complete loop unrolling and full
//! simplification.
//!
//! Compiles the paper's Section V FIR code, prints the node census before and
//! after the transformation pipeline, and compares the simplified graph with
//! the structure of Fig. 3: one `FE` per array element (a##i and c##i), one
//! multiply per tap, an addition tree for `sum`, no surviving loop or control
//! nodes, and the loop counter folded to a constant.

use fpfa_cdfg::GraphStats;
use fpfa_core::dfg::MappingGraph;
use fpfa_transform::Pipeline;

const TAPS: usize = 5;

fn main() {
    let kernel = fpfa_workloads::fir(TAPS);
    let program = fpfa_frontend::compile(&kernel.source).expect("FIR compiles");

    let before = GraphStats::of(&program.cdfg);
    let mut simplified = program.cdfg.clone();
    let report = Pipeline::standard()
        .run(&mut simplified)
        .expect("pipeline converges");
    let after = GraphStats::of(&simplified);

    println!("FIG3 — FIR ({TAPS} taps) CDFG before / after full unrolling and simplification");
    println!("\n-- as produced by the frontend (loop still structured) --");
    println!("{before}");
    println!("\n-- after {} pipeline rounds --", report.rounds);
    println!("{after}");

    // The shape of Fig. 3.
    println!("\n-- comparison with the figure --");
    println!("{:<34} {:>8} {:>8}", "feature", "paper", "measured");
    let rows = [
        ("FE fetches (a[i], c[i])", 2 * TAPS, after.fetches),
        ("multiplications", TAPS, after.multiplies),
        ("additions (sum tree)", TAPS - 1, after.additions),
        ("loop nodes", 0, after.loops),
        ("multiplexers", 0, after.muxes),
    ];
    for (label, paper, measured) in rows {
        println!("{label:<34} {paper:>8} {measured:>8}");
    }

    let mapping = MappingGraph::from_cdfg(&simplified).expect("FIR maps");
    let i_out = mapping
        .scalar_outputs
        .iter()
        .find(|(name, _)| name == "i")
        .expect("i is an output");
    println!(
        "loop counter `i` folded to {:?} (the figure stores the constant 4+1 bound)",
        i_out.1
    );

    assert_eq!(after.fetches, 2 * TAPS);
    assert_eq!(after.multiplies, TAPS);
    assert_eq!(after.loops, 0);
}
