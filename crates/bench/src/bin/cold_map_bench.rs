//! `cold_map_bench` — machine-readable cold-path timing trajectory.
//!
//! Maps every registry kernel through a **fresh** mapper (no cache, no warm
//! state: the true cold path) and emits `BENCH_cold_map.json`: per-stage
//! wall-clock per kernel, the cold full-registry batch wall, and the program
//! digests at 1 and 4 tiles — cold and cache-served — so the checked-in file
//! also witnesses that the cache hands out byte-identical mappings.
//!
//! ```text
//! cargo run --release -p fpfa-bench --bin cold_map_bench                # JSON to stdout
//! cargo run --release -p fpfa-bench --bin cold_map_bench -- --out BENCH_cold_map.json
//! cargo run --release -p fpfa-bench --bin cold_map_bench -- --check    # CI budget gate
//! ```
//!
//! With `--check`, exits non-zero when the worst cold kernel exceeds the
//! 10 ms budget by more than 20% (i.e. > 12 ms) — the bench-smoke CI gate
//! from ROADMAP item 5.  Timings are best-of-`--repeats` (default 3) to damp
//! scheduler noise; digests must agree across repeats or the run fails.

use fpfa_core::flow::KernelSpec;
use fpfa_core::pipeline::{Mapper, MappingResult};
use fpfa_core::service::MappingService;
use fpfa_server::program_digest;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// The cold single-kernel budget (ROADMAP item 5).
const BUDGET_MS: f64 = 10.0;
/// `--check` fails when the worst kernel exceeds the budget by this factor.
const BUDGET_SLACK: f64 = 1.2;
/// The stage names of the mapping flow, in flow order.
const STAGES: [&str; 7] = [
    "frontend",
    "transform",
    "extract",
    "cluster",
    "partition",
    "schedule",
    "allocate",
];

struct Options {
    out: Option<String>,
    check: bool,
    repeats: usize,
}

fn usage() -> &'static str {
    "usage: cold_map_bench [--out PATH] [--check] [--repeats N]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        out: None,
        check: false,
        repeats: 3,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                options.out = Some(iter.next().ok_or("--out needs a path")?.clone());
            }
            "--check" => options.check = true,
            "--repeats" => {
                let value = iter.next().ok_or("--repeats needs a value")?;
                options.repeats = value.parse().map_err(|_| "--repeats needs a number")?;
                if options.repeats == 0 {
                    return Err("--repeats needs at least one pass".to_string());
                }
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => {
                return Err(format!(
                    "unknown option `{other}`\n{usage}",
                    usage = usage()
                ))
            }
        }
    }
    Ok(options)
}

/// One kernel's cold measurement: best-of-N per-stage walls plus the digest
/// witnesses.
struct KernelRow {
    name: String,
    /// Best-of-N wall per stage, in [`STAGES`] order.
    stage_us: [f64; STAGES.len()],
    /// Best-of-N total cold wall (sum of stage walls of the best pass).
    total_us: f64,
    digest_t1_cold: u64,
    digest_t1_cached: u64,
    digest_t4_cold: u64,
    digest_t4_cached: u64,
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Maps `source` through a fresh mapper and returns the result (cold by
/// construction: `Mapper::map_source` has no cache).
fn map_cold(source: &str, tiles: usize) -> Result<MappingResult, String> {
    Mapper::new()
        .with_tiles(tiles)
        .map_source(source)
        .map_err(|e| e.to_string())
}

/// Maps `source` twice through one service and returns the second (cache-hit)
/// result.
fn map_cached(source: &str, tiles: usize) -> Result<MappingResult, String> {
    let service = MappingService::new(Mapper::new().with_tiles(tiles));
    service.map_source(source).map_err(|e| e.to_string())?;
    service.map_source(source).map_err(|e| e.to_string())
}

fn measure_kernel(name: &str, source: &str, repeats: usize) -> Result<KernelRow, String> {
    let mut best_total = f64::INFINITY;
    let mut best_stages = [0.0; STAGES.len()];
    let mut digest_t1_cold = None;
    for _ in 0..repeats {
        let mapping = map_cold(source, 1)?;
        let digest = program_digest(&mapping);
        match digest_t1_cold {
            None => digest_t1_cold = Some(digest),
            Some(expected) if expected != digest => {
                return Err(format!(
                    "`{name}`: cold digest {digest:#x} differs between repeats ({expected:#x})"
                ));
            }
            Some(_) => {}
        }
        let mut stages = [0.0; STAGES.len()];
        for (slot, stage) in stages.iter_mut().zip(STAGES) {
            *slot = mapping.trace.wall_of(stage).map(micros).unwrap_or(0.0);
        }
        let total: f64 = stages.iter().sum();
        if total < best_total {
            best_total = total;
            best_stages = stages;
        }
    }
    let digest_t1_cold = digest_t1_cold.expect("at least one repeat");
    let digest_t1_cached = program_digest(&map_cached(source, 1)?);
    let digest_t4_cold = program_digest(&map_cold(source, 4)?);
    let digest_t4_cached = program_digest(&map_cached(source, 4)?);
    Ok(KernelRow {
        name: name.to_string(),
        stage_us: best_stages,
        total_us: best_total,
        digest_t1_cold,
        digest_t1_cached,
        digest_t4_cold,
        digest_t4_cached,
    })
}

/// Cold full-registry batch wall (fresh service per pass, best of N).
fn measure_batch(specs: &[KernelSpec], repeats: usize) -> Result<(f64, usize), String> {
    let mut best = f64::INFINITY;
    let mut threads = 1;
    for _ in 0..repeats {
        let service = MappingService::new(Mapper::new());
        let started = Instant::now();
        let report = service.map_many(specs);
        let wall = micros(started.elapsed());
        if report.failed() > 0 {
            return Err(format!(
                "{} kernel(s) failed the batch pass",
                report.failed()
            ));
        }
        threads = report.threads;
        if wall < best {
            best = wall;
        }
    }
    Ok((best, threads))
}

fn render_json(rows: &[KernelRow], batch_us: f64, batch_threads: usize) -> String {
    let worst = rows
        .iter()
        .max_by(|a, b| a.total_us.total_cmp(&b.total_us))
        .expect("non-empty registry");
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"fpfa-cold-map-bench/v1\",");
    let _ = writeln!(out, "  \"budget_ms\": {BUDGET_MS},");
    let _ = writeln!(out, "  \"budget_slack\": {BUDGET_SLACK},");
    let _ = writeln!(
        out,
        "  \"worst\": {{ \"kernel\": \"{}\", \"total_us\": {:.1} }},",
        worst.name, worst.total_us
    );
    let _ = writeln!(
        out,
        "  \"batch\": {{ \"wall_us\": {batch_us:.1}, \"threads\": {batch_threads} }},"
    );
    out.push_str("  \"kernels\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", row.name);
        let _ = writeln!(out, "      \"total_us\": {:.1},", row.total_us);
        out.push_str("      \"stages_us\": { ");
        for (stage_index, stage) in STAGES.iter().enumerate() {
            let comma = if stage_index + 1 < STAGES.len() {
                ", "
            } else {
                " "
            };
            let _ = write!(out, "\"{stage}\": {:.1}{comma}", row.stage_us[stage_index]);
        }
        out.push_str("},\n");
        let _ = writeln!(
            out,
            "      \"digests\": {{ \"t1_cold\": \"{:#018x}\", \"t1_cached\": \"{:#018x}\", \
             \"t4_cold\": \"{:#018x}\", \"t4_cached\": \"{:#018x}\" }}",
            row.digest_t1_cold, row.digest_t1_cached, row.digest_t4_cold, row.digest_t4_cached
        );
        let comma = if index + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

fn run(options: &Options) -> Result<bool, String> {
    let kernels = fpfa_workloads::registry();
    let specs: Vec<KernelSpec> = kernels
        .iter()
        .map(|kernel| KernelSpec::new(kernel.name.clone(), kernel.source.clone()))
        .collect();

    // One throwaway mapping warms the process (page faults, lazy allocator
    // state) so the first measured kernel is not penalised.
    map_cold(&kernels[0].source, 1)?;

    let mut rows = Vec::with_capacity(kernels.len());
    for kernel in &kernels {
        rows.push(measure_kernel(
            &kernel.name,
            &kernel.source,
            options.repeats,
        )?);
        // A cache-served mapping must be byte-identical to the cold one —
        // the digests witness it in the checked-in file, but catch a
        // violation immediately here too.
        let row = rows.last().expect("just pushed");
        if row.digest_t1_cold != row.digest_t1_cached || row.digest_t4_cold != row.digest_t4_cached
        {
            return Err(format!(
                "`{}`: cache-served digest differs from cold digest",
                row.name
            ));
        }
    }
    let (batch_us, batch_threads) = measure_batch(&specs, options.repeats)?;

    let json = render_json(&rows, batch_us, batch_threads);
    match &options.out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("cold_map_bench: wrote {path}");
        }
        None => print!("{json}"),
    }

    let worst = rows
        .iter()
        .max_by(|a, b| a.total_us.total_cmp(&b.total_us))
        .expect("non-empty registry");
    eprintln!(
        "cold_map_bench: worst cold kernel `{}` {:.2} ms (budget {BUDGET_MS} ms), \
         cold batch {:.2} ms on {batch_threads} thread(s)",
        worst.name,
        worst.total_us / 1e3,
        batch_us / 1e3,
    );
    Ok(worst.total_us / 1e3 <= BUDGET_MS * BUDGET_SLACK)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(within_budget) => {
            if options.check && !within_budget {
                eprintln!(
                    "cold_map_bench: worst cold kernel exceeds the {BUDGET_MS} ms budget by >{}%",
                    ((BUDGET_SLACK - 1.0) * 100.0).round()
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("cold_map_bench: {message}");
            ExitCode::FAILURE
        }
    }
}
