//! Experiment T1 — kernel sweep: cycles on the 5-ALU tile vs. the sequential
//! single-ALU baseline ("maximum parallelism" claim of Sections VI/VII).
//!
//! For every workload kernel the table reports the operation count, the
//! clustered mapping's levels and cycles, the sequential baseline's cycles,
//! the speed-up, and the ALU utilisation. Cycle counts are measured by the
//! cycle-accurate simulator (which also re-verifies functional equivalence).

use fpfa_core::baseline;
use fpfa_core::pipeline::Mapper;
use fpfa_sim::{check_against_cdfg, SimInputs};
use fpfa_workloads::Kernel;

fn simulate(kernel: &Kernel, mapping: &fpfa_core::MappingResult) -> u64 {
    let mut inputs = SimInputs::new();
    for (name, values) in &kernel.arrays {
        let sym = mapping.layout.array(name).expect("array in layout");
        inputs.statespace.store_array(sym.base, values);
    }
    for (name, value) in &kernel.scalars {
        inputs.scalars.insert(name.clone(), *value);
    }
    let report = check_against_cdfg(&mapping.simplified, &mapping.program, &inputs)
        .expect("simulation succeeds");
    assert!(
        report.is_equivalent(),
        "{}: mapped program diverges from the CDFG",
        kernel.name
    );
    report.outcome.counts.cycles
}

fn main() {
    println!("T1 — kernel cycles: clustered 5-ALU mapping vs. sequential 1-ALU baseline");
    println!(
        "{:<12} {:>5} {:>9} {:>8} {:>8} {:>10} {:>9} {:>7}",
        "kernel", "ops", "clusters", "levels", "cycles", "seq cycles", "speedup", "util"
    );
    let mut speedups = Vec::new();
    for kernel in fpfa_workloads::registry() {
        let mapped = Mapper::new()
            .map_source(&kernel.source)
            .expect("kernel maps");
        let sequential = baseline::sequential(&kernel.source).expect("baseline maps");
        let mapped_cycles = simulate(&kernel, &mapped);
        let sequential_cycles = simulate(&kernel, &sequential);
        let speedup = sequential_cycles as f64 / mapped_cycles.max(1) as f64;
        speedups.push(speedup);
        println!(
            "{:<12} {:>5} {:>9} {:>8} {:>8} {:>10} {:>9.2} {:>7.2}",
            kernel.name,
            mapped.report.operations,
            mapped.report.clusters,
            mapped.report.levels,
            mapped_cycles,
            sequential_cycles,
            speedup,
            mapped.report.alu_utilization
        );
    }
    let geo_mean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("\ngeometric-mean speed-up over the sequential baseline: {geo_mean:.2}x");
}
