//! Experiment T3 — linear complexity of the scheduling and allocation
//! heuristics.
//!
//! The paper claims both the level scheduler and the allocator run in time
//! linear in the number of clusters. This experiment schedules random layered
//! task graphs of increasing size and reports the measured time per cluster,
//! which should stay roughly constant as the graph grows.

#![allow(clippy::unwrap_used)]

use fpfa_core::cluster::ClusteredGraph;
use fpfa_core::schedule::Scheduler;
use std::time::Instant;

/// Builds a layered random-looking DAG with `n` clusters; edges connect
/// consecutive layers only, so the construction is deterministic and cheap.
fn layered_dag(n: usize, width: usize) -> ClusteredGraph {
    let mut edges = Vec::new();
    for i in width..n {
        // Every cluster depends on one or two clusters of the previous layer.
        edges.push((i - width, i));
        if i % 3 == 0 && i > width {
            edges.push((i - width - 1, i));
        }
    }
    ClusteredGraph::from_dependencies(n, &edges)
}

fn main() {
    println!("T3 — scheduling time vs. number of clusters (5 ALUs)");
    println!(
        "{:<10} {:>10} {:>12} {:>16}",
        "clusters", "levels", "time (us)", "time/cluster(ns)"
    );
    let scheduler = Scheduler::new(5);
    let mut per_cluster = Vec::new();
    for &n in &[10usize, 50, 100, 500, 1000, 2000, 5000] {
        let dag = layered_dag(n, 8);
        // Warm up once, then measure the best of three runs.
        let _ = scheduler.schedule(&dag).unwrap();
        let mut best = u128::MAX;
        let mut levels = 0;
        for _ in 0..3 {
            let start = Instant::now();
            let schedule = scheduler.schedule(&dag).unwrap();
            best = best.min(start.elapsed().as_micros());
            levels = schedule.level_count();
        }
        let ns_per_cluster = best as f64 * 1000.0 / n as f64;
        per_cluster.push(ns_per_cluster);
        println!("{n:<10} {levels:>10} {best:>12} {ns_per_cluster:>16.0}");
    }
    let first = per_cluster.first().copied().unwrap_or(1.0);
    let last = per_cluster.last().copied().unwrap_or(1.0);
    println!(
        "\ntime per cluster grows by {:.1}x from the smallest to the largest graph",
        last / first
    );
    println!("(a flat ratio confirms the linear-complexity claim; the level scan adds a small super-linear term when schedules get very deep)");
}
