//! Ablation A2 — the allocator's input-move look-back window.
//!
//! Fig. 5 moves inputs into registers "at the clock cycle which is four steps
//! before; if failed, three steps before; then two; one". This sweep varies
//! the window from 0 to 4 cycles and reports inserted stall cycles and total
//! cycles per kernel, showing why the paper settles on a window of four.

use fpfa_arch::TileConfig;
use fpfa_core::pipeline::Mapper;

fn main() {
    println!("A2 — allocator look-back window sweep (stall cycles inserted / total cycles)");
    print!("{:<12}", "kernel");
    for window in 0..=4usize {
        print!(" {:>13}", format!("window {window}"));
    }
    println!();
    for kernel in fpfa_workloads::registry() {
        print!("{:<12}", kernel.name);
        for window in 0..=4usize {
            let config = TileConfig::paper().with_input_move_window(window.max(1));
            // A window of 0 would never find a slot; the allocator requires at
            // least one look-back cycle, so report window 0 as window 1 with a
            // marker.
            let result = Mapper::new()
                .with_config(config)
                .map_source(&kernel.source)
                .expect("kernel maps");
            let label = format!("{}/{}", result.report.stall_cycles, result.report.cycles);
            print!(" {label:>13}");
        }
        println!();
    }
    println!("\n(windows 0 and 1 coincide: the allocator always needs at least one earlier cycle)");
}
