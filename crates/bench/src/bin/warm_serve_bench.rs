//! `warm_serve_bench` — machine-readable warm serving-path throughput.
//!
//! Spawns an in-process `fpfa-serve` daemon, warms it with one pass over
//! the workload registry, then saturates it with a windowed, pipelined
//! storm over many v2 connections driven by one event-driven thread — the
//! steady state of a fleet front door, where every request repeats a kernel
//! the daemon has already mapped.  Emits `BENCH_warm_serve.json`
//! (schema `fpfa-warm-serve-bench/v1`): warm req/s, p50/p99 latency, and
//! the L0 (pre-encoded frame) / L1 (shared in-memory cache) hit split.
//!
//! ```text
//! cargo run --release -p fpfa-bench --bin warm_serve_bench            # JSON to stdout
//! cargo run --release -p fpfa-bench --bin warm_serve_bench -- --out BENCH_warm_serve.json
//! cargo run --release -p fpfa-bench --bin warm_serve_bench -- --check # CI floor gate
//! ```
//!
//! With `FPFA_BENCH_QUICK` set (the CI bench-smoke mode), the per-connection
//! request count drops to a smoke size.  `--check` exits non-zero when the
//! warm throughput falls below the smoke floor, when any response fails or
//! carries a digest that differs from warmup, or when the L0 tier did not
//! dominate the warm answers — shared CI runners are too noisy to gate the
//! full-speed budget, so the checked-in trajectory records the measured
//! numbers and the gate enforces sanity plus a conservative floor.

use fpfa_core::pipeline::Mapper;
use fpfa_core::service::MappingService;
use fpfa_server::protocol::{decode_response_frame, read_frame, write_frame, FrameBuffer, Hello};
use fpfa_server::sys::{Event, Interest, Poller};
use fpfa_server::{Client, KernelSource, MapKnobs, Request, Response, Server, ServerConfig};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// The warm-throughput target of the checked-in trajectory (the acceptance
/// budget on the reference 1-core container: >= 15% over the 52k req/s
/// PR-7 baseline).
const BUDGET_REQ_S: f64 = 60_000.0;
/// The `--check` floor: shared CI runners are noisy, so the gate asserts a
/// conservative fraction of the budget rather than the budget itself.
const CHECK_FLOOR_REQ_S: f64 = 10_000.0;
/// `--check` also requires the L0 tier to answer at least this share of
/// the fast-path hits (the point of the pre-encoded tier is dominating the
/// warm path).
const CHECK_MIN_L0_SHARE: f64 = 0.8;

/// Requests kept in flight per connection (pipelined window).
const WINDOW: usize = 16;
/// Read chunk for draining sockets.
const READ_CHUNK: usize = 64 * 1024;

struct Options {
    out: Option<String>,
    check: bool,
    connections: usize,
    requests: usize,
}

fn usage() -> &'static str {
    "usage: warm_serve_bench [--out PATH] [--check] [--connections N] [--requests N]"
}

fn quick_mode() -> bool {
    std::env::var_os("FPFA_BENCH_QUICK").is_some()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        out: None,
        check: false,
        connections: 256,
        requests: if quick_mode() { 40 } else { 400 },
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => options.out = Some(iter.next().ok_or("--out needs a path")?.clone()),
            "--check" => options.check = true,
            "--connections" => {
                let value = iter.next().ok_or("--connections needs a value")?;
                options.connections = value.parse().map_err(|_| "--connections needs a number")?;
            }
            "--requests" => {
                let value = iter.next().ok_or("--requests needs a value")?;
                options.requests = value.parse().map_err(|_| "--requests needs a number")?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    if options.connections == 0 || options.requests == 0 {
        return Err("--connections/--requests need at least 1".to_string());
    }
    Ok(options)
}

struct BenchConn {
    stream: TcpStream,
    rbuf: FrameBuffer,
    wbuf: Vec<u8>,
    wpos: usize,
    next_id: u64,
    sent: usize,
    /// id -> (kernel index, send instant).
    pending: HashMap<u64, (usize, Instant)>,
    want_write: bool,
}

struct Measured {
    latencies_us: Vec<u64>,
    wall: Duration,
    failures: Vec<String>,
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn enqueue(conn: &mut BenchConn, kernel: usize, bodies: &[Vec<u8>]) {
    let id = conn.next_id;
    conn.next_id += 1;
    let body = &bodies[kernel];
    let len = (8 + body.len()) as u32;
    conn.wbuf.extend_from_slice(&len.to_le_bytes());
    conn.wbuf.extend_from_slice(&id.to_le_bytes());
    conn.wbuf.extend_from_slice(body);
    conn.pending.insert(id, (kernel, Instant::now()));
    conn.sent += 1;
}

fn flush(conn: &mut BenchConn, token: usize, poller: &mut Poller) -> Result<(), String> {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err("connection closed while writing".to_string()),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("write: {e}")),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
        if conn.want_write {
            conn.want_write = false;
            poller
                .reregister(conn.stream.as_raw_fd(), token, Interest::READ)
                .map_err(|e| format!("reregister: {e}"))?;
        }
    } else if !conn.want_write {
        conn.want_write = true;
        poller
            .reregister(conn.stream.as_raw_fd(), token, Interest::READ_WRITE)
            .map_err(|e| format!("reregister: {e}"))?;
    }
    Ok(())
}

/// The measured storm: `connections` pipelined v2 connections, each keeping
/// [`WINDOW`] requests in flight until its quota is spent.
fn run_storm(
    addr: &str,
    options: &Options,
    bodies: &[Vec<u8>],
    names: &[String],
    digests: &HashMap<String, u64>,
) -> Result<Measured, String> {
    let mut poller = Poller::new().map_err(|e| format!("poller: {e}"))?;
    let mut conns: Vec<BenchConn> = Vec::with_capacity(options.connections);
    for token in 0..options.connections {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .set_nodelay(true)
            .map_err(|e| format!("nodelay: {e}"))?;
        write_frame(&mut stream, &Hello::current().encode())
            .map_err(|e| format!("handshake write: {e}"))?;
        let ack = read_frame(&mut stream)
            .map_err(|e| format!("handshake read: {e}"))?
            .ok_or_else(|| "server closed during the handshake".to_string())?;
        match Response::decode(&ack) {
            Ok(Response::Hello(_)) => {}
            other => return Err(format!("unexpected handshake reply: {other:?}")),
        }
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking: {e}"))?;
        poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .map_err(|e| format!("register: {e}"))?;
        conns.push(BenchConn {
            stream,
            rbuf: FrameBuffer::new(),
            wbuf: Vec::new(),
            wpos: 0,
            next_id: 0,
            sent: 0,
            pending: HashMap::new(),
            want_write: false,
        });
    }

    let total = options.connections * options.requests;
    let started = Instant::now();
    let hard_deadline = started + Duration::from_secs(120);
    // Prime every connection's window; the kernel index strides over the
    // registry so every connection exercises every kernel.
    for (token, conn) in conns.iter_mut().enumerate() {
        for slot in 0..WINDOW.min(options.requests) {
            let kernel = (token + slot) % bodies.len();
            enqueue(conn, kernel, bodies);
        }
        flush(conn, token, &mut poller)?;
    }

    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut failures: Vec<String> = Vec::new();
    let mut done = 0usize;

    while done < total {
        if Instant::now() > hard_deadline {
            failures.push(format!("{} response(s) never arrived", total - done));
            break;
        }
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .map_err(|e| format!("poll: {e}"))?;
        for event in &events {
            let token = event.token;
            if event.writable {
                flush(&mut conns[token], token, &mut poller)?;
            }
            if !event.readable {
                continue;
            }
            loop {
                match conns[token].stream.read(&mut scratch) {
                    Ok(0) => return Err(format!("connection {token}: server closed")),
                    Ok(n) => conns[token].rbuf.extend(&scratch[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(format!("connection {token}: read: {e}")),
                }
            }
            let conn = &mut conns[token];
            let mut refill = 0usize;
            while let Some(frame) = conn
                .rbuf
                .next_frame()
                .map_err(|e| format!("frame error: {e}"))?
            {
                let (id, response) =
                    decode_response_frame(frame).map_err(|e| format!("protocol error: {e}"))?;
                let Some((kernel, sent_at)) = conn.pending.remove(&id) else {
                    failures.push(format!("connection {token}: unknown response id {id}"));
                    continue;
                };
                done += 1;
                match response {
                    Response::Mapped(summary) => {
                        latencies.push(sent_at.elapsed().as_micros() as u64);
                        let name = &names[kernel];
                        if digests.get(name) != Some(&summary.digest) {
                            failures.push(format!(
                                "`{name}`: digest {:#x} differs from warmup",
                                summary.digest
                            ));
                        }
                    }
                    Response::Error(error) => {
                        failures.push(format!("`{}`: {error}", names[kernel]))
                    }
                    _ => failures.push(format!("`{}`: unexpected response kind", names[kernel])),
                }
                if conn.sent < options.requests {
                    let kernel = (token + conn.sent) % bodies.len();
                    enqueue(conn, kernel, bodies);
                    refill += 1;
                }
            }
            if refill > 0 {
                flush(&mut conns[token], token, &mut poller)?;
            }
        }
    }
    Ok(Measured {
        latencies_us: latencies,
        wall: started.elapsed(),
        failures,
    })
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    options: &Options,
    ok: usize,
    throughput: f64,
    p50: u64,
    p99: u64,
    max: u64,
    l0_hits: u64,
    l1_hits: u64,
    l0_share: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"fpfa-warm-serve-bench/v1\",");
    let _ = writeln!(out, "  \"budget_req_per_s\": {BUDGET_REQ_S},");
    let _ = writeln!(out, "  \"connections\": {},", options.connections);
    let _ = writeln!(out, "  \"requests_per_connection\": {},", options.requests);
    let _ = writeln!(out, "  \"window\": {WINDOW},");
    let _ = writeln!(out, "  \"ok\": {ok},");
    let _ = writeln!(out, "  \"warm_req_per_s\": {throughput:.1},");
    let _ = writeln!(
        out,
        "  \"latency_us\": {{ \"p50\": {p50}, \"p99\": {p99}, \"max\": {max} }},"
    );
    let _ = writeln!(
        out,
        "  \"hit_split\": {{ \"l0\": {l0_hits}, \"l1\": {l1_hits}, \"l0_share\": {l0_share:.4} }}"
    );
    out.push_str("}\n");
    out
}

fn run(options: &Options) -> Result<bool, String> {
    let kernels = fpfa_workloads::registry();
    let names: Vec<String> = kernels.iter().map(|k| k.name.clone()).collect();
    let knobs = MapKnobs::default();
    let bodies: Vec<Vec<u8>> = kernels
        .iter()
        .map(|kernel| {
            Request::Map {
                kernel: KernelSource::new(kernel.name.clone(), kernel.source.clone()),
                knobs,
            }
            .encode()
        })
        .collect();

    let service = MappingService::new(Mapper::new());
    let server = Server::bind("127.0.0.1:0", ServerConfig::default(), service)
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?
        .to_string();
    let handle = server.spawn().map_err(|e| format!("spawn: {e}"))?;

    // Warmup: map the registry once (fills L1 via the worker path) and
    // record the expected digests; a second pass seeds each shard's L0.
    let mut warm = Client::connect(&addr).map_err(|e| format!("warmup connect: {e}"))?;
    let mut digests: HashMap<String, u64> = HashMap::new();
    for pass in 0..2 {
        for kernel in &kernels {
            let summary = warm
                .map(&kernel.name, &kernel.source, knobs)
                .map_err(|e| format!("warmup mapping of `{}` failed: {e}", kernel.name))?;
            if pass == 0 {
                digests.insert(kernel.name.clone(), summary.digest);
            } else if digests.get(&kernel.name) != Some(&summary.digest) {
                return Err(format!("`{}`: warm digest differs", kernel.name));
            }
        }
    }
    let baseline = handle.stats();

    let mut measured = run_storm(&addr, options, &bodies, &names, &digests)?;
    measured.latencies_us.sort_unstable();

    // Stop the daemon and take the final counters through the same handle.
    let mut control = Client::connect(&addr).map_err(|e| format!("control connect: {e}"))?;
    control.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    drop(control);
    let stats = handle.join();

    let ok = measured.latencies_us.len();
    let throughput = ok as f64 / measured.wall.as_secs_f64().max(1e-9);
    let p50 = percentile(&measured.latencies_us, 0.50);
    let p99 = percentile(&measured.latencies_us, 0.99);
    let max = measured.latencies_us.last().copied().unwrap_or(0);
    // The split over the *measured* phase: the warmup's own hits are
    // subtracted out via the pre-storm snapshot.
    let l0_hits = stats.l0_hits.saturating_sub(baseline.l0_hits);
    let fast_hits = stats.fast_hits.saturating_sub(baseline.fast_hits);
    let l1_hits = fast_hits.saturating_sub(l0_hits);
    let l0_share = if fast_hits > 0 {
        l0_hits as f64 / fast_hits as f64
    } else {
        0.0
    };

    let json = render_json(
        options, ok, throughput, p50, p99, max, l0_hits, l1_hits, l0_share,
    );
    match &options.out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("warm_serve_bench: wrote {path}");
        }
        None => print!("{json}"),
    }
    eprintln!(
        "warm_serve_bench: {} conn(s) x {} req(s): {throughput:.0} req/s warm \
         (p50 {p50} us, p99 {p99} us), L0/L1 split {l0_hits}/{l1_hits} \
         ({:.1}% L0)",
        options.connections,
        options.requests,
        l0_share * 100.0
    );

    for failure in measured.failures.iter().take(5) {
        eprintln!("warm_serve_bench: failure: {failure}");
    }
    if !measured.failures.is_empty() {
        return Err(format!("{} request(s) failed", measured.failures.len()));
    }
    Ok(throughput >= CHECK_FLOOR_REQ_S && l0_share >= CHECK_MIN_L0_SHARE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(healthy) => {
            if options.check && !healthy {
                eprintln!(
                    "warm_serve_bench: below the {CHECK_FLOOR_REQ_S:.0} req/s floor or the L0 \
                     tier did not dominate (>= {CHECK_MIN_L0_SHARE:.0}% of fast-path hits)"
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("warm_serve_bench: {message}");
            ExitCode::FAILURE
        }
    }
}
