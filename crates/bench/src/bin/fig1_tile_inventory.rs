//! Experiment FIG1 — the processor tile of Fig. 1.
//!
//! Prints the structural inventory of the modelled tile so it can be checked
//! against the figure: five processing parts, each with one ALU, four
//! register banks of four registers and two memories of 512 words, connected
//! by a crossbar.

use fpfa_arch::{Tile, TileConfig};

fn main() {
    let config = TileConfig::paper();
    let tile = Tile::new(config);
    println!("FIG1 — FPFA processor tile inventory");
    println!("{}", tile.inventory());
    println!();
    println!("paper (Fig. 1): 5 PPs; per PP: ALU, register banks Ra/Rb/Rc/Rd (4 x 4 registers), MEM1 + MEM2 (2 x 512 words); crossbar between all ALUs, registers and memories");
    assert_eq!(config.num_pps, 5);
    assert_eq!(config.banks_per_pp, 4);
    assert_eq!(config.regs_per_bank, 4);
    assert_eq!(config.mems_per_pp, 2);
    assert_eq!(config.mem_words, 512);
}
