//! Experiment T2 — locality of reference and energy.
//!
//! "High performance and low power consumption are achieved by exploiting
//! maximum parallelism and locality of reference respectively." The table
//! compares, for every kernel, the locality-aware allocator with the
//! memory-only baseline: register hit rate, memory reads, crossbar transfers
//! and the relative energy estimate from the simulator's event counts.

use fpfa_arch::EnergyModel;
use fpfa_core::baseline;
use fpfa_core::pipeline::Mapper;
use fpfa_sim::{SimInputs, Simulator};
use fpfa_workloads::Kernel;

fn simulate(kernel: &Kernel, mapping: &fpfa_core::MappingResult) -> fpfa_sim::SimOutcome {
    let mut inputs = SimInputs::new();
    for (name, values) in &kernel.arrays {
        let sym = mapping.layout.array(name).expect("array in layout");
        inputs.statespace.store_array(sym.base, values);
    }
    for (name, value) in &kernel.scalars {
        inputs.scalars.insert(name.clone(), *value);
    }
    Simulator::new(&mapping.program)
        .run(&inputs)
        .expect("simulation succeeds")
}

fn main() {
    let model = EnergyModel::default_model();
    println!("T2 — locality of reference: locality-aware allocator vs. memory-only baseline");
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "hit rate", "mem reads", "mem base", "energy", "energy base", "saving"
    );
    let mut savings = Vec::new();
    for kernel in fpfa_workloads::registry() {
        let with = Mapper::new()
            .map_source(&kernel.source)
            .expect("kernel maps");
        let without = baseline::no_locality(&kernel.source).expect("baseline maps");
        let outcome_with = simulate(&kernel, &with);
        let outcome_without = simulate(&kernel, &without);
        let energy_with = model.total(&outcome_with.counts);
        let energy_without = model.total(&outcome_without.counts);
        let saving = 1.0 - energy_with / energy_without;
        savings.push(saving);
        println!(
            "{:<12} {:>9} {:>10} {:>10} {:>10.1} {:>10.1} {:>9.1}%",
            kernel.name,
            with.report
                .register_hit_rate()
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".into()),
            outcome_with.counts.mem_reads,
            outcome_without.counts.mem_reads,
            energy_with,
            energy_without,
            saving * 100.0
        );
    }
    let mean = savings.iter().sum::<f64>() / savings.len() as f64;
    println!(
        "\nmean energy saving from locality of reference: {:.1}%",
        mean * 100.0
    );
    println!("(relative energy model: register access 0.2/0.3, memory access 2.5/3.0, crossbar 0.6, ALU 1.0)");
}
