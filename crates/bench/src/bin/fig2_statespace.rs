//! Experiment FIG2 — the statespace primitives of Fig. 2.
//!
//! Builds the three primitive hypergraphs (`ST`, `FE`, `DEL`) as a small CDFG
//! and executes it with the reference interpreter, printing the statespace
//! after every primitive so the semantics can be checked against the figure.

#![allow(clippy::unwrap_used)]

use fpfa_cdfg::interp::Interpreter;
use fpfa_cdfg::{CdfgBuilder, StateSpace, Value};

fn main() {
    println!("FIG2 — statespace primitives ST / FE / DEL");

    // ss1 = ST(ss_in, ad=3, da=42); da2 = FE(ss1, 3); ss3 = DEL(ss1, 3)
    let mut b = CdfgBuilder::new("fig2");
    let ss_in = b.input("mem");
    let ad = b.constant(3);
    let da = b.constant(42);
    let ss1 = b.store(ss_in, ad, da);
    let fetched = b.fetch(ss1, ad);
    let ss3 = b.delete(ss1, ad);
    b.output("da", fetched);
    b.output("after_store", ss1);
    b.output("mem", ss3);
    let graph = b.finish().expect("figure graph is well formed");

    let initial = StateSpace::from_tuples([(1, 10)]);
    println!("ss_in            = {initial}");
    let mut interp = Interpreter::new(&graph);
    interp.bind("mem", Value::State(initial));
    let result = interp.run().expect("figure graph executes");

    println!(
        "after ST(3, 42)  = {}",
        result.state("after_store").unwrap()
    );
    println!("FE(3)            = {}", result.word("da").unwrap());
    println!("after DEL(3)     = {}", result.state("mem").unwrap());

    assert_eq!(result.word("da"), Some(42));
    assert_eq!(result.state("after_store").unwrap().fetch(3), Some(42));
    assert_eq!(result.state("mem").unwrap().fetch(3), None);
    println!("\nsemantics match Fig. 2: ST adds a tuple, FE reads it, DEL removes it");
}
