//! Experiment FIG4 — scheduling clusters on 5 ALUs with level insertion.
//!
//! Rebuilds the 11-cluster task graph of Fig. 4: before scheduling, six
//! clusters (Clu1..Clu6) sit on level 0, which exceeds the five physical
//! ALUs; after scheduling, one of them moves down and a new level is
//! inserted, so the schedule grows from 4 to 5 levels while every level holds
//! at most 5 clusters.

#![allow(clippy::unwrap_used)]

use fpfa_core::cluster::ClusteredGraph;
use fpfa_core::schedule::Scheduler;

fn main() {
    // Dependence edges reconstructed from Fig. 4 (cluster indices as in the
    // figure): Clu1..Clu6 are sources; Clu0 and Clu7 consume them; Clu8/Clu9
    // consume the middle layer; Clu10 is the sink.
    let edges: Vec<(usize, usize)> = vec![
        (1, 0),
        (2, 0),
        (3, 7),
        (4, 7),
        (5, 7),
        (6, 7),
        (0, 8),
        (7, 8),
        (7, 9),
        (8, 10),
        (9, 10),
    ];
    let clustered = ClusteredGraph::from_dependencies(11, &edges);

    println!("FIG4 — level-by-level scheduling with level insertion");
    println!(
        "cluster graph: 11 clusters, critical path {} levels",
        clustered.critical_path()
    );

    // (a) Before scheduling: ASAP levels with unbounded ALUs.
    let unbounded = Scheduler::new(64).schedule(&clustered).unwrap();
    println!("\n(a) before scheduling (unbounded ALUs — ASAP levels):");
    print!("{unbounded}");
    println!(
        "largest level holds {} clusters (exceeds the 5 ALUs)",
        unbounded.max_parallelism()
    );

    // (b) After scheduling on the 5 physical ALUs.
    let bounded = Scheduler::new(5).schedule(&clustered).unwrap();
    println!("\n(b) after scheduling on 5 ALUs:");
    print!("{bounded}");
    println!(
        "levels: {} -> {} (one level inserted), max clusters per level {}",
        unbounded.level_count(),
        bounded.level_count(),
        bounded.max_parallelism()
    );

    assert!(unbounded.max_parallelism() > 5);
    assert!(bounded.max_parallelism() <= 5);
    assert_eq!(bounded.level_count(), unbounded.level_count() + 1);
}
