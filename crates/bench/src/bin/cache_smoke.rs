//! CI cache smoke: map the full workload registry twice through one
//! `MappingService` and assert a 100% hit rate and a >= 5x wall-clock
//! speedup on the second pass.
//!
//! ```text
//! cargo run --release -p fpfa-bench --bin cache_smoke
//! ```
//!
//! Exits non-zero (failing the bench-smoke CI job) when any kernel fails to
//! map, any second-pass kernel misses the cache, or the warm pass is not at
//! least 5x faster than the cold pass.  The per-pass timings go to stdout so
//! the uploaded CI artifact keeps the cache's perf trajectory visible
//! per-PR.

use fpfa_core::cache::CacheOutcome;
use fpfa_core::flow::KernelSpec;
use fpfa_core::pipeline::Mapper;
use fpfa_core::service::MappingService;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let specs: Vec<KernelSpec> = fpfa_workloads::registry()
        .into_iter()
        .map(|kernel| KernelSpec::new(kernel.name, kernel.source))
        .collect();
    let service = MappingService::new(Mapper::new());

    let cold_started = Instant::now();
    let cold = service.map_many(&specs);
    let cold_wall = cold_started.elapsed();
    if cold.failed() > 0 {
        eprintln!(
            "cache_smoke: {} kernel(s) failed the cold pass",
            cold.failed()
        );
        return ExitCode::FAILURE;
    }

    let warm_started = Instant::now();
    let warm = service.map_many(&specs);
    let warm_wall = warm_started.elapsed();
    if warm.failed() > 0 {
        eprintln!(
            "cache_smoke: {} kernel(s) failed the warm pass",
            warm.failed()
        );
        return ExitCode::FAILURE;
    }

    let misses: Vec<&str> = warm
        .entries
        .iter()
        .filter(|entry| {
            entry
                .outcome
                .as_ref()
                .map(|mapping| mapping.report.cache != CacheOutcome::MappingHit)
                .unwrap_or(true)
        })
        .map(|entry| entry.name.as_str())
        .collect();
    let stats = service.stats();
    let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(f64::MIN_POSITIVE);

    println!("== cache_smoke ({} kernels)", specs.len());
    println!("  cold pass  {cold_wall:>12?}");
    println!("  warm pass  {warm_wall:>12?}  ({speedup:.1}x speedup)");
    println!("  cache      {stats}");

    if !misses.is_empty() {
        eprintln!(
            "cache_smoke: {} kernel(s) missed the cache on the warm pass: {}",
            misses.len(),
            misses.join(", ")
        );
        return ExitCode::FAILURE;
    }
    if stats.mapping_hits as usize != specs.len() {
        eprintln!(
            "cache_smoke: expected {} mapping hits, counted {}",
            specs.len(),
            stats.mapping_hits
        );
        return ExitCode::FAILURE;
    }
    if speedup < 5.0 {
        eprintln!(
            "cache_smoke: warm pass only {speedup:.1}x faster than cold (need >= 5x: {cold_wall:?} -> {warm_wall:?})"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
