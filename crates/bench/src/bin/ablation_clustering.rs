//! Ablation A1 — the contribution of phase-1 clustering.
//!
//! Maps every kernel twice: with the Sarkar-style clustering / ALU data-path
//! mapping of Section VI-A, and with clustering disabled (every operation is
//! its own cluster). Reports schedule length, cycles and inter-ALU traffic.

use fpfa_core::baseline;
use fpfa_core::pipeline::Mapper;

fn main() {
    println!("A1 — effect of clustering (Sarkar edge-zeroing + ALU data-path packing)");
    println!(
        "{:<12} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "kernel", "clusters", "flat", "levels", "flat", "cycles", "flat", "traffic", "flat"
    );
    for kernel in fpfa_workloads::registry() {
        let clustered = Mapper::new()
            .map_source(&kernel.source)
            .expect("kernel maps");
        let flat = baseline::unclustered(&kernel.source).expect("baseline maps");
        let traffic = clustered
            .clustered
            .inter_cluster_values(&clustered.mapping_graph);
        let traffic_flat = flat.clustered.inter_cluster_values(&flat.mapping_graph);
        println!(
            "{:<12} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
            kernel.name,
            clustered.report.clusters,
            flat.report.clusters,
            clustered.report.levels,
            flat.report.levels,
            clustered.report.cycles,
            flat.report.cycles,
            traffic,
            traffic_flat
        );
    }
    println!(
        "\n(\"flat\" columns: clustering disabled; traffic = values crossing cluster boundaries)"
    );
}
