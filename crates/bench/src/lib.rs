//! Experiment harness for the FPFA mapping reproduction.
//!
//! The interesting code lives in the `benches/` Criterion targets and the
//! `src/bin/` experiment binaries; this library only hosts small shared
//! helpers.

pub mod table;
