//! The verbatim Section V example of the paper, plus a few frontend
//! integration cases that exercise the full lex → parse → lower chain.

use fpfa_cdfg::interp::Interpreter;
use fpfa_cdfg::{GraphStats, Value};
use fpfa_frontend::{compile, initial_state, FrontendError};

/// The FIR code exactly as printed in Section V of the paper (arrays declared
/// here because the paper's snippet assumes them in scope).
const PAPER_FIR: &str = r#"
void main() {
    int a[5]; int c[5];
    int sum; int i;
    sum = 0; i = 0;
    while (i < 5) {
        sum = sum + a[i] * c[i]; i = i + 1;
    }
}
"#;

#[test]
fn the_paper_example_compiles_and_computes_the_inner_product() {
    let program = compile(PAPER_FIR).expect("the paper's own example must compile");
    // One structured loop before any transformation.
    assert_eq!(GraphStats::of(&program.cdfg).loops, 1);

    let a = [1, 2, 3, 4, 5];
    let c = [5, 4, 3, 2, 1];
    let state = initial_state(&program.layout, &[("a", &a), ("c", &c)]);
    let mut interp = Interpreter::new(&program.cdfg);
    interp.bind("mem", Value::State(state));
    let result = interp.run().unwrap();
    let expected: i64 = a.iter().zip(c.iter()).map(|(x, y)| x * y).sum();
    assert_eq!(result.word("sum"), Some(expected));
    assert_eq!(result.word("i"), Some(5));
}

#[test]
fn comments_and_mixed_statements_lower_cleanly() {
    let source = r#"
        // kernel with comments and every statement form
        void main() {
            int a[4];          /* input */
            int best;
            int i;
            best = a[0];
            for (i = 1; i < 4; i = i + 1) {
                if (a[i] > best) {
                    best = a[i];
                }
            }
        }
    "#;
    let program = compile(source).expect("compiles");
    let state = initial_state(&program.layout, &[("a", &[3, -1, 7, 2])]);
    let mut interp = Interpreter::new(&program.cdfg);
    interp.bind("mem", Value::State(state));
    assert_eq!(interp.run().unwrap().word("best"), Some(7));
}

#[test]
fn frontend_errors_carry_positions_through_the_convenience_entry_point() {
    let err = compile("void main() {\n  int x;\n  y = 1;\n}").unwrap_err();
    match err {
        FrontendError::UndeclaredIdentifier { name, span } => {
            assert_eq!(name, "y");
            assert_eq!(span.line, 3);
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn nested_array_expressions_in_conditions_are_supported() {
    let source = r#"
        void main() {
            int a[6];
            int count;
            int i;
            count = 0;
            i = 0;
            while (i < 6) {
                if (a[i] % 2 == 0) {
                    count = count + 1;
                }
                i = i + 1;
            }
        }
    "#;
    let program = compile(source).expect("compiles");
    let state = initial_state(&program.layout, &[("a", &[2, 3, 4, 5, 6, 7])]);
    let mut interp = Interpreter::new(&program.cdfg);
    interp.bind("mem", Value::State(state));
    assert_eq!(interp.run().unwrap().word("count"), Some(3));
}
