//! C-subset frontend for the FPFA mapping flow.
//!
//! The paper's flow starts from "code written in a high level source
//! language, like C", which is "first translated into a Control Dataflow
//! graph (CDFG)". This crate provides that translation for the C subset the
//! flow needs:
//!
//! * `void main() { ... }` as the single entry function;
//! * `int` scalars and one-dimensional `int` arrays;
//! * assignments, arithmetic / logical / comparison expressions;
//! * `if`/`else` (converted to multiplexers), `while` and `for` loops
//!   (lowered to structured [`fpfa_cdfg::LoopSpec`] nodes which the
//!   transformation engine later unrolls).
//!
//! Scalars become pure dataflow values; arrays live in the *statespace* and
//! are accessed through the `FE`/`ST` primitives, with a compile-time base
//! address per array recorded in the returned [`MemoryLayout`]. This differs
//! from the paper's internal toolset only in that scalar locals are kept in
//! dataflow form instead of being stored to the statespace; the array
//! traffic — what the figures of the paper count — is identical.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), fpfa_frontend::FrontendError> {
//! let source = r#"
//!     void main() {
//!         int a[4];
//!         int sum;
//!         int i;
//!         sum = 0;
//!         i = 0;
//!         while (i < 4) {
//!             sum = sum + a[i];
//!             i = i + 1;
//!         }
//!     }
//! "#;
//! let program = fpfa_frontend::compile(source)?;
//! assert!(program.layout.array("a").is_some());
//! assert!(program.cdfg.output_named("sum").is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod layout;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod source;
pub mod token;

pub use error::FrontendError;
pub use layout::{ArraySymbol, MemoryLayout};
pub use lower::{lower, Program};
pub use source::{render_annotated, render_snippet, LineIndex};
pub use token::Span;

use fpfa_cdfg::StateSpace;

/// Compiles a C-subset source string into a CDFG program.
///
/// This is the convenience entry point combining [`lexer`], [`parser`] and
/// [`lower()`].
///
/// # Errors
/// Returns a [`FrontendError`] describing the first lexical, syntactic or
/// semantic problem found.
pub fn compile(source: &str) -> Result<Program, FrontendError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens)?;
    lower::lower(&unit)
}

/// Builds an initial statespace for a compiled program from named arrays.
///
/// Each `(name, values)` pair is placed at the base address the frontend
/// assigned to that array. Unknown array names are ignored so callers can
/// share one data set across kernels.
pub fn initial_state(layout: &MemoryLayout, arrays: &[(&str, &[i64])]) -> StateSpace {
    let mut state = StateSpace::new();
    for (name, values) in arrays {
        if let Some(sym) = layout.array(name) {
            let n = values.len().min(sym.len);
            state.store_array(sym.base, &values[..n]);
        }
    }
    state
}
