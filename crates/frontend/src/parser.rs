//! Recursive-descent parser for the C subset.

use crate::ast::{AstBinOp, Expr, Function, LValue, Stmt, TranslationUnit};
use crate::error::FrontendError;
use crate::token::{Span, Token, TokenKind};
use fpfa_cdfg::{BinOp, UnOp};

/// Parses a token stream into a translation unit.
///
/// # Errors
/// Returns [`FrontendError::UnexpectedToken`] (or another frontend error) on
/// the first syntax problem.
pub fn parse(tokens: &[Token]) -> Result<TranslationUnit, FrontendError> {
    Parser { tokens, pos: 0 }.translation_unit()
}

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
}

impl<'t> Parser<'t> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let tok = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, FrontendError> {
        if self.peek_kind() == &kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> FrontendError {
        FrontendError::UnexpectedToken {
            expected: expected.to_string(),
            found: self.peek_kind().to_string(),
            span: self.span(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), FrontendError> {
        let span = self.span();
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    // ------------------------------------------------------------------
    // Grammar
    // ------------------------------------------------------------------

    fn translation_unit(&mut self) -> Result<TranslationUnit, FrontendError> {
        let mut unit = TranslationUnit::default();
        while self.peek_kind() != &TokenKind::Eof {
            unit.functions.push(self.function()?);
        }
        Ok(unit)
    }

    fn function(&mut self) -> Result<Function, FrontendError> {
        let span = self.span();
        // Return type: void or int (ignored; the subset has no return value).
        if !self.eat(&TokenKind::KwVoid) && !self.eat(&TokenKind::KwInt) {
            return Err(self.unexpected("`void` or `int` return type"));
        }
        let (name, _) = self.ident("function name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        // Parameter list: empty or `void`.
        if !self.eat(&TokenKind::KwVoid) && self.peek_kind() != &TokenKind::RParen {
            return Err(FrontendError::Unsupported {
                feature: "function parameters".into(),
                span: self.span(),
            });
        }
        self.expect(TokenKind::RParen, "`)`")?;
        let body = self.block()?;
        Ok(Function { name, body, span })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek_kind() != &TokenKind::RBrace {
            if self.peek_kind() == &TokenKind::Eof {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.statement()?);
        }
        self.expect(TokenKind::RBrace, "`}`")?;
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        match self.peek_kind().clone() {
            TokenKind::Semicolon => {
                self.bump();
                Ok(Stmt::Empty { span })
            }
            TokenKind::KwInt => self.declaration(),
            TokenKind::KwIf => self.if_statement(),
            TokenKind::KwWhile => self.while_statement(),
            TokenKind::KwFor => self.for_statement(),
            TokenKind::KwReturn => Err(FrontendError::Unsupported {
                feature:
                    "return statements (kernels communicate through arrays and final scalar values)"
                        .into(),
                span,
            }),
            TokenKind::Ident(_) => self.assignment(),
            _ => Err(self.unexpected("a statement")),
        }
    }

    fn declaration(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        self.expect(TokenKind::KwInt, "`int`")?;
        let (name, name_span) = self.ident("variable name")?;
        if self.eat(&TokenKind::LBracket) {
            let len_span = self.span();
            let len = match self.peek_kind().clone() {
                TokenKind::Int(v) => {
                    self.bump();
                    v
                }
                _ => {
                    return Err(FrontendError::BadArraySize {
                        name,
                        span: len_span,
                    })
                }
            };
            if len <= 0 {
                return Err(FrontendError::BadArraySize {
                    name,
                    span: len_span,
                });
            }
            self.expect(TokenKind::RBracket, "`]`")?;
            self.expect(TokenKind::Semicolon, "`;`")?;
            Ok(Stmt::DeclArray { name, len, span })
        } else {
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expression()?)
            } else {
                None
            };
            self.expect(TokenKind::Semicolon, "`;`")?;
            let _ = name_span;
            Ok(Stmt::DeclScalar { name, init, span })
        }
    }

    fn assignment(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        let (name, name_span) = self.ident("assignment target")?;
        let target = if self.eat(&TokenKind::LBracket) {
            let index = self.expression()?;
            self.expect(TokenKind::RBracket, "`]`")?;
            LValue::Index {
                name,
                index,
                span: name_span,
            }
        } else {
            LValue::Var {
                name,
                span: name_span,
            }
        };
        self.expect(TokenKind::Assign, "`=`")?;
        let value = self.expression()?;
        self.expect(TokenKind::Semicolon, "`;`")?;
        Ok(Stmt::Assign {
            target,
            value,
            span,
        })
    }

    fn if_statement(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        self.expect(TokenKind::KwIf, "`if`")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let cond = self.expression()?;
        self.expect(TokenKind::RParen, "`)`")?;
        let then_branch = self.block_or_single()?;
        let else_branch = if self.eat(&TokenKind::KwElse) {
            self.block_or_single()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            span,
        })
    }

    fn while_statement(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        self.expect(TokenKind::KwWhile, "`while`")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let cond = self.expression()?;
        self.expect(TokenKind::RParen, "`)`")?;
        let body = self.block_or_single()?;
        Ok(Stmt::While { cond, body, span })
    }

    /// `for (init; cond; step) body` is desugared to
    /// `init; while (cond) { body; step; }`.
    ///
    /// The init and step clauses must be assignments (or empty); the
    /// desugared form is returned as a two-statement `If`-free sequence
    /// wrapped in the surrounding block by the caller.
    fn for_statement(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        self.expect(TokenKind::KwFor, "`for`")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let init = if self.peek_kind() == &TokenKind::Semicolon {
            self.bump();
            None
        } else {
            Some(self.assignment()?)
        };
        let cond = if self.peek_kind() == &TokenKind::Semicolon {
            // An empty condition would loop forever; the mapping flow cannot
            // handle that, so reject it here.
            return Err(FrontendError::Unsupported {
                feature: "`for` loops without a condition".into(),
                span: self.span(),
            });
        } else {
            self.expression()?
        };
        self.expect(TokenKind::Semicolon, "`;`")?;
        let step = if self.peek_kind() == &TokenKind::RParen {
            None
        } else {
            Some(self.for_step()?)
        };
        self.expect(TokenKind::RParen, "`)`")?;
        let mut body = self.block_or_single()?;
        if let Some(step) = step {
            body.push(step);
        }
        let while_stmt = Stmt::While { cond, body, span };
        Ok(match init {
            Some(init) => Stmt::Block {
                body: vec![init, while_stmt],
                span,
            },
            None => while_stmt,
        })
    }

    /// Parses the step clause of a `for` loop: an assignment without the
    /// trailing semicolon.
    fn for_step(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        let (name, name_span) = self.ident("assignment target")?;
        let target = if self.eat(&TokenKind::LBracket) {
            let index = self.expression()?;
            self.expect(TokenKind::RBracket, "`]`")?;
            LValue::Index {
                name,
                index,
                span: name_span,
            }
        } else {
            LValue::Var {
                name,
                span: name_span,
            }
        };
        self.expect(TokenKind::Assign, "`=`")?;
        let value = self.expression()?;
        Ok(Stmt::Assign {
            target,
            value,
            span,
        })
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        if self.peek_kind() == &TokenKind::LBrace {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expression(&mut self) -> Result<Expr, FrontendError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let Some((op, prec)) = binary_op(self.peek_kind()) else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            let span = self.span();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontendError> {
        let span = self.span();
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
                span,
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, FrontendError> {
        let span = self.span();
        match self.peek_kind().clone() {
            TokenKind::Int(value) => {
                self.bump();
                Ok(Expr::Literal { value, span })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expression()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LBracket) {
                    let index = self.expression()?;
                    self.expect(TokenKind::RBracket, "`]`")?;
                    Ok(Expr::Index {
                        name,
                        index: Box::new(index),
                        span,
                    })
                } else if self.peek_kind() == &TokenKind::LParen {
                    Err(FrontendError::Unsupported {
                        feature: format!(
                            "call to `{name}` (function calls are not part of the subset)"
                        ),
                        span,
                    })
                } else {
                    Ok(Expr::Var { name, span })
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

/// Operator token → AST operator and precedence (higher binds tighter).
fn binary_op(kind: &TokenKind) -> Option<(AstBinOp, u8)> {
    let (op, prec) = match kind {
        TokenKind::Star => (AstBinOp::Word(BinOp::Mul), 10),
        TokenKind::Slash => (AstBinOp::Word(BinOp::Div), 10),
        TokenKind::Percent => (AstBinOp::Word(BinOp::Rem), 10),
        TokenKind::Plus => (AstBinOp::Word(BinOp::Add), 9),
        TokenKind::Minus => (AstBinOp::Word(BinOp::Sub), 9),
        TokenKind::Shl => (AstBinOp::Word(BinOp::Shl), 8),
        TokenKind::Shr => (AstBinOp::Word(BinOp::Shr), 8),
        TokenKind::Lt => (AstBinOp::Word(BinOp::Lt), 7),
        TokenKind::Le => (AstBinOp::Word(BinOp::Le), 7),
        TokenKind::Gt => (AstBinOp::Word(BinOp::Gt), 7),
        TokenKind::Ge => (AstBinOp::Word(BinOp::Ge), 7),
        TokenKind::EqEq => (AstBinOp::Word(BinOp::Eq), 6),
        TokenKind::NotEq => (AstBinOp::Word(BinOp::Ne), 6),
        TokenKind::Amp => (AstBinOp::Word(BinOp::And), 5),
        TokenKind::Caret => (AstBinOp::Word(BinOp::Xor), 4),
        TokenKind::Pipe => (AstBinOp::Word(BinOp::Or), 3),
        TokenKind::AndAnd => (AstBinOp::LogicalAnd, 2),
        TokenKind::OrOr => (AstBinOp::LogicalOr, 1),
        _ => return None,
    };
    Some((op, prec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<TranslationUnit, FrontendError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_the_paper_fir_example() {
        let unit = parse_src(
            r#"
            void main() {
                int a[5];
                int c[5];
                int sum;
                int i;
                sum = 0; i = 0;
                while (i < 5) {
                    sum = sum + a[i] * c[i]; i = i + 1;
                }
            }
            "#,
        )
        .unwrap();
        let main = unit.function("main").unwrap();
        assert_eq!(main.body.len(), 7);
        assert!(matches!(main.body.last().unwrap(), Stmt::While { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let unit = parse_src("void main() { int x; x = 1 + 2 * 3; }").unwrap();
        let Stmt::Assign { value, .. } = &unit.functions[0].body[1] else {
            panic!("expected assignment");
        };
        let Expr::Binary { op, rhs, .. } = value else {
            panic!("expected binary expression");
        };
        assert_eq!(*op, AstBinOp::Word(BinOp::Add));
        assert!(matches!(
            rhs.as_ref(),
            Expr::Binary {
                op: AstBinOp::Word(BinOp::Mul),
                ..
            }
        ));
    }

    #[test]
    fn parentheses_override_precedence() {
        let unit = parse_src("void main() { int x; x = (1 + 2) * 3; }").unwrap();
        let Stmt::Assign { value, .. } = &unit.functions[0].body[1] else {
            panic!("expected assignment");
        };
        assert!(matches!(
            value,
            Expr::Binary {
                op: AstBinOp::Word(BinOp::Mul),
                ..
            }
        ));
    }

    #[test]
    fn parses_if_else_and_unaries() {
        let unit = parse_src(
            "void main() { int x; int y; x = 1; if (!x && ~x != -1) { y = 2; } else y = 3; }",
        )
        .unwrap();
        assert!(matches!(
            unit.functions[0].body.last().unwrap(),
            Stmt::If { .. }
        ));
    }

    #[test]
    fn for_loops_are_desugared() {
        let unit = parse_src(
            "void main() { int s; int i; s = 0; for (i = 0; i < 4; i = i + 1) { s = s + i; } }",
        )
        .unwrap();
        // The for loop becomes a block containing init + while.
        let Stmt::Block {
            body: desugared, ..
        } = unit.functions[0].body.last().unwrap()
        else {
            panic!("expected desugared for loop");
        };
        assert_eq!(desugared.len(), 2);
        let Stmt::While { body, .. } = &desugared[1] else {
            panic!("expected while inside desugared for");
        };
        // Body = original statement + step.
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn rejects_function_calls() {
        let err = parse_src("void main() { int x; x = f(1); }").unwrap_err();
        assert!(matches!(err, FrontendError::Unsupported { .. }));
    }

    #[test]
    fn rejects_bad_array_sizes() {
        assert!(matches!(
            parse_src("void main() { int a[0]; }").unwrap_err(),
            FrontendError::BadArraySize { .. }
        ));
        assert!(matches!(
            parse_src("void main() { int a[n]; }").unwrap_err(),
            FrontendError::BadArraySize { .. }
        ));
    }

    #[test]
    fn reports_unexpected_tokens_with_position() {
        let err = parse_src("void main() { int x = ; }").unwrap_err();
        let FrontendError::UnexpectedToken { span, .. } = err else {
            panic!("expected unexpected-token error");
        };
        assert_eq!(span.line, 1);
    }

    #[test]
    fn rejects_missing_brace() {
        let err = parse_src("void main() { int x;").unwrap_err();
        assert!(matches!(err, FrontendError::UnexpectedToken { .. }));
    }

    #[test]
    fn parses_multiple_functions() {
        let unit = parse_src("void main() { } void other() { }").unwrap();
        assert_eq!(unit.functions.len(), 2);
    }
}
