//! Source-position utilities: byte-offset ↔ line:column mapping and
//! caret-snippet rendering for diagnostics.
//!
//! The lexer tracks 1-based line/column positions directly ([`Span`]); this
//! module supplies the inverse mapping (a [`LineIndex`] over the raw byte
//! text) and the presentation layer that turns a span into a `rustc`-style
//! annotated source excerpt:
//!
//! ```text
//! kernel.c:2:24: error[FS003]: `acc` may be read before assignment
//!   2 |     while (i < 4) { acc = acc + 1; i = i + 1; }
//!     |                     ^
//! ```

use crate::token::Span;
use std::fmt::Write as _;

/// Byte-offset index of a source text: maps byte offsets to 1-based
/// line/column [`Span`]s and back, and exposes the raw text of each line.
#[derive(Clone, Debug)]
pub struct LineIndex<'s> {
    source: &'s str,
    /// Byte offset of the first byte of each line (line 1 starts at 0).
    line_starts: Vec<usize>,
}

impl<'s> LineIndex<'s> {
    /// Builds the index for `source`.
    pub fn new(source: &'s str) -> Self {
        let mut line_starts = vec![0];
        for (offset, byte) in source.bytes().enumerate() {
            if byte == b'\n' {
                line_starts.push(offset + 1);
            }
        }
        LineIndex {
            source,
            line_starts,
        }
    }

    /// Number of lines in the source (at least 1, even for empty input).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Maps a byte offset to its 1-based line/column span. Offsets past the
    /// end of the text clamp to one past the last character.
    pub fn span_of_offset(&self, offset: usize) -> Span {
        let offset = offset.min(self.source.len());
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let column = offset - self.line_starts[line] + 1;
        Span::new(line as u32 + 1, column as u32)
    }

    /// Maps a 1-based line/column span back to a byte offset, when the span
    /// lies inside the text.
    pub fn offset_of_span(&self, span: Span) -> Option<usize> {
        let line = (span.line as usize).checked_sub(1)?;
        let start = *self.line_starts.get(line)?;
        let column = (span.column as usize).checked_sub(1)?;
        let end = self
            .line_starts
            .get(line + 1)
            .copied()
            .unwrap_or(self.source.len());
        let offset = start + column;
        (offset <= end).then_some(offset)
    }

    /// The raw text of a 1-based line, without its trailing newline.
    pub fn line_text(&self, line: u32) -> Option<&'s str> {
        let index = (line as usize).checked_sub(1)?;
        let start = *self.line_starts.get(index)?;
        let end = self
            .line_starts
            .get(index + 1)
            .map(|e| e - 1)
            .unwrap_or(self.source.len());
        self.source
            .get(start..end)
            .map(|l| l.trim_end_matches('\r'))
    }
}

/// Renders a caret snippet for `span` over `source`:
///
/// ```text
///   12 |     acc = acc + x;
///      |           ^
/// ```
///
/// Returns an empty string when the span does not point into the text (for
/// example a span synthesised for end-of-input).
pub fn render_snippet(source: &str, span: Span) -> String {
    let index = LineIndex::new(source);
    let Some(text) = index.line_text(span.line) else {
        return String::new();
    };
    let gutter = span.line.to_string();
    let pad = " ".repeat(gutter.len());
    // The caret column counts characters, matching the lexer's columns.
    let caret_offset: usize = text
        .chars()
        .take((span.column as usize).saturating_sub(1))
        .map(|c| if c == '\t' { 4 } else { 1 })
        .sum();
    let display: String = text
        .chars()
        .map(|c| {
            if c == '\t' {
                "    ".to_string()
            } else {
                c.to_string()
            }
        })
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "  {gutter} | {display}");
    let _ = write!(out, "  {pad} | {}^", " ".repeat(caret_offset));
    out
}

/// Renders a full one-line header plus caret snippet for a diagnostic at
/// `span`: `file:line:col: <label>` followed by the annotated source line.
pub fn render_annotated(file: &str, source: &str, span: Span, label: &str) -> String {
    let snippet = render_snippet(source, span);
    if snippet.is_empty() {
        format!("{file}:{span}: {label}")
    } else {
        format!("{file}:{span}: {label}\n{snippet}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_round_trip_through_spans() {
        let src = "ab\ncde\n\nf";
        let index = LineIndex::new(src);
        assert_eq!(index.line_count(), 4);
        for (offset, _) in src.char_indices() {
            let span = index.span_of_offset(offset);
            assert_eq!(index.offset_of_span(span), Some(offset));
        }
        assert_eq!(index.span_of_offset(3), Span::new(2, 1));
        assert_eq!(index.span_of_offset(100), Span::new(4, 2));
        assert_eq!(index.line_text(2), Some("cde"));
        assert_eq!(index.line_text(3), Some(""));
        assert_eq!(index.line_text(9), None);
    }

    #[test]
    fn snippet_places_the_caret() {
        let src = "void main() {\n  int x;\n}";
        let snippet = render_snippet(src, Span::new(2, 7));
        assert_eq!(snippet, "  2 |   int x;\n    |       ^");
    }

    #[test]
    fn annotated_render_includes_file_and_label() {
        let src = "int x;";
        let text = render_annotated("kernel.c", src, Span::new(1, 5), "error[FS001]: unused `x`");
        assert!(text.starts_with("kernel.c:1:5: error[FS001]: unused `x`\n"));
        assert!(text.contains("^"));
        // Out-of-range spans degrade to the header alone.
        let bare = render_annotated("kernel.c", src, Span::new(9, 1), "oops");
        assert_eq!(bare, "kernel.c:9:1: oops");
    }
}
