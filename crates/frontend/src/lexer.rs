//! Hand-written lexer for the C subset.

use crate::error::FrontendError;
use crate::token::{Span, Token, TokenKind};

/// Splits source text into tokens.
///
/// # Errors
/// Returns [`FrontendError::UnexpectedChar`],
/// [`FrontendError::IntegerOverflow`] or
/// [`FrontendError::UnterminatedComment`] on malformed input.
pub fn lex(source: &str) -> Result<Vec<Token>, FrontendError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    column: u32,
    _source: &'s str,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            _source: source,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.column)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos += 1;
        if ch == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(ch)
    }

    fn run(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(ch) = self.peek() else {
                tokens.push(Token::new(TokenKind::Eof, span));
                return Ok(tokens);
            };
            let kind = if ch.is_ascii_digit() {
                self.lex_number(span)?
            } else if ch.is_ascii_alphabetic() || ch == '_' {
                self.lex_ident()
            } else {
                self.lex_symbol(span)?
            };
            tokens.push(Token::new(kind, span));
        }
    }

    fn skip_trivia(&mut self) -> Result<(), FrontendError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(FrontendError::UnterminatedComment { span: start })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self, span: Span) -> Result<TokenKind, FrontendError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| FrontendError::IntegerOverflow {
                literal: text,
                span,
            })
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match text.as_str() {
            "void" => TokenKind::KwVoid,
            "int" => TokenKind::KwInt,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            _ => TokenKind::Ident(text),
        }
    }

    fn lex_symbol(&mut self, span: Span) -> Result<TokenKind, FrontendError> {
        let ch = self.bump().expect("caller checked peek()");
        let two = |lexer: &mut Self, next: char, double: TokenKind, single: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                double
            } else {
                single
            }
        };
        let kind = match ch {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ';' => TokenKind::Semicolon,
            ',' => TokenKind::Comma,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '^' => TokenKind::Caret,
            '~' => TokenKind::Tilde,
            '=' => two(self, '=', TokenKind::EqEq, TokenKind::Assign),
            '!' => two(self, '=', TokenKind::NotEq, TokenKind::Bang),
            '&' => two(self, '&', TokenKind::AndAnd, TokenKind::Amp),
            '|' => two(self, '|', TokenKind::OrOr, TokenKind::Pipe),
            '<' => {
                if self.peek() == Some('<') {
                    self.bump();
                    TokenKind::Shl
                } else {
                    two(self, '=', TokenKind::Le, TokenKind::Lt)
                }
            }
            '>' => {
                if self.peek() == Some('>') {
                    self.bump();
                    TokenKind::Shr
                } else {
                    two(self, '=', TokenKind::Ge, TokenKind::Gt)
                }
            }
            other => return Err(FrontendError::UnexpectedChar { ch: other, span }),
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_fir_snippet() {
        let toks = kinds("sum = sum + a[i] * c[i]; i = i + 1;");
        assert_eq!(toks[0], TokenKind::Ident("sum".into()));
        assert_eq!(toks[1], TokenKind::Assign);
        assert!(toks.contains(&TokenKind::LBracket));
        assert!(toks.contains(&TokenKind::Star));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn keywords_and_identifiers() {
        let toks = kinds("void int if else while for return whilex");
        assert_eq!(
            toks[..8],
            [
                TokenKind::KwVoid,
                TokenKind::KwInt,
                TokenKind::KwIf,
                TokenKind::KwElse,
                TokenKind::KwWhile,
                TokenKind::KwFor,
                TokenKind::KwReturn,
                TokenKind::Ident("whilex".into()),
            ]
        );
    }

    #[test]
    fn two_character_operators() {
        let toks = kinds("<= >= == != && || << >> < >");
        assert_eq!(
            toks[..10],
            [
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::Lt,
                TokenKind::Gt,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a // line comment\n /* block\n comment */ b");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_reported() {
        let err = lex("x /* never closed").unwrap_err();
        assert!(matches!(err, FrontendError::UnterminatedComment { .. }));
    }

    #[test]
    fn unexpected_character_is_reported() {
        let err = lex("a @ b").unwrap_err();
        assert!(matches!(err, FrontendError::UnexpectedChar { ch: '@', .. }));
    }

    #[test]
    fn integer_overflow_is_reported() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(matches!(err, FrontendError::IntegerOverflow { .. }));
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }
}
