//! Statespace memory layout assigned by the frontend.
//!
//! Every array declared in the source program is given a contiguous range of
//! statespace addresses; element `a[i]` lives at `base(a) + i`. The layout is
//! returned alongside the CDFG so that callers can pre-load input data and
//! read back results at the right addresses.

use std::fmt;

/// One array placed in the statespace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArraySymbol {
    /// Array name as written in the source.
    pub name: String,
    /// Base address of element 0.
    pub base: i64,
    /// Number of elements.
    pub len: usize,
}

impl ArraySymbol {
    /// Address of element `index`.
    ///
    /// Wraps on overflow, consistent with the wrapping address arithmetic of
    /// the statespace and `BinOp::eval`.
    pub fn address(&self, index: usize) -> i64 {
        self.base.wrapping_add(index as i64)
    }
}

/// The complete statespace layout of a compiled program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MemoryLayout {
    arrays: Vec<ArraySymbol>,
    next_free: i64,
}

impl MemoryLayout {
    /// Creates an empty layout starting at address 0.
    pub fn new() -> Self {
        MemoryLayout::default()
    }

    /// Rebuilds a layout from previously allocated symbols (the mapping
    /// cache's persistence path).  The next free address resumes after the
    /// highest allocated range, matching what the equivalent sequence of
    /// [`allocate`](Self::allocate) calls would have produced.
    pub fn from_symbols(arrays: Vec<ArraySymbol>) -> Self {
        let next_free = arrays
            .iter()
            .map(|a| a.base.wrapping_add(a.len as i64))
            .max()
            .unwrap_or(0);
        MemoryLayout { arrays, next_free }
    }

    /// Allocates `len` consecutive addresses for array `name` and returns the
    /// new symbol, or `None` when the array would overflow the statespace
    /// address range (allocating anyway would silently alias earlier arrays).
    pub fn allocate(&mut self, name: impl Into<String>, len: usize) -> Option<ArraySymbol> {
        let next_free = i64::try_from(len)
            .ok()
            .and_then(|len| self.next_free.checked_add(len))?;
        let sym = ArraySymbol {
            name: name.into(),
            base: self.next_free,
            len,
        };
        self.next_free = next_free;
        self.arrays.push(sym.clone());
        Some(sym)
    }

    /// Looks up an array by name.
    pub fn array(&self, name: &str) -> Option<&ArraySymbol> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// All allocated arrays in declaration order.
    pub fn arrays(&self) -> &[ArraySymbol] {
        &self.arrays
    }

    /// Total number of statespace words allocated.
    pub fn total_words(&self) -> usize {
        self.arrays.iter().map(|a| a.len).sum()
    }
}

impl fmt::Display for MemoryLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for sym in &self.arrays {
            writeln!(
                f,
                "{:<12} base {:<5} len {:<5}",
                sym.name, sym.base, sym.len
            )?;
        }
        write!(f, "total {} words", self.total_words())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_contiguous() {
        let mut layout = MemoryLayout::new();
        let a = layout.allocate("a", 5).unwrap();
        let b = layout.allocate("b", 3).unwrap();
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 5);
        assert_eq!(a.address(4), 4);
        assert_eq!(b.address(2), 7);
        assert_eq!(layout.total_words(), 8);
    }

    #[test]
    fn lookup_by_name() {
        let mut layout = MemoryLayout::new();
        layout.allocate("coeff", 16).unwrap();
        assert!(layout.array("coeff").is_some());
        assert!(layout.array("other").is_none());
        assert_eq!(layout.arrays().len(), 1);
        assert!(layout.to_string().contains("coeff"));
    }

    #[test]
    fn exhausting_the_address_range_is_rejected_not_aliased() {
        let mut layout = MemoryLayout::new();
        layout.allocate("big", (i64::MAX - 2) as usize).unwrap();
        assert!(layout.allocate("more", 4).is_none());
        // The failed allocation left no symbol behind.
        assert!(layout.array("more").is_none());
    }
}
