//! Lexical tokens of the C subset.

use std::fmt;

/// Position of a token in the source text (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(line: u32, column: u32) -> Self {
        Span { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// The kind of a lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// An identifier.
    Ident(String),
    /// `void` keyword.
    KwVoid,
    /// `int` keyword.
    KwInt,
    /// `if` keyword.
    KwIf,
    /// `else` keyword.
    KwElse,
    /// `while` keyword.
    KwWhile,
    /// `for` keyword.
    KwFor,
    /// `return` keyword.
    KwReturn,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::KwVoid => write!(f, "void"),
            TokenKind::KwInt => write!(f, "int"),
            TokenKind::KwIf => write!(f, "if"),
            TokenKind::KwElse => write!(f, "else"),
            TokenKind::KwWhile => write!(f, "while"),
            TokenKind::KwFor => write!(f, "for"),
            TokenKind::KwReturn => write!(f, "return"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Amp => write!(f, "&"),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Caret => write!(f, "^"),
            TokenKind::Tilde => write!(f, "~"),
            TokenKind::Bang => write!(f, "!"),
            TokenKind::Shl => write!(f, "<<"),
            TokenKind::Shr => write!(f, ">>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What kind of token this is (and its payload, if any).
    pub kind: TokenKind,
    /// Where the token starts in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::KwWhile.to_string(), "while");
        assert_eq!(TokenKind::Shl.to_string(), "<<");
        assert_eq!(TokenKind::Int(42).to_string(), "42");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "x");
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
    }
}
