//! Lowering of the AST to a CDFG.
//!
//! * Scalar locals become pure dataflow values (an environment maps each name
//!   to the wire holding its current value).
//! * Arrays are placed in the statespace ([`crate::MemoryLayout`]); reads and
//!   writes become `FE`/`ST` primitives threaded through a single statespace
//!   token, which enters the graph as the input `mem` and leaves it as the
//!   output `mem`.
//! * `if`/`else` is if-converted: both branches are lowered and every scalar
//!   (and the statespace token) modified in either branch is merged with a
//!   multiplexer controlled by the condition.
//! * `while` loops become structured [`LoopSpec`] nodes whose condition and
//!   body are separate CDFGs over the loop-carried variables; the
//!   transformation engine unrolls them later.
//! * A scalar that is read before ever being assigned becomes a named graph
//!   input, so kernels can take scalar parameters.
//! * At the end of `main` every declared scalar that holds a value becomes a
//!   named graph output, alongside the final statespace.

use crate::ast::{AstBinOp, Expr, Function, LValue, Stmt, TranslationUnit};
use crate::error::FrontendError;
use crate::layout::MemoryLayout;
use fpfa_cdfg::builder::Wire;
use fpfa_cdfg::{BinOp, Cdfg, LoopSpec, NodeKind};
use std::collections::{BTreeSet, HashMap};

/// Name of the statespace input/output of every lowered program.
pub const STATE_NAME: &str = "mem";
/// Internal name used for the statespace as a loop-carried variable.
const STATE_VAR: &str = "@state";

/// A compiled program: the CDFG plus the statespace layout of its arrays.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// The control dataflow graph of `main`.
    pub cdfg: Cdfg,
    /// Statespace addresses of the declared arrays.
    pub layout: MemoryLayout,
}

/// Lowers a parsed translation unit (its `main` function) into a CDFG.
///
/// # Errors
/// Returns a [`FrontendError`] when `main` is missing or the body uses names
/// inconsistently (undeclared identifiers, duplicate declarations, arrays
/// used as scalars, ...).
pub fn lower(unit: &TranslationUnit) -> Result<Program, FrontendError> {
    let main = unit.function("main").ok_or(FrontendError::MissingMain)?;
    lower_function(main)
}

/// Lowers a single function definition into a CDFG.
///
/// # Errors
/// See [`lower`].
pub fn lower_function(function: &Function) -> Result<Program, FrontendError> {
    let mut layout = MemoryLayout::new();
    let mut ctx = Lowerer::new(function.name.clone(), &mut layout);
    ctx.lower_block(&function.body)?;
    let cdfg = ctx.finish()?;
    Ok(Program { cdfg, layout })
}

#[derive(Clone, Debug)]
enum Symbol {
    Scalar { value: Option<Wire> },
    Array,
}

struct Lowerer<'l> {
    graph: Cdfg,
    env: HashMap<String, Symbol>,
    /// Declaration order of scalars, for deterministic output ordering.
    scalar_order: Vec<String>,
    state: Wire,
    layout: &'l mut MemoryLayout,
    /// `true` when this lowerer builds a loop condition/body sub-graph; the
    /// statespace interface then uses [`STATE_VAR`] instead of [`STATE_NAME`].
    nested: bool,
}

impl<'l> Lowerer<'l> {
    fn new(name: String, layout: &'l mut MemoryLayout) -> Self {
        let mut graph = Cdfg::new(name);
        let mem = graph.add_node(NodeKind::Input(STATE_NAME.to_string()));
        Lowerer {
            graph,
            env: HashMap::new(),
            scalar_order: Vec::new(),
            state: Wire { node: mem, port: 0 },
            layout,
            nested: false,
        }
    }

    /// Creates a lowerer for a loop condition or body sub-graph.
    ///
    /// `arrays` lists the array names visible in the enclosing scope; their
    /// statespace bases live in the shared [`MemoryLayout`].
    fn nested(
        name: String,
        layout: &'l mut MemoryLayout,
        carried: &[String],
        arrays: &[String],
    ) -> Self {
        let mut graph = Cdfg::new(name);
        let mut env = HashMap::new();
        let mut scalar_order = Vec::new();
        let mut state = None;
        for array in arrays {
            env.insert(array.clone(), Symbol::Array);
        }
        for var in carried {
            let id = graph.add_node(NodeKind::Input(var.clone()));
            let wire = Wire { node: id, port: 0 };
            if var == STATE_VAR {
                state = Some(wire);
            } else {
                env.insert(var.clone(), Symbol::Scalar { value: Some(wire) });
                scalar_order.push(var.clone());
            }
        }
        let state = state.unwrap_or_else(|| {
            // The loop does not touch the statespace; a dummy input keeps the
            // wire plumbing uniform but is never referenced.
            let id = graph.add_node(NodeKind::Const(0));
            Wire { node: id, port: 0 }
        });
        Lowerer {
            graph,
            env,
            scalar_order,
            state,
            layout,
            nested: true,
        }
    }

    fn constant(&mut self, value: i64) -> Wire {
        let id = self.graph.add_node(NodeKind::Const(value));
        Wire { node: id, port: 0 }
    }

    fn binop(&mut self, op: BinOp, a: Wire, b: Wire) -> Wire {
        let id = self.graph.add_node(NodeKind::BinOp(op));
        self.graph
            .connect(a.node, a.port, id, 0)
            .expect("wires produced by this lowerer are valid");
        self.graph
            .connect(b.node, b.port, id, 1)
            .expect("wires produced by this lowerer are valid");
        Wire { node: id, port: 0 }
    }

    fn mux(&mut self, cond: Wire, if_true: Wire, if_false: Wire) -> Wire {
        let id = self.graph.add_node(NodeKind::Mux);
        for (port, w) in [cond, if_true, if_false].into_iter().enumerate() {
            self.graph
                .connect(w.node, w.port, id, port)
                .expect("wires produced by this lowerer are valid");
        }
        Wire { node: id, port: 0 }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn lower_block(&mut self, stmts: &[Stmt]) -> Result<(), FrontendError> {
        for stmt in stmts {
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), FrontendError> {
        match stmt {
            Stmt::Empty { .. } => Ok(()),
            Stmt::Block { body, .. } => self.lower_block(body),
            Stmt::DeclScalar { name, init, span } => {
                if self.env.contains_key(name) {
                    return Err(FrontendError::DuplicateDeclaration {
                        name: name.clone(),
                        span: *span,
                    });
                }
                let value = match init {
                    Some(expr) => Some(self.lower_expr(expr)?),
                    None => None,
                };
                self.env.insert(name.clone(), Symbol::Scalar { value });
                self.scalar_order.push(name.clone());
                Ok(())
            }
            Stmt::DeclArray { name, len, span } => {
                if self.env.contains_key(name) {
                    return Err(FrontendError::DuplicateDeclaration {
                        name: name.clone(),
                        span: *span,
                    });
                }
                if self.layout.allocate(name.clone(), *len as usize).is_none() {
                    return Err(FrontendError::AddressSpaceExhausted {
                        name: name.clone(),
                        span: *span,
                    });
                }
                self.env.insert(name.clone(), Symbol::Array);
                Ok(())
            }
            Stmt::Assign {
                target,
                value,
                span: _,
            } => {
                let value_wire = self.lower_expr(value)?;
                match target {
                    LValue::Var { name, span } => match self.env.get_mut(name) {
                        Some(Symbol::Scalar { value }) => {
                            *value = Some(value_wire);
                            Ok(())
                        }
                        Some(Symbol::Array) => Err(FrontendError::KindMismatch {
                            name: name.clone(),
                            expected: "a scalar",
                            span: *span,
                        }),
                        None => Err(FrontendError::UndeclaredIdentifier {
                            name: name.clone(),
                            span: *span,
                        }),
                    },
                    LValue::Index { name, index, span } => {
                        let address = self.array_address(name, index, *span)?;
                        let st = self.graph.add_node(NodeKind::Store);
                        let state = self.state;
                        self.graph
                            .connect(state.node, state.port, st, 0)
                            .expect("valid wires");
                        self.graph
                            .connect(address.node, address.port, st, 1)
                            .expect("valid wires");
                        self.graph
                            .connect(value_wire.node, value_wire.port, st, 2)
                            .expect("valid wires");
                        self.state = Wire { node: st, port: 0 };
                        Ok(())
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => self.lower_if(cond, then_branch, else_branch),
            Stmt::While { cond, body, span } => self.lower_while(cond, body, *span),
        }
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then_branch: &[Stmt],
        else_branch: &[Stmt],
    ) -> Result<(), FrontendError> {
        let cond_wire = self.lower_expr(cond)?;

        // Lower both branches on snapshots of the environment, then merge.
        let snapshot_env = self.env.clone();
        let snapshot_order = self.scalar_order.clone();
        let snapshot_state = self.state;

        self.lower_block(then_branch)?;
        let then_env = self.env.clone();
        let then_state = self.state;

        self.env = snapshot_env.clone();
        self.scalar_order = snapshot_order.clone();
        self.state = snapshot_state;
        self.lower_block(else_branch)?;
        let else_env = self.env.clone();
        let else_state = self.state;

        // Restore the pre-branch scope (declarations inside branches do not
        // escape) and merge modified values.
        self.env = snapshot_env.clone();
        self.scalar_order = snapshot_order;
        for (name, symbol) in &snapshot_env {
            let Symbol::Scalar { value: before } = symbol else {
                continue;
            };
            let then_value = match then_env.get(name) {
                Some(Symbol::Scalar { value }) => *value,
                _ => *before,
            };
            let else_value = match else_env.get(name) {
                Some(Symbol::Scalar { value }) => *value,
                _ => *before,
            };
            let merged = match (then_value, else_value) {
                (Some(t), Some(e)) if t != e => Some(self.mux(cond_wire, t, e)),
                (t, e) => {
                    if t == e {
                        t
                    } else {
                        // One branch assigned a previously-unset variable; the
                        // other path keeps it unset. Materialise the unset
                        // side as 0 so the merge is well defined.
                        let zero = self.constant(0);
                        let t = t.unwrap_or(zero);
                        let e = e.unwrap_or(zero);
                        Some(self.mux(cond_wire, t, e))
                    }
                }
            };
            self.env
                .insert(name.clone(), Symbol::Scalar { value: merged });
        }
        self.state = if then_state != else_state {
            self.mux(cond_wire, then_state, else_state)
        } else {
            then_state
        };
        Ok(())
    }

    fn lower_while(
        &mut self,
        cond: &Expr,
        body: &[Stmt],
        span: crate::token::Span,
    ) -> Result<(), FrontendError> {
        // Collect the loop-carried variables: every outer scalar referenced
        // in the condition or body, plus the statespace when arrays are
        // touched.
        let mut usage = Usage::default();
        collect_expr(cond, &mut usage);
        collect_stmts(body, &mut usage);

        let mut carried: Vec<String> = Vec::new();
        for name in usage.names() {
            match self.env.get(&name) {
                Some(Symbol::Scalar { .. }) => carried.push(name),
                Some(Symbol::Array) => {}
                None => {
                    // Declared inside the loop body; not carried. Detecting a
                    // truly undeclared identifier is deferred to the nested
                    // lowering which reports it with a precise span.
                }
            }
        }
        carried.sort();
        let touches_state = usage.touches_state;
        if touches_state {
            carried.push(STATE_VAR.to_string());
        }
        if carried.is_empty() {
            // A loop that neither reads nor writes anything observable: the
            // condition is either always false (dead code) or the loop never
            // terminates. Reject it as unsupported rather than silently
            // dropping it.
            return Err(FrontendError::Unsupported {
                feature: "loops with no observable effect".into(),
                span,
            });
        }

        // Array names visible to the loop sub-graphs.
        let visible_arrays: Vec<String> = self
            .env
            .iter()
            .filter(|(_, s)| matches!(s, Symbol::Array))
            .map(|(n, _)| n.clone())
            .collect();

        // Build the condition sub-graph.
        let cond_graph = {
            let mut sub = Lowerer::nested(
                format!("{}::cond", self.graph.name()),
                self.layout,
                &carried,
                &visible_arrays,
            );
            let wire = sub.lower_expr(cond)?;
            let out = sub
                .graph
                .add_node(NodeKind::Output(LoopSpec::COND_OUTPUT.into()));
            sub.graph
                .connect(wire.node, wire.port, out, 0)
                .expect("valid wires");
            sub.prune_dead_interface();
            sub.graph
        };

        // Build the body sub-graph.
        let body_graph = {
            let mut sub = Lowerer::nested(
                format!("{}::body", self.graph.name()),
                self.layout,
                &carried,
                &visible_arrays,
            );
            sub.lower_block(body)?;
            // Emit one output per carried variable with its final value.
            for var in &carried {
                let wire = if var == STATE_VAR {
                    sub.state
                } else {
                    match sub.env.get(var) {
                        Some(Symbol::Scalar { value: Some(w) }) => *w,
                        _ => {
                            // Not assigned in the body: pass the input through.
                            let input = sub
                                .graph
                                .input_named(var)
                                .expect("carried variables are inputs of the body graph");
                            Wire {
                                node: input,
                                port: 0,
                            }
                        }
                    }
                };
                let out = sub.graph.add_node(NodeKind::Output(var.clone()));
                sub.graph
                    .connect(wire.node, wire.port, out, 0)
                    .expect("valid wires");
            }
            sub.prune_dead_interface();
            sub.graph
        };

        // Initial values for the carried variables in the outer graph.
        let mut initial = Vec::with_capacity(carried.len());
        for var in &carried {
            let wire = if var == STATE_VAR {
                self.state
            } else {
                match self.env.get(var) {
                    // An outer value exists: use it.
                    Some(Symbol::Scalar { value: Some(w) }) => *w,
                    // No outer value. A variable that is (re)assigned inside
                    // the loop gets a don't-care initial value of 0; a
                    // variable that is only *read* by the loop is a genuine
                    // kernel input.
                    _ if usage.writes.contains(var) => self.constant(0),
                    _ => self.read_scalar(var, span)?,
                }
            };
            initial.push(wire);
        }

        let spec = LoopSpec {
            vars: carried.clone(),
            cond: cond_graph,
            body: body_graph,
        };
        let loop_node = self.graph.add_node(NodeKind::Loop(Box::new(spec)));
        for (port, wire) in initial.iter().enumerate() {
            self.graph
                .connect(wire.node, wire.port, loop_node, port)
                .expect("valid wires");
        }

        // Bind the loop outputs back into the environment.
        for (port, var) in carried.iter().enumerate() {
            let wire = Wire {
                node: loop_node,
                port,
            };
            if var == STATE_VAR {
                self.state = wire;
            } else {
                self.env
                    .insert(var.clone(), Symbol::Scalar { value: Some(wire) });
            }
        }
        Ok(())
    }

    /// Removes `Input` nodes of a nested graph that ended up unused (for
    /// example a carried variable that the condition graph never reads) so
    /// that interpretation of the sub-graph does not demand bindings for
    /// them... except that carried variables are *always* bound by the loop
    /// node, so unused inputs are kept for arity consistency. Only the dummy
    /// constant introduced when the loop does not touch the statespace is
    /// pruned here.
    fn prune_dead_interface(&mut self) {
        let dead: Vec<_> = self
            .graph
            .nodes()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Const(_)) && n.fanout() == 0)
            .map(|(id, _)| id)
            .collect();
        for id in dead {
            let _ = self.graph.remove_node(id);
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn lower_expr(&mut self, expr: &Expr) -> Result<Wire, FrontendError> {
        match expr {
            Expr::Literal { value, .. } => Ok(self.constant(*value)),
            Expr::Var { name, span } => self.read_scalar(name, *span),
            Expr::Index { name, index, span } => {
                let address = self.array_address(name, index, *span)?;
                let fe = self.graph.add_node(NodeKind::Fetch);
                let state = self.state;
                self.graph
                    .connect(state.node, state.port, fe, 0)
                    .expect("valid wires");
                self.graph
                    .connect(address.node, address.port, fe, 1)
                    .expect("valid wires");
                Ok(Wire { node: fe, port: 0 })
            }
            Expr::Unary { op, operand, .. } => {
                let w = self.lower_expr(operand)?;
                let id = self.graph.add_node(NodeKind::UnOp(*op));
                self.graph
                    .connect(w.node, w.port, id, 0)
                    .expect("valid wires");
                Ok(Wire { node: id, port: 0 })
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.lower_expr(lhs)?;
                let b = self.lower_expr(rhs)?;
                match op {
                    AstBinOp::Word(word_op) => Ok(self.binop(*word_op, a, b)),
                    AstBinOp::LogicalAnd => {
                        let an = self.normalize_bool(a);
                        let bn = self.normalize_bool(b);
                        Ok(self.binop(BinOp::And, an, bn))
                    }
                    AstBinOp::LogicalOr => {
                        let an = self.normalize_bool(a);
                        let bn = self.normalize_bool(b);
                        Ok(self.binop(BinOp::Or, an, bn))
                    }
                }
            }
        }
    }

    /// Normalises a word to 0/1 (`x != 0`).
    fn normalize_bool(&mut self, w: Wire) -> Wire {
        let zero = self.constant(0);
        self.binop(BinOp::Ne, w, zero)
    }

    fn read_scalar(&mut self, name: &str, span: crate::token::Span) -> Result<Wire, FrontendError> {
        match self.env.get(name) {
            Some(Symbol::Scalar { value: Some(w) }) => Ok(*w),
            Some(Symbol::Scalar { value: None }) => {
                // Declared but never assigned: the scalar becomes a kernel
                // input (unless we are inside a loop sub-graph, where every
                // readable scalar is already an input).
                if self.nested {
                    return Err(FrontendError::UseBeforeAssignment {
                        name: name.to_string(),
                        span,
                    });
                }
                let id = self.graph.add_node(NodeKind::Input(name.to_string()));
                let wire = Wire { node: id, port: 0 };
                self.env
                    .insert(name.to_string(), Symbol::Scalar { value: Some(wire) });
                Ok(wire)
            }
            Some(Symbol::Array) => Err(FrontendError::KindMismatch {
                name: name.to_string(),
                expected: "a scalar",
                span,
            }),
            None => Err(FrontendError::UndeclaredIdentifier {
                name: name.to_string(),
                span,
            }),
        }
    }

    fn array_address(
        &mut self,
        name: &str,
        index: &Expr,
        span: crate::token::Span,
    ) -> Result<Wire, FrontendError> {
        match self.env.get(name) {
            Some(Symbol::Array) => {}
            Some(Symbol::Scalar { .. }) => {
                return Err(FrontendError::KindMismatch {
                    name: name.to_string(),
                    expected: "an array",
                    span,
                })
            }
            None => {
                return Err(FrontendError::UndeclaredIdentifier {
                    name: name.to_string(),
                    span,
                })
            }
        }
        let base = self.layout.array(name).map(|a| a.base).ok_or_else(|| {
            FrontendError::UndeclaredIdentifier {
                name: name.to_string(),
                span,
            }
        })?;
        let index_wire = self.lower_expr(index)?;
        if base == 0 {
            return Ok(index_wire);
        }
        let base_wire = self.constant(base);
        Ok(self.binop(BinOp::Add, base_wire, index_wire))
    }

    // ------------------------------------------------------------------
    // Finalisation
    // ------------------------------------------------------------------

    fn finish(mut self) -> Result<Cdfg, FrontendError> {
        // Emit outputs for every declared scalar holding a value, in
        // declaration order, then the final statespace.
        for name in self.scalar_order.clone() {
            if let Some(Symbol::Scalar { value: Some(w) }) = self.env.get(&name).cloned() {
                let out = self.graph.add_node(NodeKind::Output(name.clone()));
                self.graph.connect(w.node, w.port, out, 0)?;
            }
        }
        let out = self
            .graph
            .add_node(NodeKind::Output(STATE_NAME.to_string()));
        let state = self.state;
        self.graph.connect(state.node, state.port, out, 0)?;
        fpfa_cdfg::validate::validate(&self.graph)?;
        Ok(self.graph)
    }
}

// ----------------------------------------------------------------------
// Variable usage analysis (for loop-carried variable discovery)
// ----------------------------------------------------------------------

#[derive(Default)]
struct Usage {
    reads: BTreeSet<String>,
    writes: BTreeSet<String>,
    /// Names declared locally inside the analysed statements; these are not
    /// loop carried.
    locals: BTreeSet<String>,
    touches_state: bool,
}

impl Usage {
    fn names(&self) -> Vec<String> {
        self.reads
            .union(&self.writes)
            .filter(|n| !self.locals.contains(*n))
            .cloned()
            .collect()
    }
}

fn collect_expr(expr: &Expr, usage: &mut Usage) {
    match expr {
        Expr::Literal { .. } => {}
        Expr::Var { name, .. } => {
            usage.reads.insert(name.clone());
        }
        Expr::Index { index, .. } => {
            usage.touches_state = true;
            collect_expr(index, usage);
        }
        Expr::Unary { operand, .. } => collect_expr(operand, usage),
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, usage);
            collect_expr(rhs, usage);
        }
    }
}

fn collect_stmts(stmts: &[Stmt], usage: &mut Usage) {
    for stmt in stmts {
        match stmt {
            Stmt::Empty { .. } => {}
            Stmt::Block { body, .. } => collect_stmts(body, usage),
            Stmt::DeclScalar { name, init, .. } => {
                if let Some(init) = init {
                    collect_expr(init, usage);
                }
                usage.locals.insert(name.clone());
            }
            Stmt::DeclArray { name, .. } => {
                usage.locals.insert(name.clone());
            }
            Stmt::Assign { target, value, .. } => {
                collect_expr(value, usage);
                match target {
                    LValue::Var { name, .. } => {
                        usage.writes.insert(name.clone());
                    }
                    LValue::Index { index, .. } => {
                        usage.touches_state = true;
                        collect_expr(index, usage);
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                collect_expr(cond, usage);
                collect_stmts(then_branch, usage);
                collect_stmts(else_branch, usage);
            }
            Stmt::While { cond, body, .. } => {
                collect_expr(cond, usage);
                collect_stmts(body, usage);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use fpfa_cdfg::interp::Interpreter;
    use fpfa_cdfg::Value;

    fn run(
        source: &str,
        arrays: &[(&str, &[i64])],
        scalars: &[(&str, i64)],
    ) -> fpfa_cdfg::interp::RunResult {
        let program = compile(source).unwrap();
        let state = crate::initial_state(&program.layout, arrays);
        let mut interp = Interpreter::new(&program.cdfg);
        interp.bind(STATE_NAME, Value::State(state));
        for (name, value) in scalars {
            interp.bind(*name, Value::Word(*value));
        }
        interp.run().unwrap()
    }

    #[test]
    fn straight_line_arithmetic() {
        let result = run(
            "void main() { int x; int y; x = 3; y = x * 4 + 2; }",
            &[],
            &[],
        );
        assert_eq!(result.word("x"), Some(3));
        assert_eq!(result.word("y"), Some(14));
    }

    #[test]
    fn scalar_inputs_are_created_for_unassigned_reads() {
        let program = compile("void main() { int n; int y; y = n * 2; }").unwrap();
        assert!(program.cdfg.input_named("n").is_some());
        let result = run(
            "void main() { int n; int y; y = n * 2; }",
            &[],
            &[("n", 21)],
        );
        assert_eq!(result.word("y"), Some(42));
    }

    #[test]
    fn array_reads_and_writes_go_through_the_statespace() {
        let src = "void main() { int a[4]; int b[4]; b[0] = a[1] + a[2]; }";
        let program = compile(src).unwrap();
        assert_eq!(program.layout.array("a").unwrap().base, 0);
        assert_eq!(program.layout.array("b").unwrap().base, 4);
        let result = run(src, &[("a", &[10, 20, 30, 40])], &[]);
        let mem = result.state(STATE_NAME).unwrap();
        assert_eq!(mem.fetch(4), Some(50));
    }

    #[test]
    fn if_else_becomes_mux() {
        let src = "void main() { int x; int y; if (x > 0) { y = 1; } else { y = 2; } }";
        let program = compile(src).unwrap();
        let stats = fpfa_cdfg::GraphStats::of(&program.cdfg);
        assert!(stats.muxes >= 1);
        assert_eq!(run(src, &[], &[("x", 5)]).word("y"), Some(1));
        assert_eq!(run(src, &[], &[("x", -5)]).word("y"), Some(2));
    }

    #[test]
    fn if_without_else_keeps_old_value() {
        let src = "void main() { int x; int y; y = 7; if (x > 0) { y = 1; } }";
        assert_eq!(run(src, &[], &[("x", 3)]).word("y"), Some(1));
        assert_eq!(run(src, &[], &[("x", 0)]).word("y"), Some(7));
    }

    #[test]
    fn conditional_store_muxes_the_statespace() {
        let src = "void main() { int a[2]; int x; if (x > 0) { a[0] = 9; } }";
        let with = run(src, &[("a", &[1, 2])], &[("x", 1)]);
        assert_eq!(with.state(STATE_NAME).unwrap().fetch(0), Some(9));
        let without = run(src, &[("a", &[1, 2])], &[("x", 0)]);
        assert_eq!(without.state(STATE_NAME).unwrap().fetch(0), Some(1));
    }

    #[test]
    fn paper_fir_example_computes_dot_product() {
        let src = r#"
            void main() {
                int a[5];
                int c[5];
                int sum;
                int i;
                sum = 0; i = 0;
                while (i < 5) {
                    sum = sum + a[i] * c[i]; i = i + 1;
                }
            }
        "#;
        let result = run(
            src,
            &[("a", &[1, 2, 3, 4, 5]), ("c", &[10, 20, 30, 40, 50])],
            &[],
        );
        assert_eq!(result.word("sum"), Some(10 + 40 + 90 + 160 + 250));
        assert_eq!(result.word("i"), Some(5));
        // The un-unrolled graph contains exactly one loop node.
        let program = compile(src).unwrap();
        assert_eq!(fpfa_cdfg::GraphStats::of(&program.cdfg).loops, 1);
    }

    #[test]
    fn for_loop_matches_while_loop() {
        let src_for =
            "void main() { int s; int i; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } }";
        let src_while =
            "void main() { int s; int i; s = 0; i = 0; while (i < 10) { s = s + i; i = i + 1; } }";
        assert_eq!(
            run(src_for, &[], &[]).word("s"),
            run(src_while, &[], &[]).word("s")
        );
        assert_eq!(run(src_for, &[], &[]).word("s"), Some(45));
    }

    #[test]
    fn nested_loops_execute() {
        let src = r#"
            void main() {
                int total;
                int i;
                int j;
                total = 0;
                i = 0;
                while (i < 3) {
                    j = 0;
                    while (j < 4) {
                        total = total + 1;
                        j = j + 1;
                    }
                    i = i + 1;
                }
            }
        "#;
        assert_eq!(run(src, &[], &[]).word("total"), Some(12));
    }

    #[test]
    fn loop_over_arrays_writes_results() {
        let src = r#"
            void main() {
                int x[4];
                int y[4];
                int i;
                i = 0;
                while (i < 4) {
                    y[i] = x[i] * x[i];
                    i = i + 1;
                }
            }
        "#;
        let result = run(src, &[("x", &[1, 2, 3, 4])], &[]);
        let mem = result.state(STATE_NAME).unwrap();
        let y_base = compile(src).unwrap().layout.array("y").unwrap().base;
        let squares: Vec<_> = (0..4).map(|i| mem.fetch(y_base + i).unwrap()).collect();
        assert_eq!(squares, vec![1, 4, 9, 16]);
    }

    #[test]
    fn logical_operators_normalise_to_bool() {
        let src = "void main() { int x; int y; int r; r = x && y || 0; }";
        assert_eq!(run(src, &[], &[("x", 5), ("y", 3)]).word("r"), Some(1));
        assert_eq!(run(src, &[], &[("x", 5), ("y", 0)]).word("r"), Some(0));
    }

    #[test]
    fn undeclared_identifier_is_rejected() {
        let err = compile("void main() { x = 1; }").unwrap_err();
        assert!(matches!(err, FrontendError::UndeclaredIdentifier { .. }));
    }

    #[test]
    fn duplicate_declaration_is_rejected() {
        let err = compile("void main() { int x; int x; }").unwrap_err();
        assert!(matches!(err, FrontendError::DuplicateDeclaration { .. }));
    }

    #[test]
    fn array_scalar_confusion_is_rejected() {
        let err = compile("void main() { int a[3]; int x; x = a + 1; }").unwrap_err();
        assert!(matches!(err, FrontendError::KindMismatch { .. }));
        let err = compile("void main() { int x; int y; y = x[0]; }").unwrap_err();
        assert!(matches!(err, FrontendError::KindMismatch { .. }));
    }

    #[test]
    fn missing_main_is_rejected() {
        let err = compile("void other() { }").unwrap_err();
        assert!(matches!(err, FrontendError::MissingMain));
    }

    #[test]
    fn mem_interface_is_always_present() {
        let program = compile("void main() { int x; x = 1; }").unwrap();
        assert!(program.cdfg.input_named(STATE_NAME).is_some());
        assert!(program.cdfg.output_named(STATE_NAME).is_some());
    }
}
