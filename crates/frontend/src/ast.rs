//! Abstract syntax tree of the C subset.

use crate::token::Span;
use fpfa_cdfg::{BinOp, UnOp};

/// A binary operator as written in the source.
///
/// `&&` and `||` are kept distinct from `&`/`|` so that the lowering phase
/// can normalise their operands to 0/1 before combining them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AstBinOp {
    /// A word operator that maps one-to-one onto a CDFG [`BinOp`].
    Word(BinOp),
    /// Logical and (`&&`), non-short-circuiting in this subset.
    LogicalAnd,
    /// Logical or (`||`), non-short-circuiting in this subset.
    LogicalOr,
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Literal {
        /// The literal value.
        value: i64,
        /// Source position.
        span: Span,
    },
    /// Scalar variable reference.
    Var {
        /// Variable name.
        name: String,
        /// Source position.
        span: Span,
    },
    /// Array element read `name[index]`.
    Index {
        /// Array name.
        name: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: AstBinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position.
        span: Span,
    },
}

impl Expr {
    /// Source position of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Literal { span, .. }
            | Expr::Var { span, .. }
            | Expr::Index { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. } => *span,
        }
    }
}

/// The target of an assignment.
#[derive(Clone, PartialEq, Debug)]
pub enum LValue {
    /// Scalar variable.
    Var {
        /// Variable name.
        name: String,
        /// Source position.
        span: Span,
    },
    /// Array element `name[index]`.
    Index {
        /// Array name.
        name: String,
        /// Index expression.
        index: Expr,
        /// Source position.
        span: Span,
    },
}

impl LValue {
    /// Source position of the l-value.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var { span, .. } | LValue::Index { span, .. } => *span,
        }
    }
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// Scalar declaration `int x;` or `int x = expr;`.
    DeclScalar {
        /// Variable name.
        name: String,
        /// Optional initialiser.
        init: Option<Expr>,
        /// Source position.
        span: Span,
    },
    /// Array declaration `int a[N];`.
    DeclArray {
        /// Array name.
        name: String,
        /// Compile-time length.
        len: i64,
        /// Source position.
        span: Span,
    },
    /// Assignment `lvalue = expr;`.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Value expression.
        value: Expr,
        /// Source position.
        span: Span,
    },
    /// `if (cond) { then } else { otherwise }`.
    If {
        /// Condition expression.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_branch: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// `while (cond) { body }`.
    While {
        /// Condition expression.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// A nested block of statements (also used by the `for`-loop desugaring).
    Block {
        /// The statements of the block.
        body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// Empty statement `;`.
    Empty {
        /// Source position.
        span: Span,
    },
}

/// A function definition (only `main` is accepted by the lowering phase).
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Statements of the body.
    pub body: Vec<Stmt>,
    /// Source position of the definition.
    pub span: Span,
}

/// A parsed translation unit.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TranslationUnit {
    /// The functions defined in the unit.
    pub functions: Vec<Function>,
}

impl TranslationUnit {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_reachable() {
        let e = Expr::Literal {
            value: 1,
            span: Span::new(4, 2),
        };
        assert_eq!(e.span(), Span::new(4, 2));
        let lv = LValue::Var {
            name: "x".into(),
            span: Span::new(1, 1),
        };
        assert_eq!(lv.span(), Span::new(1, 1));
    }

    #[test]
    fn unit_function_lookup() {
        let unit = TranslationUnit {
            functions: vec![Function {
                name: "main".into(),
                body: vec![],
                span: Span::default(),
            }],
        };
        assert!(unit.function("main").is_some());
        assert!(unit.function("other").is_none());
    }
}
