//! Frontend error type.

use crate::token::Span;
use fpfa_cdfg::CdfgError;
use std::fmt;

/// Errors produced while lexing, parsing or lowering a source program.
#[derive(Clone, PartialEq, Debug)]
pub enum FrontendError {
    /// An unexpected character was found in the source text.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Where it was found.
        span: Span,
    },
    /// An integer literal does not fit in a machine word.
    IntegerOverflow {
        /// The literal text.
        literal: String,
        /// Where it was found.
        span: Span,
    },
    /// A block comment was never closed.
    UnterminatedComment {
        /// Where the comment starts.
        span: Span,
    },
    /// The parser found a token it did not expect.
    UnexpectedToken {
        /// Description of what was expected.
        expected: String,
        /// Description of what was found.
        found: String,
        /// Where it was found.
        span: Span,
    },
    /// A variable or array was used before being declared.
    UndeclaredIdentifier {
        /// The identifier name.
        name: String,
        /// Where it was used.
        span: Span,
    },
    /// A name was declared twice in the same scope.
    DuplicateDeclaration {
        /// The identifier name.
        name: String,
        /// Where the second declaration appears.
        span: Span,
    },
    /// A scalar was used where an array was required, or vice versa.
    KindMismatch {
        /// The identifier name.
        name: String,
        /// What the use required.
        expected: &'static str,
        /// Where it was used.
        span: Span,
    },
    /// A scalar was read before any value was assigned to it and it is not a
    /// kernel input.
    UseBeforeAssignment {
        /// The identifier name.
        name: String,
        /// Where it was read.
        span: Span,
    },
    /// A language feature outside the supported subset was used.
    Unsupported {
        /// Description of the feature.
        feature: String,
        /// Where it appears.
        span: Span,
    },
    /// An array was declared with a non-positive or non-constant size.
    BadArraySize {
        /// The array name.
        name: String,
        /// Where it is declared.
        span: Span,
    },
    /// The declared arrays exhaust the statespace address range, so the
    /// array cannot be placed without aliasing an earlier one.
    AddressSpaceExhausted {
        /// The array that did not fit.
        name: String,
        /// Where it is declared.
        span: Span,
    },
    /// The translation unit does not define `main`.
    MissingMain,
    /// Internal graph-construction failure (should not happen for accepted
    /// programs).
    Graph(CdfgError),
}

impl FrontendError {
    /// The source position the error points at, when it has one.
    ///
    /// [`FrontendError::MissingMain`] and [`FrontendError::Graph`] describe
    /// whole-program problems and carry no span.
    pub fn span(&self) -> Option<Span> {
        match self {
            FrontendError::UnexpectedChar { span, .. }
            | FrontendError::IntegerOverflow { span, .. }
            | FrontendError::UnterminatedComment { span }
            | FrontendError::UnexpectedToken { span, .. }
            | FrontendError::UndeclaredIdentifier { span, .. }
            | FrontendError::DuplicateDeclaration { span, .. }
            | FrontendError::KindMismatch { span, .. }
            | FrontendError::UseBeforeAssignment { span, .. }
            | FrontendError::Unsupported { span, .. }
            | FrontendError::BadArraySize { span, .. }
            | FrontendError::AddressSpaceExhausted { span, .. } => Some(*span),
            FrontendError::MissingMain | FrontendError::Graph(_) => None,
        }
    }

    /// Renders the error with a caret snippet of the offending source line:
    ///
    /// ```text
    /// kernel.c:2:11: error: `x` is not declared
    ///   2 |   y = x + 1;
    ///     |       ^
    /// ```
    ///
    /// Errors without a span (and spans outside `source`) degrade to the
    /// plain one-line form.
    pub fn render(&self, file: &str, source: &str) -> String {
        match self.span() {
            Some(span) => {
                // Display already prefixes "line:col: "; strip it so the
                // header reads `file:line:col: error: message`.
                let text = self.to_string();
                let message = text
                    .strip_prefix(&format!("{span}: "))
                    .unwrap_or(&text)
                    .to_string();
                crate::source::render_annotated(file, source, span, &format!("error: {message}"))
            }
            None => format!("{file}: error: {self}"),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::UnexpectedChar { ch, span } => {
                write!(f, "{span}: unexpected character `{ch}`")
            }
            FrontendError::IntegerOverflow { literal, span } => {
                write!(
                    f,
                    "{span}: integer literal `{literal}` does not fit in a word"
                )
            }
            FrontendError::UnterminatedComment { span } => {
                write!(f, "{span}: unterminated block comment")
            }
            FrontendError::UnexpectedToken {
                expected,
                found,
                span,
            } => write!(f, "{span}: expected {expected}, found `{found}`"),
            FrontendError::UndeclaredIdentifier { name, span } => {
                write!(f, "{span}: `{name}` is not declared")
            }
            FrontendError::DuplicateDeclaration { name, span } => {
                write!(f, "{span}: `{name}` is already declared")
            }
            FrontendError::KindMismatch {
                name,
                expected,
                span,
            } => write!(f, "{span}: `{name}` is not {expected}"),
            FrontendError::UseBeforeAssignment { name, span } => {
                write!(f, "{span}: `{name}` may be read before assignment")
            }
            FrontendError::Unsupported { feature, span } => {
                write!(f, "{span}: unsupported construct: {feature}")
            }
            FrontendError::BadArraySize { name, span } => {
                write!(f, "{span}: array `{name}` needs a positive constant size")
            }
            FrontendError::AddressSpaceExhausted { name, span } => {
                write!(
                    f,
                    "{span}: array `{name}` does not fit in the statespace address range"
                )
            }
            FrontendError::MissingMain => write!(f, "translation unit does not define `main`"),
            FrontendError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontendError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CdfgError> for FrontendError {
    fn from(e: CdfgError) -> Self {
        FrontendError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_positions() {
        let e = FrontendError::UndeclaredIdentifier {
            name: "foo".into(),
            span: Span::new(2, 5),
        };
        assert_eq!(e.to_string(), "2:5: `foo` is not declared");
        assert_eq!(
            FrontendError::MissingMain.to_string(),
            "translation unit does not define `main`"
        );
    }

    #[test]
    fn render_attaches_source_snippets() {
        let src = "void main() {\n  y = x + 1;\n}";
        let e = FrontendError::UndeclaredIdentifier {
            name: "x".into(),
            span: Span::new(2, 7),
        };
        let text = e.render("kernel.c", src);
        assert!(text.starts_with("kernel.c:2:7: error: `x` is not declared\n"));
        assert!(text.contains("y = x + 1;"));
        assert!(text.contains("^"));
        assert_eq!(
            FrontendError::MissingMain.render("kernel.c", src),
            "kernel.c: error: translation unit does not define `main`"
        );
    }

    #[test]
    fn graph_errors_are_wrapped() {
        let e: FrontendError = CdfgError::CycleDetected.into();
        assert!(e.to_string().contains("cycle"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
