//! Control Data Flow Graph (CDFG) intermediate representation for the FPFA
//! mapping flow.
//!
//! This crate implements the intermediate representation described in
//! Sections III–V of *"Mapping Applications to an FPFA Tile"* (DATE 2003):
//!
//! * a port-indexed dataflow graph whose nodes are C-level operations
//!   ([`NodeKind`]) and whose edges carry word values or *statespace* tokens;
//! * the **statespace** abstraction of the C memory model — a set of
//!   `(address, data)` tuples manipulated through the three primitive
//!   operations `ST` (store), `FE` (fetch) and `DEL` (delete)
//!   ([`StateSpace`], [`NodeKind::Store`], [`NodeKind::Fetch`],
//!   [`NodeKind::Delete`]);
//! * structured loop nodes ([`LoopSpec`]) used by the frontend before loop
//!   unrolling;
//! * a reference interpreter ([`interp::Interpreter`]) used by the
//!   transformation engine and the simulator to check behavioural
//!   equivalence;
//! * structural analyses (topological order, ASAP/ALAP levels, critical path,
//!   mobility) used by the mapper.
//!
//! # Example
//!
//! Build the dataflow graph for `out = a * b + c` and evaluate it:
//!
//! ```
//! # fn main() -> Result<(), fpfa_cdfg::CdfgError> {
//! use fpfa_cdfg::{Cdfg, NodeKind, BinOp, interp::Interpreter, Value};
//!
//! let mut g = Cdfg::new("mac");
//! let a = g.add_node(NodeKind::Input("a".into()));
//! let b = g.add_node(NodeKind::Input("b".into()));
//! let c = g.add_node(NodeKind::Input("c".into()));
//! let mul = g.add_node(NodeKind::BinOp(BinOp::Mul));
//! let add = g.add_node(NodeKind::BinOp(BinOp::Add));
//! let out = g.add_node(NodeKind::Output("out".into()));
//! g.connect(a, 0, mul, 0)?;
//! g.connect(b, 0, mul, 1)?;
//! g.connect(mul, 0, add, 0)?;
//! g.connect(c, 0, add, 1)?;
//! g.connect(add, 0, out, 0)?;
//!
//! let mut interp = Interpreter::new(&g);
//! interp.bind("a", Value::Word(3));
//! interp.bind("b", Value::Word(4));
//! interp.bind("c", Value::Word(5));
//! let result = interp.run()?;
//! assert_eq!(result.word("out"), Some(17));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod canon;
pub mod dot;
pub mod edge;
pub mod error;
pub mod graph;
pub mod ids;
pub mod interp;
pub mod node;
pub mod observer;
pub mod statespace;
pub mod stats;
pub mod validate;
pub mod value;

pub use builder::CdfgBuilder;
pub use canon::canonical_signature;
pub use edge::{Edge, Endpoint};
pub use error::CdfgError;
pub use graph::{Cdfg, Node, TopoScratch};
pub use ids::{EdgeId, NodeId, NodeRemap};
pub use node::{BinOp, LoopSpec, NodeKind, UnOp};
pub use observer::{ChangeJournal, RewriteEvent, RewriteObserver};
pub use statespace::StateSpace;
pub use stats::GraphStats;
pub use value::Value;
