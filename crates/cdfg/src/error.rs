//! Error type shared by all CDFG operations.

use crate::ids::{EdgeId, NodeId};
use std::fmt;

/// Errors produced by graph construction, validation or interpretation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CdfgError {
    /// A node id does not exist (or has been removed) in this graph.
    UnknownNode(NodeId),
    /// An edge id does not exist (or has been removed) in this graph.
    UnknownEdge(EdgeId),
    /// A port index is out of range for the node kind.
    PortOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Requested port index.
        port: usize,
        /// Number of ports of that direction on the node.
        arity: usize,
        /// `true` when the port is an input port.
        is_input: bool,
    },
    /// An input port already has an incoming edge.
    PortAlreadyDriven {
        /// Offending node.
        node: NodeId,
        /// Input port index.
        port: usize,
    },
    /// An input port has no incoming edge but one was required.
    PortUnconnected {
        /// Offending node.
        node: NodeId,
        /// Input port index.
        port: usize,
    },
    /// The graph contains a cycle, which is not allowed outside loop bodies.
    CycleDetected,
    /// A named graph input was not bound before interpretation.
    UnboundInput(String),
    /// Two graph interface nodes use the same name.
    DuplicateName(String),
    /// A word was required but a statespace token (or vice versa) was found.
    TypeMismatch {
        /// Node at which the mismatch was detected.
        node: NodeId,
        /// What the operation expected.
        expected: &'static str,
        /// What it actually received.
        found: &'static str,
    },
    /// Division or remainder by zero during interpretation.
    DivisionByZero(NodeId),
    /// A `FE` or `DEL` primitive addressed a tuple that does not exist.
    UnboundAddress {
        /// The fetching/deleting node.
        node: NodeId,
        /// The missing address.
        address: i64,
    },
    /// A loop failed to terminate within the interpreter's iteration budget.
    LoopBudgetExceeded {
        /// The loop node.
        node: NodeId,
        /// The budget that was exhausted.
        budget: usize,
    },
    /// A structured loop specification is malformed (missing variables,
    /// missing condition output, arity mismatch, ...).
    MalformedLoop {
        /// The loop node.
        node: NodeId,
        /// Explanation of what is wrong.
        reason: String,
    },
    /// Generic validation failure with an explanation.
    Invalid(String),
}

impl fmt::Display for CdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdfgError::UnknownNode(n) => write!(f, "unknown node {n}"),
            CdfgError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            CdfgError::PortOutOfRange {
                node,
                port,
                arity,
                is_input,
            } => write!(
                f,
                "{} port {port} out of range on {node} (arity {arity})",
                if *is_input { "input" } else { "output" }
            ),
            CdfgError::PortAlreadyDriven { node, port } => {
                write!(f, "input port {port} of {node} is already driven")
            }
            CdfgError::PortUnconnected { node, port } => {
                write!(f, "input port {port} of {node} is not connected")
            }
            CdfgError::CycleDetected => write!(f, "graph contains a cycle"),
            CdfgError::UnboundInput(name) => write!(f, "graph input `{name}` was not bound"),
            CdfgError::DuplicateName(name) => {
                write!(f, "duplicate interface name `{name}`")
            }
            CdfgError::TypeMismatch {
                node,
                expected,
                found,
            } => write!(
                f,
                "type mismatch at {node}: expected {expected}, found {found}"
            ),
            CdfgError::DivisionByZero(n) => write!(f, "division by zero at {n}"),
            CdfgError::UnboundAddress { node, address } => {
                write!(f, "statespace address {address} not bound (at {node})")
            }
            CdfgError::LoopBudgetExceeded { node, budget } => {
                write!(f, "loop {node} exceeded the iteration budget of {budget}")
            }
            CdfgError::MalformedLoop { node, reason } => {
                write!(f, "malformed loop {node}: {reason}")
            }
            CdfgError::Invalid(reason) => write!(f, "invalid graph: {reason}"),
        }
    }
}

impl std::error::Error for CdfgError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn errors_display_useful_messages() {
        let n = NodeId::from_index(4);
        assert_eq!(CdfgError::UnknownNode(n).to_string(), "unknown node n4");
        assert_eq!(
            CdfgError::DivisionByZero(n).to_string(),
            "division by zero at n4"
        );
        assert_eq!(
            CdfgError::UnboundAddress {
                node: n,
                address: 7
            }
            .to_string(),
            "statespace address 7 not bound (at n4)"
        );
        assert!(CdfgError::PortOutOfRange {
            node: n,
            port: 9,
            arity: 2,
            is_input: true
        }
        .to_string()
        .contains("input port 9"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<CdfgError>();
    }
}
