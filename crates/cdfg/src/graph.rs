//! The CDFG graph container and its mutation primitives.

use crate::edge::{Edge, Endpoint};
use crate::error::CdfgError;
use crate::ids::{EdgeId, NodeId};
use crate::node::{Node, NodeKind};
use crate::observer::{ChangeJournal, RewriteEvent, RewriteObserver};
use std::collections::HashMap;

/// A Control Data Flow Graph.
///
/// The graph owns its nodes and edges. Nodes expose a fixed number of input
/// and output ports determined by their [`NodeKind`]; each input port is
/// driven by at most one edge, while output ports may fan out to any number of
/// consumers. Removed nodes and edges leave holes in the internal storage so
/// that identifiers stay stable; [`Cdfg::compact`] rebuilds a dense graph.
///
/// Every mutation primitive reports a [`RewriteEvent`] to an optional
/// [`ChangeJournal`] (see [`Cdfg::enable_journal`]); the incremental rewrite
/// engine uses the journal to learn which nodes a rewrite touched.  Equality
/// compares only graph structure (name, nodes, edges) — journal state and
/// cached counters are ignored.
#[derive(Clone, Debug, Default)]
pub struct Cdfg {
    name: String,
    nodes: Vec<Option<Node>>,
    edges: Vec<Option<Edge>>,
    live_nodes: usize,
    live_edges: usize,
    journal: Option<ChangeJournal>,
}

impl PartialEq for Cdfg {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.nodes == other.nodes && self.edges == other.edges
    }
}

impl Cdfg {
    /// Creates an empty graph with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Cdfg {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            live_nodes: 0,
            live_edges: 0,
            journal: None,
        }
    }

    // ------------------------------------------------------------------
    // Change journal
    // ------------------------------------------------------------------

    /// Installs a fresh [`ChangeJournal`]: every subsequent mutation reports
    /// a [`RewriteEvent`] until [`Cdfg::disable_journal`] is called.
    pub fn enable_journal(&mut self) {
        self.journal = Some(ChangeJournal::new());
    }

    /// Removes the journal (if any) and returns it with its pending events.
    pub fn disable_journal(&mut self) -> Option<ChangeJournal> {
        self.journal.take()
    }

    /// `true` while a journal is installed.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Drains pending rewrite events (empty when no journal is installed).
    pub fn drain_events(&mut self) -> Vec<RewriteEvent> {
        self.journal
            .as_mut()
            .map(ChangeJournal::drain)
            .unwrap_or_default()
    }

    fn notify(&mut self, event: RewriteEvent) {
        if let Some(journal) = &mut self.journal {
            journal.on_event(event);
        }
    }

    /// Descriptive name of the graph (usually the source function name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Node and edge accessors
    // ------------------------------------------------------------------

    /// Number of live nodes (O(1): maintained across every mutation).
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges (O(1): maintained across every mutation).
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound of node indices (including holes); useful for dense side
    /// tables indexed by [`NodeId::index`].
    pub fn node_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the node with the given id.
    ///
    /// # Errors
    /// [`CdfgError::UnknownNode`] if the id is stale or out of range.
    pub fn node(&self, id: NodeId) -> Result<&Node, CdfgError> {
        self.nodes
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(CdfgError::UnknownNode(id))
    }

    /// Returns the kind of a node.
    ///
    /// # Errors
    /// [`CdfgError::UnknownNode`] if the id is stale or out of range.
    pub fn kind(&self, id: NodeId) -> Result<&NodeKind, CdfgError> {
        Ok(&self.node(id)?.kind)
    }

    /// Returns the edge with the given id.
    ///
    /// # Errors
    /// [`CdfgError::UnknownEdge`] if the id is stale or out of range.
    pub fn edge(&self, id: EdgeId) -> Result<&Edge, CdfgError> {
        self.edges
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(CdfgError::UnknownEdge(id))
    }

    /// `true` when the node id refers to a live node.
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.index())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// Iterates over `(id, node)` pairs of live nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (NodeId::from_index(i), n)))
    }

    /// Iterates over the ids of live nodes in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().map(|(id, _)| id)
    }

    /// Iterates over `(id, edge)` pairs of live edges in id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (EdgeId::from_index(i), e)))
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Some(Node::new(kind)));
        self.live_nodes += 1;
        self.notify(RewriteEvent::NodeAdded(id));
        id
    }

    /// Connects output port `from_port` of `from` to input port `to_port` of
    /// `to` and returns the new edge id.
    ///
    /// # Errors
    /// * [`CdfgError::UnknownNode`] if either node does not exist;
    /// * [`CdfgError::PortOutOfRange`] if a port index exceeds the node arity;
    /// * [`CdfgError::PortAlreadyDriven`] if the input port already has a
    ///   driver.
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: usize,
        to: NodeId,
        to_port: usize,
    ) -> Result<EdgeId, CdfgError> {
        {
            let from_node = self.node(from)?;
            if from_port >= from_node.output_count() {
                return Err(CdfgError::PortOutOfRange {
                    node: from,
                    port: from_port,
                    arity: from_node.output_count(),
                    is_input: false,
                });
            }
            let to_node = self.node(to)?;
            if to_port >= to_node.input_count() {
                return Err(CdfgError::PortOutOfRange {
                    node: to,
                    port: to_port,
                    arity: to_node.input_count(),
                    is_input: true,
                });
            }
            if to_node.inputs[to_port].is_some() {
                return Err(CdfgError::PortAlreadyDriven {
                    node: to,
                    port: to_port,
                });
            }
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(Some(Edge::new(
            Endpoint::new(from, from_port),
            Endpoint::new(to, to_port),
        )));
        self.nodes[from.index()].as_mut().expect("checked").outputs[from_port].push(id);
        self.nodes[to.index()].as_mut().expect("checked").inputs[to_port] = Some(id);
        self.live_edges += 1;
        self.notify(RewriteEvent::NodeTouched(from));
        self.notify(RewriteEvent::NodeTouched(to));
        Ok(id)
    }

    /// Removes an edge, leaving the destination port unconnected.
    ///
    /// # Errors
    /// [`CdfgError::UnknownEdge`] if the edge does not exist.
    pub fn disconnect(&mut self, id: EdgeId) -> Result<Edge, CdfgError> {
        let edge = self.edge(id).copied()?;
        if let Some(Some(node)) = self.nodes.get_mut(edge.from.node.index()) {
            let port = edge.from.port_index();
            if port < node.outputs.len() {
                node.outputs[port].retain(|e| *e != id);
            }
        }
        if let Some(Some(node)) = self.nodes.get_mut(edge.to.node.index()) {
            let port = edge.to.port_index();
            if port < node.inputs.len() && node.inputs[port] == Some(id) {
                node.inputs[port] = None;
            }
        }
        self.edges[id.index()] = None;
        self.live_edges -= 1;
        self.notify(RewriteEvent::NodeTouched(edge.from.node));
        self.notify(RewriteEvent::NodeTouched(edge.to.node));
        Ok(edge)
    }

    /// Removes a node and every edge attached to it.
    ///
    /// The attached edges are collected from the node's own port edge lists,
    /// so removal costs O(degree) instead of a scan over the whole edge
    /// table.
    ///
    /// # Errors
    /// [`CdfgError::UnknownNode`] if the node does not exist.
    pub fn remove_node(&mut self, id: NodeId) -> Result<Node, CdfgError> {
        let node = self.node(id)?;
        let mut attached: Vec<EdgeId> = node.inputs.iter().flatten().copied().collect();
        attached.extend(node.outputs.iter().flatten().copied());
        // A self-edge appears in both the input and the output port lists;
        // deduplicate so it is disconnected exactly once.
        attached.sort_unstable();
        attached.dedup();
        for eid in attached {
            self.disconnect(eid)?;
        }
        self.live_nodes -= 1;
        self.notify(RewriteEvent::NodeRemoved(id));
        Ok(self.nodes[id.index()].take().expect("checked above"))
    }

    /// Source endpoint driving input port `port` of `node`, if connected.
    pub fn input_source(&self, node: NodeId, port: usize) -> Option<Endpoint> {
        let n = self.node(node).ok()?;
        let eid = n.input_edge(port)?;
        self.edge(eid).ok().map(|e| e.from)
    }

    /// All `(node, port)` endpoints consuming output port `port` of `node`.
    pub fn output_sinks(&self, node: NodeId, port: usize) -> Vec<Endpoint> {
        let Ok(n) = self.node(node) else {
            return Vec::new();
        };
        n.output_edges(port)
            .iter()
            .filter_map(|eid| self.edge(*eid).ok().map(|e| e.to))
            .collect()
    }

    /// Predecessor nodes of `node` (one entry per connected input port, in
    /// port order, deduplicated).
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let Ok(n) = self.node(node) else {
            return Vec::new();
        };
        let mut preds = Vec::new();
        for eid in n.inputs.iter().flatten() {
            if let Ok(edge) = self.edge(*eid) {
                if !preds.contains(&edge.from.node) {
                    preds.push(edge.from.node);
                }
            }
        }
        preds
    }

    /// Successor nodes of `node` (deduplicated, in discovery order).
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let Ok(n) = self.node(node) else {
            return Vec::new();
        };
        let mut succs = Vec::new();
        // Linear scan for small fan-outs; a hash set above that (constants
        // shared by hundreds of consumers would otherwise make this
        // quadratic).
        let mut seen: Option<std::collections::HashSet<NodeId>> = None;
        for port_edges in &n.outputs {
            for eid in port_edges {
                if let Ok(edge) = self.edge(*eid) {
                    let to = edge.to.node;
                    let fresh = match &mut seen {
                        Some(set) => set.insert(to),
                        None => {
                            if succs.len() >= 16 {
                                let mut set: std::collections::HashSet<NodeId> =
                                    succs.iter().copied().collect();
                                let fresh = set.insert(to);
                                seen = Some(set);
                                fresh
                            } else {
                                !succs.contains(&to)
                            }
                        }
                    };
                    if fresh {
                        succs.push(to);
                    }
                }
            }
        }
        succs
    }

    /// Rewires every consumer of output `from_port` of `from` so that it is
    /// driven by output `to_port` of `to` instead, returning the number of
    /// rewired edges.
    ///
    /// This is the workhorse of the transformation passes ("replace all uses
    /// of X with Y").
    ///
    /// # Errors
    /// Propagates [`CdfgError::UnknownNode`]/[`CdfgError::PortOutOfRange`]
    /// errors from the underlying connect operations.
    pub fn replace_uses(
        &mut self,
        from: NodeId,
        from_port: usize,
        to: NodeId,
        to_port: usize,
    ) -> Result<usize, CdfgError> {
        let uses: Vec<Endpoint> = self.output_sinks(from, from_port);
        let mut moved = 0;
        for sink in uses {
            let eid = self.node(sink.node)?.input_edge(sink.port_index()).ok_or(
                CdfgError::PortUnconnected {
                    node: sink.node,
                    port: sink.port_index(),
                },
            )?;
            self.disconnect(eid)?;
            self.connect(to, to_port, sink.node, sink.port_index())?;
            moved += 1;
        }
        Ok(moved)
    }

    // ------------------------------------------------------------------
    // Interface nodes
    // ------------------------------------------------------------------

    /// All `Input` nodes as `(name, id)` pairs in id order.
    pub fn inputs(&self) -> Vec<(String, NodeId)> {
        self.nodes()
            .filter_map(|(id, n)| match &n.kind {
                NodeKind::Input(name) => Some((name.clone(), id)),
                _ => None,
            })
            .collect()
    }

    /// All `Output` nodes as `(name, id)` pairs in id order.
    pub fn outputs(&self) -> Vec<(String, NodeId)> {
        self.nodes()
            .filter_map(|(id, n)| match &n.kind {
                NodeKind::Output(name) => Some((name.clone(), id)),
                _ => None,
            })
            .collect()
    }

    /// Finds the `Input` node with the given name.
    pub fn input_named(&self, name: &str) -> Option<NodeId> {
        self.inputs()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| id)
    }

    /// Finds the `Output` node with the given name.
    pub fn output_named(&self, name: &str) -> Option<NodeId> {
        self.outputs()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| id)
    }

    // ------------------------------------------------------------------
    // Ordering
    // ------------------------------------------------------------------

    /// Topological order of all live nodes (Kahn's algorithm).
    ///
    /// # Errors
    /// [`CdfgError::CycleDetected`] when the graph contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, CdfgError> {
        let bound = self.node_bound();
        let mut in_deg = vec![0usize; bound];
        let mut live = 0usize;
        for (id, node) in self.nodes() {
            live += 1;
            in_deg[id.index()] = node.inputs.iter().flatten().count();
        }
        let mut ready: Vec<NodeId> = self
            .nodes()
            .filter(|(id, _)| in_deg[id.index()] == 0)
            .map(|(id, _)| id)
            .collect();
        let mut order = Vec::with_capacity(live);
        while let Some(id) = ready.pop() {
            order.push(id);
            for succ in self.successors(id) {
                // A successor may be connected through several ports; decrement
                // once per connecting edge.  A successor's counter reaches
                // zero exactly once (each predecessor is processed once), so
                // it is pushed exactly once — no membership scan needed.
                let node = self.node(succ).expect("successor exists");
                let incoming_from_id = node
                    .inputs
                    .iter()
                    .flatten()
                    .filter(|eid| self.edge(**eid).map(|e| e.from.node == id).unwrap_or(false))
                    .count();
                let slot = &mut in_deg[succ.index()];
                let was_positive = *slot > 0;
                *slot = slot.saturating_sub(incoming_from_id);
                if *slot == 0 && was_positive {
                    ready.push(succ);
                }
            }
        }
        if order.len() == live {
            Ok(order)
        } else {
            Err(CdfgError::CycleDetected)
        }
    }

    /// `true` when the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_ok()
    }

    /// Rebuilds the graph without holes, returning the compacted graph and a
    /// mapping from old to new node ids.
    pub fn compact(&self) -> (Cdfg, HashMap<NodeId, NodeId>) {
        let mut out = Cdfg::new(self.name.clone());
        let mut remap = HashMap::new();
        for (id, node) in self.nodes() {
            let new_id = out.add_node(node.kind.clone());
            remap.insert(id, new_id);
        }
        for (_, edge) in self.edges() {
            let from = remap[&edge.from.node];
            let to = remap[&edge.to.node];
            out.connect(from, edge.from.port_index(), to, edge.to.port_index())
                .expect("edges of a well-formed graph remain connectable");
        }
        (out, remap)
    }

    /// Copies another graph into this one, returning the node id remapping.
    ///
    /// Interface (`Input`/`Output`) nodes of the spliced graph are copied
    /// verbatim; callers typically rewire or remove them afterwards (this is
    /// what the loop-unrolling transformation does).
    pub fn splice(&mut self, other: &Cdfg) -> HashMap<NodeId, NodeId> {
        let mut remap = HashMap::new();
        for (id, node) in other.nodes() {
            let new_id = self.add_node(node.kind.clone());
            remap.insert(id, new_id);
        }
        for (_, edge) in other.edges() {
            let from = remap[&edge.from.node];
            let to = remap[&edge.to.node];
            self.connect(from, edge.from.port_index(), to, edge.to.port_index())
                .expect("edges of a well-formed graph remain connectable");
        }
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BinOp;

    fn mac_graph() -> (Cdfg, NodeId, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("mac");
        let a = g.add_node(NodeKind::Input("a".into()));
        let b = g.add_node(NodeKind::Input("b".into()));
        let c = g.add_node(NodeKind::Input("c".into()));
        let mul = g.add_node(NodeKind::BinOp(BinOp::Mul));
        let add = g.add_node(NodeKind::BinOp(BinOp::Add));
        let out = g.add_node(NodeKind::Output("out".into()));
        g.connect(a, 0, mul, 0).unwrap();
        g.connect(b, 0, mul, 1).unwrap();
        g.connect(mul, 0, add, 0).unwrap();
        g.connect(c, 0, add, 1).unwrap();
        g.connect(add, 0, out, 0).unwrap();
        (g, a, b, c, mul, add, out)
    }

    #[test]
    fn build_and_count() {
        let (g, ..) = mac_graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.inputs().len(), 3);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.name(), "mac");
    }

    #[test]
    fn connect_rejects_bad_ports() {
        let mut g = Cdfg::new("t");
        let a = g.add_node(NodeKind::Const(1));
        let add = g.add_node(NodeKind::BinOp(BinOp::Add));
        assert!(matches!(
            g.connect(a, 1, add, 0),
            Err(CdfgError::PortOutOfRange {
                is_input: false,
                ..
            })
        ));
        assert!(matches!(
            g.connect(a, 0, add, 2),
            Err(CdfgError::PortOutOfRange { is_input: true, .. })
        ));
        g.connect(a, 0, add, 0).unwrap();
        assert!(matches!(
            g.connect(a, 0, add, 0),
            Err(CdfgError::PortAlreadyDriven { .. })
        ));
    }

    #[test]
    fn connect_rejects_unknown_nodes() {
        let mut g = Cdfg::new("t");
        let a = g.add_node(NodeKind::Const(1));
        let ghost = NodeId::from_index(99);
        assert!(matches!(
            g.connect(a, 0, ghost, 0),
            Err(CdfgError::UnknownNode(_))
        ));
        assert!(matches!(
            g.connect(ghost, 0, a, 0),
            Err(CdfgError::UnknownNode(_))
        ));
    }

    #[test]
    fn predecessors_and_successors() {
        let (g, a, b, c, mul, add, out) = mac_graph();
        assert_eq!(g.predecessors(mul), vec![a, b]);
        assert_eq!(g.predecessors(add), vec![mul, c]);
        assert_eq!(g.successors(mul), vec![add]);
        assert_eq!(g.successors(add), vec![out]);
        assert!(g.predecessors(a).is_empty());
        assert!(g.successors(out).is_empty());
    }

    #[test]
    fn disconnect_and_remove() {
        let (mut g, _a, _b, _c, mul, add, _out) = mac_graph();
        let eid = g.node(add).unwrap().input_edge(0).unwrap();
        let edge = g.disconnect(eid).unwrap();
        assert_eq!(edge.from.node, mul);
        assert_eq!(g.edge_count(), 4);
        assert!(g.node(add).unwrap().input_edge(0).is_none());

        g.remove_node(mul).unwrap();
        assert!(!g.contains_node(mul));
        assert!(matches!(g.node(mul), Err(CdfgError::UnknownNode(_))));
        // Edges from a and b into mul are gone too.
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn replace_uses_rewires_consumers() {
        let (mut g, _a, _b, c, mul, add, _out) = mac_graph();
        // Replace uses of mul's output with c: add.0 should now be driven by c.
        let moved = g.replace_uses(mul, 0, c, 0).unwrap();
        assert_eq!(moved, 1);
        assert_eq!(g.input_source(add, 0).unwrap().node, c);
        assert!(g.output_sinks(mul, 0).is_empty());
    }

    #[test]
    fn topo_order_is_consistent() {
        let (g, ..) = mac_graph();
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 6);
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for (_, edge) in g.edges() {
            assert!(pos[&edge.from.node] < pos[&edge.to.node]);
        }
    }

    #[test]
    fn remove_node_handles_self_edges() {
        let mut g = Cdfg::new("self");
        let x = g.add_node(NodeKind::Copy);
        g.connect(x, 0, x, 0).unwrap();
        assert_eq!(g.edge_count(), 1);
        g.remove_node(x).unwrap();
        assert!(!g.contains_node(x));
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn cycle_detection() {
        let mut g = Cdfg::new("cyc");
        let x = g.add_node(NodeKind::Copy);
        let y = g.add_node(NodeKind::Copy);
        g.connect(x, 0, y, 0).unwrap();
        g.connect(y, 0, x, 0).unwrap();
        assert!(!g.is_acyclic());
        assert!(matches!(g.topo_order(), Err(CdfgError::CycleDetected)));
    }

    #[test]
    fn compact_preserves_structure() {
        let (mut g, _a, _b, _c, mul, _add, _out) = mac_graph();
        g.remove_node(mul).unwrap();
        let (compacted, remap) = g.compact();
        assert_eq!(compacted.node_count(), 5);
        assert_eq!(compacted.edge_count(), g.edge_count());
        assert_eq!(remap.len(), 5);
        assert_eq!(compacted.node_bound(), 5);
    }

    #[test]
    fn splice_copies_everything() {
        let (mut g, ..) = mac_graph();
        let (other, ..) = mac_graph();
        let before_nodes = g.node_count();
        let before_edges = g.edge_count();
        let remap = g.splice(&other);
        assert_eq!(g.node_count(), before_nodes * 2);
        assert_eq!(g.edge_count(), before_edges * 2);
        assert_eq!(remap.len(), before_nodes);
    }

    #[test]
    fn cached_counts_track_every_mutation() {
        let (mut g, _a, _b, _c, mul, add, _out) = mac_graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        let eid = g.node(add).unwrap().input_edge(1).unwrap();
        g.disconnect(eid).unwrap();
        assert_eq!(g.edge_count(), 4);
        g.remove_node(mul).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 1);
        let extra = g.add_node(NodeKind::Const(1));
        g.connect(extra, 0, add, 0).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 2);
        // Splice and compact keep the caches consistent too.
        let (other, ..) = mac_graph();
        g.splice(&other);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 7);
        let (compacted, _) = g.compact();
        assert_eq!(compacted.node_count(), 12);
        assert_eq!(compacted.edge_count(), 7);
        // The caches agree with a full scan.
        assert_eq!(g.node_count(), g.nodes().count());
        assert_eq!(g.edge_count(), g.edges().count());
    }

    #[test]
    fn journal_reports_rewrite_events() {
        use crate::observer::RewriteEvent;
        let (mut g, _a, _b, c, mul, add, _out) = mac_graph();
        assert!(!g.journal_enabled());
        assert!(g.drain_events().is_empty());
        g.enable_journal();
        assert!(g.journal_enabled());

        let n = g.add_node(NodeKind::Const(9));
        let events = g.drain_events();
        assert_eq!(events, vec![RewriteEvent::NodeAdded(n)]);

        g.connect(n, 0, add, 0).unwrap_err(); // port already driven: no event
        assert!(g.drain_events().is_empty());

        // replace_uses touches the old source, the new source and consumers.
        g.replace_uses(mul, 0, c, 0).unwrap();
        let touched: Vec<_> = g.drain_events().iter().map(|e| e.node()).collect();
        assert!(touched.contains(&mul));
        assert!(touched.contains(&c));
        assert!(touched.contains(&add));

        // remove_node reports the peers of every dropped edge and the node.
        g.remove_node(mul).unwrap();
        let events = g.drain_events();
        assert!(events.contains(&RewriteEvent::NodeRemoved(mul)));
        assert!(events
            .iter()
            .any(|e| matches!(e, RewriteEvent::NodeTouched(id) if *id != mul)));

        let journal = g.disable_journal().unwrap();
        assert!(journal.is_empty());
        g.add_node(NodeKind::Const(0));
        assert!(g.drain_events().is_empty());
    }

    #[test]
    fn equality_ignores_journal_state() {
        let (mut g1, ..) = mac_graph();
        let (g2, ..) = mac_graph();
        assert_eq!(g1, g2);
        g1.enable_journal();
        assert_eq!(g1, g2);
    }

    #[test]
    fn interface_lookup() {
        let (g, a, ..) = mac_graph();
        assert_eq!(g.input_named("a"), Some(a));
        assert_eq!(g.input_named("missing"), None);
        assert!(g.output_named("out").is_some());
    }
}
