//! The CDFG graph container and its mutation primitives.
//!
//! Storage is a flat arena in struct-of-arrays form: node operations
//! ([`NodeKind`]) and port connectivity (`PortRecord`) live in parallel
//! vectors indexed by the dense `u32` inside [`NodeId`].  Per-node port data
//! uses small-inline storage (`InlineVec`): up to four entries live on the
//! node record itself, so the common case — every fixed node kind has at
//! most three ports — allocates nothing on the heap.  [`Node`] is a cheap
//! `Copy` *view* over one arena slot, not an owned record.

use crate::edge::{Edge, Endpoint};
use crate::error::CdfgError;
use crate::ids::{EdgeId, NodeId, NodeRemap};
use crate::node::NodeKind;
use crate::observer::{ChangeJournal, RewriteEvent, RewriteObserver};

/// Sentinel for an unconnected input-port slot.
const NO_EDGE: u32 = u32::MAX;

/// Inline capacity of the per-node port stores.  Every fixed node kind has
/// at most three input ports and one output port; only loop headers (arity =
/// carried variables) and high-fanout values spill to the heap.
const INLINE_PORTS: usize = 4;

/// Small-inline vector for per-node port data: up to [`INLINE_PORTS`]
/// entries are stored on the node record itself, larger sets spill to a
/// heap `Vec`.
///
/// Invariant: when `spill` is empty the live entries are `inline[..len]`,
/// otherwise they are `spill[..]` (and `len == spill.len()`).
#[derive(Clone, Debug, Default)]
struct InlineVec<T: Copy + Default> {
    len: u32,
    inline: [T; INLINE_PORTS],
    spill: Vec<T>,
}

impl<T: Copy + Default> InlineVec<T> {
    fn new() -> Self {
        Self::default()
    }

    /// A vector holding `len` copies of `value`.
    fn filled(len: usize, value: T) -> Self {
        let mut v = Self::new();
        for _ in 0..len {
            v.push(value);
        }
        v
    }

    fn len(&self) -> usize {
        self.len as usize
    }

    fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len as usize]
        } else {
            &mut self.spill
        }
    }

    fn push(&mut self, value: T) {
        if self.spill.is_empty() {
            if (self.len as usize) < INLINE_PORTS {
                self.inline[self.len as usize] = value;
                self.len += 1;
                return;
            }
            self.spill.extend_from_slice(&self.inline);
        }
        self.spill.push(value);
        self.len = self.spill.len() as u32;
    }

    fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        if self.spill.is_empty() {
            let mut kept = 0usize;
            for i in 0..self.len as usize {
                if keep(&self.inline[i]) {
                    self.inline[kept] = self.inline[i];
                    kept += 1;
                }
            }
            self.len = kept as u32;
        } else {
            self.spill.retain(|item| keep(item));
            self.len = self.spill.len() as u32;
        }
    }
}

impl<T: Copy + Default + PartialEq> PartialEq for InlineVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// One `(output port, edge)` entry of a node's fan-out list.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct OutEdge {
    port: u16,
    edge: u32,
}

/// Port connectivity of one arena slot: incoming edge per input port
/// ([`NO_EDGE`] while unconnected) and the outgoing `(port, edge)` pairs in
/// connect order.
#[derive(Clone, PartialEq, Debug, Default)]
struct PortRecord {
    ins: InlineVec<u32>,
    outs: InlineVec<OutEdge>,
    /// Number of output ports (fixed by the node kind).
    out_ports: u16,
}

/// A read-only view of one node: its operation plus port connectivity.
///
/// The graph stores nodes in flat parallel arrays (see [`Cdfg`]); `Node` is
/// a cheap `Copy` view into one slot of that storage, not an owned record.
#[derive(Clone, Copy, Debug)]
pub struct Node<'g> {
    /// The operation performed by this node.
    pub kind: &'g NodeKind,
    ports: &'g PortRecord,
}

impl<'g> Node<'g> {
    /// Incoming edge connected to input port `port`, if any.
    pub fn input_edge(&self, port: usize) -> Option<EdgeId> {
        self.ports
            .ins
            .as_slice()
            .get(port)
            .copied()
            .filter(|raw| *raw != NO_EDGE)
            .map(|raw| EdgeId::from_index(raw as usize))
    }

    /// Iterates over the connected input edges in port order.
    pub fn input_edges(self) -> impl Iterator<Item = EdgeId> + 'g {
        self.ports
            .ins
            .as_slice()
            .iter()
            .filter(|raw| **raw != NO_EDGE)
            .map(|raw| EdgeId::from_index(*raw as usize))
    }

    /// Iterates over the edges leaving output port `port`, allocation-free.
    pub fn output_edges(self, port: usize) -> impl Iterator<Item = EdgeId> + 'g {
        let port = port as u16;
        self.ports
            .outs
            .as_slice()
            .iter()
            .filter(move |out| out.port == port)
            .map(|out| EdgeId::from_index(out.edge as usize))
    }

    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.ports.ins.len()
    }

    /// Number of output ports.
    pub fn output_count(&self) -> usize {
        self.ports.out_ports as usize
    }

    /// Total number of edges leaving this node across all output ports.
    pub fn fanout(&self) -> usize {
        self.ports.outs.len()
    }

    /// `true` when every input port has an incoming edge.
    pub fn fully_connected(&self) -> bool {
        self.ports.ins.as_slice().iter().all(|raw| *raw != NO_EDGE)
    }
}

/// Reusable scratch buffers for [`Cdfg::topo_order_into`].
///
/// The worklist driver and the analyses call the topological sort on every
/// fixpoint round; keeping one `TopoScratch` alive across calls means the
/// in-degree table, the ready stack and the order buffer are reused instead
/// of reallocated per invocation.
#[derive(Clone, Debug, Default)]
pub struct TopoScratch {
    in_deg: Vec<u32>,
    /// Per-node edge multiplicity, reset to zero after each visit.
    counts: Vec<u32>,
    distinct: Vec<NodeId>,
    ready: Vec<NodeId>,
    order: Vec<NodeId>,
}

impl TopoScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// The order produced by the last successful
    /// [`Cdfg::topo_order_into`] call.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }
}

/// A Control Data Flow Graph.
///
/// The graph owns its nodes and edges. Nodes expose a fixed number of input
/// and output ports determined by their [`NodeKind`]; each input port is
/// driven by at most one edge, while output ports may fan out to any number of
/// consumers. Removed nodes and edges leave holes in the arena so that
/// identifiers stay stable; [`Cdfg::compact`] rebuilds a dense graph, and
/// [`Cdfg::enable_id_reuse`] opts a graph into free-list reuse of the holes.
///
/// Every mutation primitive reports a [`RewriteEvent`] to an optional
/// [`ChangeJournal`] (see [`Cdfg::enable_journal`]); the incremental rewrite
/// engine uses the journal to learn which nodes a rewrite touched.  Equality
/// compares only graph structure (name, nodes, edges) — journal state and
/// cached counters are ignored.
#[derive(Clone, Debug, Default)]
pub struct Cdfg {
    name: String,
    /// SoA arena: operation per slot (`None` = hole).
    kinds: Vec<Option<NodeKind>>,
    /// SoA arena: port connectivity per slot, parallel to `kinds`.
    ports: Vec<PortRecord>,
    edges: Vec<Option<Edge>>,
    /// Freed slots handed out again under [`Cdfg::enable_id_reuse`].
    free_nodes: Vec<NodeId>,
    free_edges: Vec<EdgeId>,
    reuse_ids: bool,
    live_nodes: usize,
    live_edges: usize,
    journal: Option<ChangeJournal>,
}

impl PartialEq for Cdfg {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.kinds == other.kinds
            && self.ports == other.ports
            && self.edges == other.edges
    }
}

impl Cdfg {
    /// Creates an empty graph with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Cdfg {
            name: name.into(),
            ..Cdfg::default()
        }
    }

    // ------------------------------------------------------------------
    // Change journal
    // ------------------------------------------------------------------

    /// Installs a fresh [`ChangeJournal`]: every subsequent mutation reports
    /// a [`RewriteEvent`] until [`Cdfg::disable_journal`] is called.
    pub fn enable_journal(&mut self) {
        self.journal = Some(ChangeJournal::new());
    }

    /// Removes the journal (if any) and returns it with its pending events.
    pub fn disable_journal(&mut self) -> Option<ChangeJournal> {
        self.journal.take()
    }

    /// `true` while a journal is installed.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Drains pending rewrite events (empty when no journal is installed).
    pub fn drain_events(&mut self) -> Vec<RewriteEvent> {
        self.journal
            .as_mut()
            .map(ChangeJournal::drain)
            .unwrap_or_default()
    }

    /// Drains the touched node ids of pending rewrite events into `out`
    /// without allocating (the hot-loop variant of [`Cdfg::drain_events`]
    /// used by the worklist driver).
    pub fn drain_touched_into(&mut self, out: &mut Vec<NodeId>) {
        if let Some(journal) = &mut self.journal {
            journal.drain_nodes_into(out);
        }
    }

    fn notify(&mut self, event: RewriteEvent) {
        if let Some(journal) = &mut self.journal {
            journal.on_event(event);
        }
    }

    /// Descriptive name of the graph (usually the source function name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Opts this graph into free-list id reuse: node and edge slots freed by
    /// [`Cdfg::remove_node`]/[`Cdfg::disconnect`] are handed out again by
    /// later `add_node`/`connect` calls instead of growing the arena.
    ///
    /// Off by default: the mapping flow keeps allocation monotonic so that
    /// every downstream ordering (topological ready stacks, extraction op
    /// order) — and therefore every mapped-program digest — is reproducible
    /// run-over-run.  Long-running rewrite sessions that churn many nodes
    /// can opt in to keep the arena dense; graph *semantics* (canonical
    /// signature, interpreter results, journal events) are unaffected, only
    /// the identity of freshly allocated ids changes.
    pub fn enable_id_reuse(&mut self) {
        self.reuse_ids = true;
    }

    /// `true` when freed ids are reused (see [`Cdfg::enable_id_reuse`]).
    pub fn id_reuse_enabled(&self) -> bool {
        self.reuse_ids
    }

    // ------------------------------------------------------------------
    // Node and edge accessors
    // ------------------------------------------------------------------

    /// Number of live nodes (O(1): maintained across every mutation).
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges (O(1): maintained across every mutation).
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound of node indices (including holes); useful for dense side
    /// tables indexed by [`NodeId::index`].
    pub fn node_bound(&self) -> usize {
        self.kinds.len()
    }

    /// Returns a view of the node with the given id.
    ///
    /// # Errors
    /// [`CdfgError::UnknownNode`] if the id is stale or out of range.
    pub fn node(&self, id: NodeId) -> Result<Node<'_>, CdfgError> {
        match self.kinds.get(id.index()) {
            Some(Some(kind)) => Ok(Node {
                kind,
                ports: &self.ports[id.index()],
            }),
            _ => Err(CdfgError::UnknownNode(id)),
        }
    }

    /// Returns the kind of a node.
    ///
    /// # Errors
    /// [`CdfgError::UnknownNode`] if the id is stale or out of range.
    pub fn kind(&self, id: NodeId) -> Result<&NodeKind, CdfgError> {
        self.kinds
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(CdfgError::UnknownNode(id))
    }

    /// Returns the edge with the given id.
    ///
    /// # Errors
    /// [`CdfgError::UnknownEdge`] if the id is stale or out of range.
    pub fn edge(&self, id: EdgeId) -> Result<&Edge, CdfgError> {
        self.edges
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(CdfgError::UnknownEdge(id))
    }

    /// `true` when the node id refers to a live node.
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.kinds
            .get(id.index())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// Iterates over `(id, node)` pairs of live nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, Node<'_>)> + '_ {
        self.kinds
            .iter()
            .zip(&self.ports)
            .enumerate()
            .filter_map(|(i, (kind, ports))| {
                kind.as_ref()
                    .map(|kind| (NodeId::from_index(i), Node { kind, ports }))
            })
    }

    /// Iterates over the ids of live nodes in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().map(|(id, _)| id)
    }

    /// Iterates over `(id, edge)` pairs of live edges in id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (EdgeId::from_index(i), e)))
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let record = PortRecord {
            ins: InlineVec::filled(kind.input_arity(), NO_EDGE),
            outs: InlineVec::new(),
            out_ports: kind.output_arity() as u16,
        };
        let id = match self.free_nodes.pop() {
            Some(id) => {
                self.kinds[id.index()] = Some(kind);
                self.ports[id.index()] = record;
                id
            }
            None => {
                let id = NodeId::from_index(self.kinds.len());
                self.kinds.push(Some(kind));
                self.ports.push(record);
                id
            }
        };
        self.live_nodes += 1;
        self.notify(RewriteEvent::NodeAdded(id));
        id
    }

    /// Connects output port `from_port` of `from` to input port `to_port` of
    /// `to` and returns the new edge id.
    ///
    /// # Errors
    /// * [`CdfgError::UnknownNode`] if either node does not exist;
    /// * [`CdfgError::PortOutOfRange`] if a port index exceeds the node arity;
    /// * [`CdfgError::PortAlreadyDriven`] if the input port already has a
    ///   driver.
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: usize,
        to: NodeId,
        to_port: usize,
    ) -> Result<EdgeId, CdfgError> {
        {
            let from_node = self.node(from)?;
            if from_port >= from_node.output_count() {
                return Err(CdfgError::PortOutOfRange {
                    node: from,
                    port: from_port,
                    arity: from_node.output_count(),
                    is_input: false,
                });
            }
            let to_node = self.node(to)?;
            if to_port >= to_node.input_count() {
                return Err(CdfgError::PortOutOfRange {
                    node: to,
                    port: to_port,
                    arity: to_node.input_count(),
                    is_input: true,
                });
            }
            if to_node.input_edge(to_port).is_some() {
                return Err(CdfgError::PortAlreadyDriven {
                    node: to,
                    port: to_port,
                });
            }
        }
        let edge = Edge::new(Endpoint::new(from, from_port), Endpoint::new(to, to_port));
        let id = match self.free_edges.pop() {
            Some(id) => {
                self.edges[id.index()] = Some(edge);
                id
            }
            None => {
                let id = EdgeId::from_index(self.edges.len());
                self.edges.push(Some(edge));
                id
            }
        };
        self.ports[from.index()].outs.push(OutEdge {
            port: from_port as u16,
            edge: id.index() as u32,
        });
        self.ports[to.index()].ins.as_mut_slice()[to_port] = id.index() as u32;
        self.live_edges += 1;
        self.notify(RewriteEvent::NodeTouched(from));
        self.notify(RewriteEvent::NodeTouched(to));
        Ok(id)
    }

    /// Removes an edge, leaving the destination port unconnected.
    ///
    /// # Errors
    /// [`CdfgError::UnknownEdge`] if the edge does not exist.
    pub fn disconnect(&mut self, id: EdgeId) -> Result<Edge, CdfgError> {
        let edge = self.edge(id).copied()?;
        let raw = id.index() as u32;
        if let Some(record) = self.ports.get_mut(edge.from.node.index()) {
            record.outs.retain(|out| out.edge != raw);
        }
        if let Some(record) = self.ports.get_mut(edge.to.node.index()) {
            let port = edge.to.port_index();
            let ins = record.ins.as_mut_slice();
            if port < ins.len() && ins[port] == raw {
                ins[port] = NO_EDGE;
            }
        }
        self.edges[id.index()] = None;
        if self.reuse_ids {
            self.free_edges.push(id);
        }
        self.live_edges -= 1;
        self.notify(RewriteEvent::NodeTouched(edge.from.node));
        self.notify(RewriteEvent::NodeTouched(edge.to.node));
        Ok(edge)
    }

    /// Removes a node and every edge attached to it, returning its kind.
    ///
    /// The attached edges are collected from the node's own port lists, so
    /// removal costs O(degree) instead of a scan over the whole edge table.
    ///
    /// # Errors
    /// [`CdfgError::UnknownNode`] if the node does not exist.
    pub fn remove_node(&mut self, id: NodeId) -> Result<NodeKind, CdfgError> {
        let node = self.node(id)?;
        let mut attached: Vec<EdgeId> = node.input_edges().collect();
        attached.extend(
            node.ports
                .outs
                .as_slice()
                .iter()
                .map(|out| EdgeId::from_index(out.edge as usize)),
        );
        // A self-edge appears in both the input and the output port lists;
        // deduplicate so it is disconnected exactly once.
        attached.sort_unstable();
        attached.dedup();
        for eid in attached {
            self.disconnect(eid)?;
        }
        self.live_nodes -= 1;
        self.notify(RewriteEvent::NodeRemoved(id));
        let kind = self.kinds[id.index()].take().expect("checked above");
        self.ports[id.index()] = PortRecord::default();
        if self.reuse_ids {
            self.free_nodes.push(id);
        }
        Ok(kind)
    }

    /// Source endpoint driving input port `port` of `node`, if connected.
    pub fn input_source(&self, node: NodeId, port: usize) -> Option<Endpoint> {
        let n = self.node(node).ok()?;
        let eid = n.input_edge(port)?;
        self.edge(eid).ok().map(|e| e.from)
    }

    /// All `(node, port)` endpoints consuming output port `port` of `node`.
    ///
    /// Allocates the result; [`Cdfg::output_sinks_iter`] is the
    /// allocation-free variant for hot paths.
    pub fn output_sinks(&self, node: NodeId, port: usize) -> Vec<Endpoint> {
        self.output_sinks_iter(node, port).collect()
    }

    /// Iterates over the `(node, port)` endpoints consuming output port
    /// `port` of `node`, without allocating.
    pub fn output_sinks_iter(
        &self,
        node: NodeId,
        port: usize,
    ) -> impl Iterator<Item = Endpoint> + '_ {
        let edges = match self.node(node) {
            Ok(n) => n.ports.outs.as_slice(),
            Err(_) => &[],
        };
        let port = port as u16;
        edges
            .iter()
            .filter(move |out| out.port == port)
            .filter_map(|out| {
                self.edge(EdgeId::from_index(out.edge as usize))
                    .ok()
                    .map(|e| e.to)
            })
    }

    /// Iterates over every sink endpoint of `node` across all output ports,
    /// in connect order, without allocating.  Duplicate target nodes are
    /// *not* removed — one entry per edge.
    pub fn sink_endpoints(&self, node: NodeId) -> impl Iterator<Item = Endpoint> + '_ {
        let edges = match self.node(node) {
            Ok(n) => n.ports.outs.as_slice(),
            Err(_) => &[],
        };
        edges.iter().filter_map(|out| {
            self.edge(EdgeId::from_index(out.edge as usize))
                .ok()
                .map(|e| e.to)
        })
    }

    /// Iterates over the source endpoints driving `node`'s input ports, in
    /// port order, without allocating.  Duplicate source nodes are *not*
    /// removed — one entry per connected port.
    pub fn source_endpoints(&self, node: NodeId) -> impl Iterator<Item = Endpoint> + '_ {
        let ins: &[u32] = match self.node(node) {
            Ok(n) => n.ports.ins.as_slice(),
            Err(_) => &[],
        };
        ins.iter().filter(|raw| **raw != NO_EDGE).filter_map(|raw| {
            self.edges
                .get(*raw as usize)
                .and_then(Option::as_ref)
                .map(|e| e.from)
        })
    }

    /// Predecessor nodes of `node` (one entry per connected input port, in
    /// port order, deduplicated).
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let mut preds = Vec::new();
        for source in self.source_endpoints(node) {
            if !preds.contains(&source.node) {
                preds.push(source.node);
            }
        }
        preds
    }

    /// Successor nodes of `node` (deduplicated, in port order then connect
    /// order).
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let Ok(n) = self.node(node) else {
            return Vec::new();
        };
        let mut succs = Vec::new();
        // Linear scan for small fan-outs; a hash set above that (constants
        // shared by hundreds of consumers would otherwise make this
        // quadratic).
        let mut seen: Option<std::collections::HashSet<NodeId>> = None;
        for port in 0..n.output_count() {
            for eid in n.output_edges(port) {
                if let Ok(edge) = self.edge(eid) {
                    let to = edge.to.node;
                    let fresh = match &mut seen {
                        Some(set) => set.insert(to),
                        None => {
                            if succs.len() >= 16 {
                                let mut set: std::collections::HashSet<NodeId> =
                                    succs.iter().copied().collect();
                                let fresh = set.insert(to);
                                seen = Some(set);
                                fresh
                            } else {
                                !succs.contains(&to)
                            }
                        }
                    };
                    if fresh {
                        succs.push(to);
                    }
                }
            }
        }
        succs
    }

    /// Rewires every consumer of output `from_port` of `from` so that it is
    /// driven by output `to_port` of `to` instead, returning the number of
    /// rewired edges.
    ///
    /// This is the workhorse of the transformation passes ("replace all uses
    /// of X with Y").
    ///
    /// # Errors
    /// Propagates [`CdfgError::UnknownNode`]/[`CdfgError::PortOutOfRange`]
    /// errors from the underlying connect operations.
    pub fn replace_uses(
        &mut self,
        from: NodeId,
        from_port: usize,
        to: NodeId,
        to_port: usize,
    ) -> Result<usize, CdfgError> {
        let uses: Vec<Endpoint> = self.output_sinks(from, from_port);
        let mut moved = 0;
        for sink in uses {
            let eid = self.node(sink.node)?.input_edge(sink.port_index()).ok_or(
                CdfgError::PortUnconnected {
                    node: sink.node,
                    port: sink.port_index(),
                },
            )?;
            self.disconnect(eid)?;
            self.connect(to, to_port, sink.node, sink.port_index())?;
            moved += 1;
        }
        Ok(moved)
    }

    // ------------------------------------------------------------------
    // Interface nodes
    // ------------------------------------------------------------------

    /// All `Input` nodes as `(name, id)` pairs in id order.
    pub fn inputs(&self) -> Vec<(String, NodeId)> {
        self.nodes()
            .filter_map(|(id, n)| match &n.kind {
                NodeKind::Input(name) => Some((name.clone(), id)),
                _ => None,
            })
            .collect()
    }

    /// All `Output` nodes as `(name, id)` pairs in id order.
    pub fn outputs(&self) -> Vec<(String, NodeId)> {
        self.nodes()
            .filter_map(|(id, n)| match &n.kind {
                NodeKind::Output(name) => Some((name.clone(), id)),
                _ => None,
            })
            .collect()
    }

    /// Finds the `Input` node with the given name.
    pub fn input_named(&self, name: &str) -> Option<NodeId> {
        self.inputs()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| id)
    }

    /// Finds the `Output` node with the given name.
    pub fn output_named(&self, name: &str) -> Option<NodeId> {
        self.outputs()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| id)
    }

    // ------------------------------------------------------------------
    // Ordering
    // ------------------------------------------------------------------

    /// Topological order of all live nodes (Kahn's algorithm).
    ///
    /// Allocates fresh buffers per call; the worklist driver and other
    /// repeat callers should hold a [`TopoScratch`] and use
    /// [`Cdfg::topo_order_into`] instead.
    ///
    /// # Errors
    /// [`CdfgError::CycleDetected`] when the graph contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, CdfgError> {
        let mut scratch = TopoScratch::new();
        self.topo_order_into(&mut scratch)?;
        Ok(std::mem::take(&mut scratch.order))
    }

    /// Topological order of all live nodes into reusable scratch buffers:
    /// the allocation-free variant of [`Cdfg::topo_order`].  On success the
    /// order is available as [`TopoScratch::order`].
    ///
    /// # Errors
    /// [`CdfgError::CycleDetected`] when the graph contains a cycle.
    pub fn topo_order_into(&self, scratch: &mut TopoScratch) -> Result<(), CdfgError> {
        let bound = self.node_bound();
        scratch.in_deg.clear();
        scratch.in_deg.resize(bound, 0);
        // `counts` is zeroed between visits below, so only its size needs
        // refreshing here.
        scratch.counts.resize(bound, 0);
        scratch.distinct.clear();
        scratch.ready.clear();
        scratch.order.clear();

        let mut live = 0usize;
        for (id, node) in self.nodes() {
            live += 1;
            let connected = node
                .ports
                .ins
                .as_slice()
                .iter()
                .filter(|raw| **raw != NO_EDGE)
                .count() as u32;
            scratch.in_deg[id.index()] = connected;
            if connected == 0 {
                scratch.ready.push(id);
            }
        }
        scratch.order.reserve(live);
        while let Some(id) = scratch.ready.pop() {
            scratch.order.push(id);
            // Distinct successors in port order then connect order, each
            // with its edge multiplicity, using the zeroed `counts` table as
            // the seen-marker.
            let record = &self.ports[id.index()];
            for port in 0..record.out_ports {
                for out in record.outs.as_slice() {
                    if out.port != port {
                        continue;
                    }
                    let to = self.edges[out.edge as usize]
                        .as_ref()
                        .expect("port lists only hold live edges")
                        .to
                        .node;
                    if scratch.counts[to.index()] == 0 {
                        scratch.distinct.push(to);
                    }
                    scratch.counts[to.index()] += 1;
                }
            }
            // A successor may be connected through several ports; decrement
            // once per connecting edge.  A successor's counter reaches zero
            // exactly once (each predecessor is processed once), so it is
            // pushed exactly once — no membership scan needed.
            for i in 0..scratch.distinct.len() {
                let succ = scratch.distinct[i];
                let multiplicity = std::mem::take(&mut scratch.counts[succ.index()]);
                let slot = &mut scratch.in_deg[succ.index()];
                let was_positive = *slot > 0;
                *slot = slot.saturating_sub(multiplicity);
                if *slot == 0 && was_positive {
                    scratch.ready.push(succ);
                }
            }
            scratch.distinct.clear();
        }
        if scratch.order.len() == live {
            Ok(())
        } else {
            Err(CdfgError::CycleDetected)
        }
    }

    /// `true` when the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_ok()
    }

    /// Rebuilds the graph without holes, returning the compacted graph and a
    /// dense mapping from old to new node ids.
    pub fn compact(&self) -> (Cdfg, NodeRemap) {
        let mut out = Cdfg::new(self.name.clone());
        let mut remap = NodeRemap::with_bound(self.node_bound());
        for (id, node) in self.nodes() {
            let new_id = out.add_node(node.kind.clone());
            remap.insert(id, new_id);
        }
        for (_, edge) in self.edges() {
            let from = remap[edge.from.node];
            let to = remap[edge.to.node];
            out.connect(from, edge.from.port_index(), to, edge.to.port_index())
                .expect("edges of a well-formed graph remain connectable");
        }
        (out, remap)
    }

    /// Copies another graph into this one, returning the dense node id
    /// remapping.
    ///
    /// Interface (`Input`/`Output`) nodes of the spliced graph are copied
    /// verbatim; callers typically rewire or remove them afterwards (this is
    /// what the loop-unrolling transformation does).
    pub fn splice(&mut self, other: &Cdfg) -> NodeRemap {
        let mut remap = NodeRemap::with_bound(other.node_bound());
        for (id, node) in other.nodes() {
            let new_id = self.add_node(node.kind.clone());
            remap.insert(id, new_id);
        }
        for (_, edge) in other.edges() {
            let from = remap[edge.from.node];
            let to = remap[edge.to.node];
            self.connect(from, edge.from.port_index(), to, edge.to.port_index())
                .expect("edges of a well-formed graph remain connectable");
        }
        remap
    }
}

// ---------------------------------------------------------------------------
// Binary serialization
// ---------------------------------------------------------------------------

/// Version tag of the [`Cdfg::encode_into`] byte format.  Bumped whenever the
/// arena layout below changes shape; decoders reject unknown versions with a
/// typed error instead of misreading bytes.
const CDFG_CODEC_VERSION: u8 = 1;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn decode_err(what: &str) -> CdfgError {
    CdfgError::Invalid(format!("decode: {what}"))
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CdfgError> {
    if input.len() < n {
        return Err(decode_err("truncated input"));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

fn get_u8(input: &mut &[u8]) -> Result<u8, CdfgError> {
    Ok(take(input, 1)?[0])
}

fn get_u16(input: &mut &[u8]) -> Result<u16, CdfgError> {
    let bytes = take(input, 2)?.try_into().expect("take returned 2 bytes");
    Ok(u16::from_le_bytes(bytes))
}

fn get_u32(input: &mut &[u8]) -> Result<u32, CdfgError> {
    let bytes = take(input, 4)?.try_into().expect("take returned 4 bytes");
    Ok(u32::from_le_bytes(bytes))
}

fn get_i64(input: &mut &[u8]) -> Result<i64, CdfgError> {
    let bytes = take(input, 8)?.try_into().expect("take returned 8 bytes");
    Ok(i64::from_le_bytes(bytes))
}

/// Bounded element-count read: each element needs at least `min_elem_bytes`
/// bytes, so a corrupt length cannot trigger a huge allocation.
fn get_len(input: &mut &[u8], min_elem_bytes: usize) -> Result<usize, CdfgError> {
    let len = get_u32(input)? as usize;
    if len.saturating_mul(min_elem_bytes.max(1)) > input.len() {
        return Err(decode_err("length prefix exceeds input"));
    }
    Ok(len)
}

fn get_str(input: &mut &[u8]) -> Result<String, CdfgError> {
    let len = get_len(input, 1)?;
    let bytes = take(input, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| decode_err("invalid utf-8 string"))
}

fn put_node_kind(out: &mut Vec<u8>, kind: &NodeKind) {
    use crate::node::{BinOp, UnOp};
    match kind {
        NodeKind::Const(c) => {
            out.push(1);
            put_i64(out, *c);
        }
        NodeKind::Input(name) => {
            out.push(2);
            put_str(out, name);
        }
        NodeKind::Output(name) => {
            out.push(3);
            put_str(out, name);
        }
        NodeKind::BinOp(op) => {
            out.push(4);
            let index = BinOp::ALL
                .iter()
                .position(|o| o == op)
                .expect("every BinOp is listed in ALL");
            out.push(index as u8);
        }
        NodeKind::UnOp(op) => {
            out.push(5);
            let index = UnOp::ALL
                .iter()
                .position(|o| o == op)
                .expect("every UnOp is listed in ALL");
            out.push(index as u8);
        }
        NodeKind::Mux => out.push(6),
        NodeKind::Store => out.push(7),
        NodeKind::Fetch => out.push(8),
        NodeKind::Delete => out.push(9),
        NodeKind::Copy => out.push(10),
        NodeKind::Loop(spec) => {
            out.push(11);
            put_u32(out, spec.vars.len() as u32);
            for var in &spec.vars {
                put_str(out, var);
            }
            spec.cond.encode_into(out);
            spec.body.encode_into(out);
        }
    }
}

fn get_node_kind(input: &mut &[u8]) -> Result<NodeKind, CdfgError> {
    use crate::node::{BinOp, LoopSpec, UnOp};
    Ok(match get_u8(input)? {
        1 => NodeKind::Const(get_i64(input)?),
        2 => NodeKind::Input(get_str(input)?),
        3 => NodeKind::Output(get_str(input)?),
        4 => NodeKind::BinOp(
            *BinOp::ALL
                .get(get_u8(input)? as usize)
                .ok_or_else(|| decode_err("binop tag out of range"))?,
        ),
        5 => NodeKind::UnOp(
            *UnOp::ALL
                .get(get_u8(input)? as usize)
                .ok_or_else(|| decode_err("unop tag out of range"))?,
        ),
        6 => NodeKind::Mux,
        7 => NodeKind::Store,
        8 => NodeKind::Fetch,
        9 => NodeKind::Delete,
        10 => NodeKind::Copy,
        11 => {
            let nvars = get_len(input, 4)?;
            let mut vars = Vec::with_capacity(nvars);
            for _ in 0..nvars {
                vars.push(get_str(input)?);
            }
            let cond = Cdfg::decode_from(input)?;
            let body = Cdfg::decode_from(input)?;
            NodeKind::Loop(Box::new(LoopSpec { vars, cond, body }))
        }
        _ => return Err(decode_err("unknown node kind tag")),
    })
}

impl Cdfg {
    /// Appends a self-contained binary encoding of the graph to `out`.
    ///
    /// The encoding dumps the flat arena verbatim — including removed-slot
    /// holes, free lists and the id-reuse flag — so a decoded graph is
    /// *exactly* equal (`PartialEq`, node/edge ids, iteration order,
    /// [`canonical_signature`](crate::canonical_signature)) to the original.
    /// Journal state is not persisted: a decoded graph has no journal
    /// installed.  The format is versioned and little-endian; it is the
    /// substrate of the mapping cache's on-disk tier.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(CDFG_CODEC_VERSION);
        put_str(out, &self.name);
        put_u32(out, self.kinds.len() as u32);
        for kind in &self.kinds {
            match kind {
                None => out.push(0),
                Some(kind) => put_node_kind(out, kind),
            }
        }
        for record in &self.ports {
            put_u32(out, record.ins.len() as u32);
            for &edge in record.ins.as_slice() {
                put_u32(out, edge);
            }
            put_u32(out, record.outs.len() as u32);
            for out_edge in record.outs.as_slice() {
                put_u16(out, out_edge.port);
                put_u32(out, out_edge.edge);
            }
            put_u16(out, record.out_ports);
        }
        put_u32(out, self.edges.len() as u32);
        for edge in &self.edges {
            match edge {
                None => out.push(0),
                Some(edge) => {
                    out.push(1);
                    put_u32(out, edge.from.node.0);
                    put_u16(out, edge.from.port);
                    put_u32(out, edge.to.node.0);
                    put_u16(out, edge.to.port);
                }
            }
        }
        put_u32(out, self.free_nodes.len() as u32);
        for id in &self.free_nodes {
            put_u32(out, id.0);
        }
        put_u32(out, self.free_edges.len() as u32);
        for id in &self.free_edges {
            put_u32(out, id.0);
        }
        out.push(u8::from(self.reuse_ids));
    }

    /// Decodes a graph previously written by [`Cdfg::encode_into`],
    /// consuming its bytes from the front of `input`.
    ///
    /// # Errors
    /// [`CdfgError::Invalid`] on truncated input, an unknown format version
    /// or any malformed field; the input slice is left in an unspecified
    /// position after an error.
    pub fn decode_from(input: &mut &[u8]) -> Result<Cdfg, CdfgError> {
        let version = get_u8(input)?;
        if version != CDFG_CODEC_VERSION {
            return Err(decode_err("unsupported cdfg codec version"));
        }
        let name = get_str(input)?;
        let nslots = get_len(input, 1)?;
        let mut kinds = Vec::with_capacity(nslots);
        for _ in 0..nslots {
            // Peek the tag: 0 is a hole, anything else a node kind.
            if input.first() == Some(&0) {
                *input = &input[1..];
                kinds.push(None);
            } else {
                kinds.push(Some(get_node_kind(input)?));
            }
        }
        let mut ports = Vec::with_capacity(nslots);
        for _ in 0..nslots {
            let nins = get_len(input, 4)?;
            let mut ins = InlineVec::new();
            for _ in 0..nins {
                ins.push(get_u32(input)?);
            }
            let nouts = get_len(input, 6)?;
            let mut outs = InlineVec::new();
            for _ in 0..nouts {
                let port = get_u16(input)?;
                let edge = get_u32(input)?;
                outs.push(OutEdge { port, edge });
            }
            let out_ports = get_u16(input)?;
            ports.push(PortRecord {
                ins,
                outs,
                out_ports,
            });
        }
        let nedges = get_len(input, 1)?;
        let mut edges = Vec::with_capacity(nedges);
        for _ in 0..nedges {
            edges.push(match get_u8(input)? {
                0 => None,
                1 => {
                    let from_node = NodeId(get_u32(input)?);
                    let from_port = get_u16(input)?;
                    let to_node = NodeId(get_u32(input)?);
                    let to_port = get_u16(input)?;
                    Some(Edge {
                        from: Endpoint {
                            node: from_node,
                            port: from_port,
                        },
                        to: Endpoint {
                            node: to_node,
                            port: to_port,
                        },
                    })
                }
                _ => return Err(decode_err("bad edge presence tag")),
            });
        }
        let nfree_nodes = get_len(input, 4)?;
        let mut free_nodes = Vec::with_capacity(nfree_nodes);
        for _ in 0..nfree_nodes {
            free_nodes.push(NodeId(get_u32(input)?));
        }
        let nfree_edges = get_len(input, 4)?;
        let mut free_edges = Vec::with_capacity(nfree_edges);
        for _ in 0..nfree_edges {
            free_edges.push(EdgeId(get_u32(input)?));
        }
        let reuse_ids = match get_u8(input)? {
            0 => false,
            1 => true,
            _ => return Err(decode_err("bad reuse flag")),
        };
        let live_nodes = kinds.iter().filter(|k| k.is_some()).count();
        let live_edges = edges.iter().filter(|e| e.is_some()).count();
        Ok(Cdfg {
            name,
            kinds,
            ports,
            edges,
            free_nodes,
            free_edges,
            reuse_ids,
            live_nodes,
            live_edges,
            journal: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BinOp;
    use std::collections::HashMap;

    fn mac_graph() -> (Cdfg, NodeId, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("mac");
        let a = g.add_node(NodeKind::Input("a".into()));
        let b = g.add_node(NodeKind::Input("b".into()));
        let c = g.add_node(NodeKind::Input("c".into()));
        let mul = g.add_node(NodeKind::BinOp(BinOp::Mul));
        let add = g.add_node(NodeKind::BinOp(BinOp::Add));
        let out = g.add_node(NodeKind::Output("out".into()));
        g.connect(a, 0, mul, 0).unwrap();
        g.connect(b, 0, mul, 1).unwrap();
        g.connect(mul, 0, add, 0).unwrap();
        g.connect(c, 0, add, 1).unwrap();
        g.connect(add, 0, out, 0).unwrap();
        (g, a, b, c, mul, add, out)
    }

    #[test]
    fn build_and_count() {
        let (g, ..) = mac_graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.inputs().len(), 3);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.name(), "mac");
    }

    #[test]
    fn connect_rejects_bad_ports() {
        let mut g = Cdfg::new("t");
        let a = g.add_node(NodeKind::Const(1));
        let add = g.add_node(NodeKind::BinOp(BinOp::Add));
        assert!(matches!(
            g.connect(a, 1, add, 0),
            Err(CdfgError::PortOutOfRange {
                is_input: false,
                ..
            })
        ));
        assert!(matches!(
            g.connect(a, 0, add, 2),
            Err(CdfgError::PortOutOfRange { is_input: true, .. })
        ));
        g.connect(a, 0, add, 0).unwrap();
        assert!(matches!(
            g.connect(a, 0, add, 0),
            Err(CdfgError::PortAlreadyDriven { .. })
        ));
    }

    #[test]
    fn connect_rejects_unknown_nodes() {
        let mut g = Cdfg::new("t");
        let a = g.add_node(NodeKind::Const(1));
        let ghost = NodeId::from_index(99);
        assert!(matches!(
            g.connect(a, 0, ghost, 0),
            Err(CdfgError::UnknownNode(_))
        ));
        assert!(matches!(
            g.connect(ghost, 0, a, 0),
            Err(CdfgError::UnknownNode(_))
        ));
    }

    #[test]
    fn predecessors_and_successors() {
        let (g, a, b, c, mul, add, out) = mac_graph();
        assert_eq!(g.predecessors(mul), vec![a, b]);
        assert_eq!(g.predecessors(add), vec![mul, c]);
        assert_eq!(g.successors(mul), vec![add]);
        assert_eq!(g.successors(add), vec![out]);
        assert!(g.predecessors(a).is_empty());
        assert!(g.successors(out).is_empty());
    }

    #[test]
    fn node_view_connectivity() {
        let (g, a, _b, _c, mul, add, out) = mac_graph();
        let mul_view = g.node(mul).unwrap();
        assert_eq!(mul_view.input_count(), 2);
        assert_eq!(mul_view.output_count(), 1);
        assert!(mul_view.fully_connected());
        assert_eq!(mul_view.fanout(), 1);
        assert_eq!(mul_view.output_edges(5).count(), 0);
        assert!(g.node(out).unwrap().input_edge(0).is_some());
        let a_view = g.node(a).unwrap();
        assert_eq!(a_view.input_count(), 0);
        assert_eq!(a_view.fanout(), 1);
        assert!(g.node(add).unwrap().input_edge(1).is_some());
    }

    #[test]
    fn inline_ports_spill_on_high_fanout() {
        // A constant fanned out to more consumers than the inline capacity
        // exercises the heap-spill path of the out-edge list.
        let mut g = Cdfg::new("fanout");
        let c = g.add_node(NodeKind::Const(7));
        let mut sinks = Vec::new();
        for i in 0..INLINE_PORTS + 3 {
            let out = g.add_node(NodeKind::Output(format!("o{i}")));
            g.connect(c, 0, out, 0).unwrap();
            sinks.push(out);
        }
        assert_eq!(g.node(c).unwrap().fanout(), INLINE_PORTS + 3);
        let observed: Vec<NodeId> = g.output_sinks(c, 0).iter().map(|e| e.node).collect();
        assert_eq!(observed, sinks);
        // Disconnecting from a spilled list keeps the remaining order.
        let first = g.node(c).unwrap().output_edges(0).next().unwrap();
        g.disconnect(first).unwrap();
        let observed: Vec<NodeId> = g.output_sinks(c, 0).iter().map(|e| e.node).collect();
        assert_eq!(observed, sinks[1..]);
    }

    #[test]
    fn disconnect_and_remove() {
        let (mut g, _a, _b, _c, mul, add, _out) = mac_graph();
        let eid = g.node(add).unwrap().input_edge(0).unwrap();
        let edge = g.disconnect(eid).unwrap();
        assert_eq!(edge.from.node, mul);
        assert_eq!(g.edge_count(), 4);
        assert!(g.node(add).unwrap().input_edge(0).is_none());

        let kind = g.remove_node(mul).unwrap();
        assert_eq!(kind, NodeKind::BinOp(BinOp::Mul));
        assert!(!g.contains_node(mul));
        assert!(matches!(g.node(mul), Err(CdfgError::UnknownNode(_))));
        // Edges from a and b into mul are gone too.
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn replace_uses_rewires_consumers() {
        let (mut g, _a, _b, c, mul, add, _out) = mac_graph();
        // Replace uses of mul's output with c: add.0 should now be driven by c.
        let moved = g.replace_uses(mul, 0, c, 0).unwrap();
        assert_eq!(moved, 1);
        assert_eq!(g.input_source(add, 0).unwrap().node, c);
        assert!(g.output_sinks(mul, 0).is_empty());
    }

    #[test]
    fn topo_order_is_consistent() {
        let (g, ..) = mac_graph();
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 6);
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for (_, edge) in g.edges() {
            assert!(pos[&edge.from.node] < pos[&edge.to.node]);
        }
    }

    #[test]
    fn topo_scratch_is_reusable() {
        let (mut g, ..) = mac_graph();
        let mut scratch = TopoScratch::new();
        g.topo_order_into(&mut scratch).unwrap();
        let first: Vec<NodeId> = scratch.order().to_vec();
        assert_eq!(first, g.topo_order().unwrap());
        // Mutate, then reuse the same scratch: the result tracks the graph.
        let extra = g.add_node(NodeKind::Const(3));
        g.topo_order_into(&mut scratch).unwrap();
        assert_eq!(scratch.order().len(), 7);
        assert!(scratch.order().contains(&extra));
    }

    #[test]
    fn remove_node_handles_self_edges() {
        let mut g = Cdfg::new("self");
        let x = g.add_node(NodeKind::Copy);
        g.connect(x, 0, x, 0).unwrap();
        assert_eq!(g.edge_count(), 1);
        g.remove_node(x).unwrap();
        assert!(!g.contains_node(x));
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn cycle_detection() {
        let mut g = Cdfg::new("cyc");
        let x = g.add_node(NodeKind::Copy);
        let y = g.add_node(NodeKind::Copy);
        g.connect(x, 0, y, 0).unwrap();
        g.connect(y, 0, x, 0).unwrap();
        assert!(!g.is_acyclic());
        assert!(matches!(g.topo_order(), Err(CdfgError::CycleDetected)));
    }

    #[test]
    fn ids_are_not_reused_by_default() {
        let (mut g, _a, _b, _c, mul, _add, _out) = mac_graph();
        let bound = g.node_bound();
        g.remove_node(mul).unwrap();
        let fresh = g.add_node(NodeKind::Const(1));
        assert_eq!(fresh.index(), bound);
        assert_eq!(g.node_bound(), bound + 1);
    }

    #[test]
    fn id_reuse_recycles_freed_slots() {
        let (mut g, _a, _b, _c, mul, add, _out) = mac_graph();
        assert!(!g.id_reuse_enabled());
        g.enable_id_reuse();
        let bound = g.node_bound();
        let edges_bound = g.edges.len();
        g.remove_node(mul).unwrap();
        let recycled = g.add_node(NodeKind::Const(1));
        assert_eq!(recycled, mul);
        assert_eq!(g.node_bound(), bound);
        // Freed edge slots are recycled too.
        let eid = g.connect(recycled, 0, add, 0).unwrap();
        assert!(eid.index() < edges_bound);
        assert_eq!(g.edges.len(), edges_bound);
        // Graph semantics are unchanged: the recycled node behaves normally.
        assert_eq!(g.input_source(add, 0).unwrap().node, recycled);
    }

    #[test]
    fn compact_preserves_structure() {
        let (mut g, _a, _b, _c, mul, _add, _out) = mac_graph();
        g.remove_node(mul).unwrap();
        let (compacted, remap) = g.compact();
        assert_eq!(compacted.node_count(), 5);
        assert_eq!(compacted.edge_count(), g.edge_count());
        assert_eq!(remap.len(), 5);
        assert_eq!(compacted.node_bound(), 5);
        assert_eq!(remap.get(mul), None);
    }

    #[test]
    fn splice_copies_everything() {
        let (mut g, ..) = mac_graph();
        let (other, ..) = mac_graph();
        let before_nodes = g.node_count();
        let before_edges = g.edge_count();
        let remap = g.splice(&other);
        assert_eq!(g.node_count(), before_nodes * 2);
        assert_eq!(g.edge_count(), before_edges * 2);
        assert_eq!(remap.len(), before_nodes);
    }

    #[test]
    fn cached_counts_track_every_mutation() {
        let (mut g, _a, _b, _c, mul, add, _out) = mac_graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        let eid = g.node(add).unwrap().input_edge(1).unwrap();
        g.disconnect(eid).unwrap();
        assert_eq!(g.edge_count(), 4);
        g.remove_node(mul).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 1);
        let extra = g.add_node(NodeKind::Const(1));
        g.connect(extra, 0, add, 0).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 2);
        // Splice and compact keep the caches consistent too.
        let (other, ..) = mac_graph();
        g.splice(&other);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 7);
        let (compacted, _) = g.compact();
        assert_eq!(compacted.node_count(), 12);
        assert_eq!(compacted.edge_count(), 7);
        // The caches agree with a full scan.
        assert_eq!(g.node_count(), g.nodes().count());
        assert_eq!(g.edge_count(), g.edges().count());
    }

    #[test]
    fn journal_reports_rewrite_events() {
        use crate::observer::RewriteEvent;
        let (mut g, _a, _b, c, mul, add, _out) = mac_graph();
        assert!(!g.journal_enabled());
        assert!(g.drain_events().is_empty());
        g.enable_journal();
        assert!(g.journal_enabled());

        let n = g.add_node(NodeKind::Const(9));
        let events = g.drain_events();
        assert_eq!(events, vec![RewriteEvent::NodeAdded(n)]);

        g.connect(n, 0, add, 0).unwrap_err(); // port already driven: no event
        assert!(g.drain_events().is_empty());

        // replace_uses touches the old source, the new source and consumers.
        g.replace_uses(mul, 0, c, 0).unwrap();
        let touched: Vec<_> = g.drain_events().iter().map(|e| e.node()).collect();
        assert!(touched.contains(&mul));
        assert!(touched.contains(&c));
        assert!(touched.contains(&add));

        // remove_node reports the peers of every dropped edge and the node.
        g.remove_node(mul).unwrap();
        let events = g.drain_events();
        assert!(events.contains(&RewriteEvent::NodeRemoved(mul)));
        assert!(events
            .iter()
            .any(|e| matches!(e, RewriteEvent::NodeTouched(id) if *id != mul)));

        let journal = g.disable_journal().unwrap();
        assert!(journal.is_empty());
        g.add_node(NodeKind::Const(0));
        assert!(g.drain_events().is_empty());
    }

    #[test]
    fn equality_ignores_journal_state() {
        let (mut g1, ..) = mac_graph();
        let (g2, ..) = mac_graph();
        assert_eq!(g1, g2);
        g1.enable_journal();
        assert_eq!(g1, g2);
    }

    #[test]
    fn interface_lookup() {
        let (g, a, ..) = mac_graph();
        assert_eq!(g.input_named("a"), Some(a));
        assert_eq!(g.input_named("missing"), None);
        assert!(g.output_named("out").is_some());
    }

    #[test]
    fn codec_roundtrips_exactly_including_holes() {
        // A graph with removed slots, id reuse and a spilled fan-out list
        // exercises every arena feature the codec must preserve.
        let (mut g, _a, _b, _c, mul, _add, _out) = mac_graph();
        g.enable_id_reuse();
        g.remove_node(mul).unwrap();
        let big = g.add_node(NodeKind::Const(9));
        for i in 0..INLINE_PORTS + 2 {
            let sink = g.add_node(NodeKind::Output(format!("s{i}")));
            g.connect(big, 0, sink, 0).unwrap();
        }
        let mut bytes = Vec::new();
        g.encode_into(&mut bytes);
        let mut slice = bytes.as_slice();
        let decoded = Cdfg::decode_from(&mut slice).unwrap();
        assert!(slice.is_empty(), "codec must consume exactly its bytes");
        assert_eq!(decoded, g);
        assert_eq!(decoded.live_nodes, g.live_nodes);
        assert_eq!(decoded.live_edges, g.live_edges);
        assert_eq!(decoded.free_nodes, g.free_nodes);
        assert_eq!(decoded.free_edges, g.free_edges);
        assert_eq!(decoded.reuse_ids, g.reuse_ids);
        assert_eq!(
            crate::canonical_signature(&decoded),
            crate::canonical_signature(&g)
        );
    }

    #[test]
    fn codec_roundtrips_structured_loops() {
        // A loop node nests two full graphs inside its spec.
        let mut outer = Cdfg::new("outer");
        let mut cond = Cdfg::new("cond");
        let c = cond.add_node(NodeKind::Const(1));
        let o = cond.add_node(NodeKind::Output("c".into()));
        cond.connect(c, 0, o, 0).unwrap();
        let body = Cdfg::new("body");
        outer.add_node(NodeKind::Loop(Box::new(crate::node::LoopSpec {
            vars: vec!["i".into(), "acc".into()],
            cond,
            body,
        })));
        let mut bytes = Vec::new();
        outer.encode_into(&mut bytes);
        let decoded = Cdfg::decode_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(decoded, outer);
    }

    #[test]
    fn codec_rejects_corrupt_bytes_without_panicking() {
        let (g, ..) = mac_graph();
        let mut bytes = Vec::new();
        g.encode_into(&mut bytes);
        // Truncations at every prefix length must fail cleanly or decode to
        // a valid graph (never panic, never read out of bounds).
        for cut in 0..bytes.len() {
            let _ = Cdfg::decode_from(&mut &bytes[..cut]);
        }
        // A wrong version byte is a typed error.
        let mut wrong = bytes.clone();
        wrong[0] = 0xEE;
        assert!(Cdfg::decode_from(&mut wrong.as_slice()).is_err());
    }
}
