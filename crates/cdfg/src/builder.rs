//! Ergonomic, expression-oriented construction of CDFGs.
//!
//! [`CdfgBuilder`] wraps a [`Cdfg`] and hands out [`Wire`]s — cheap handles to
//! a node's output port — so that graphs can be written the way the source
//! expression reads:
//!
//! ```
//! # fn main() -> Result<(), fpfa_cdfg::CdfgError> {
//! use fpfa_cdfg::CdfgBuilder;
//!
//! let mut b = CdfgBuilder::new("saxpy");
//! let a = b.input("a");
//! let x = b.input("x");
//! let y = b.input("y");
//! let ax = b.mul(a, x);
//! let axpy = b.add(ax, y);
//! b.output("r", axpy);
//! let graph = b.finish()?;
//! assert_eq!(graph.node_count(), 6);
//! # Ok(())
//! # }
//! ```

use crate::error::CdfgError;
use crate::graph::Cdfg;
use crate::ids::NodeId;
use crate::node::{BinOp, LoopSpec, NodeKind, UnOp};
use crate::validate;

/// A handle to one output port of a node under construction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Wire {
    /// Producing node.
    pub node: NodeId,
    /// Output port on that node.
    pub port: usize,
}

/// Builder producing validated [`Cdfg`]s.
#[derive(Debug)]
pub struct CdfgBuilder {
    graph: Cdfg,
}

impl CdfgBuilder {
    /// Starts building a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CdfgBuilder {
            graph: Cdfg::new(name),
        }
    }

    /// Adds a named graph input and returns its wire.
    pub fn input(&mut self, name: impl Into<String>) -> Wire {
        let id = self.graph.add_node(NodeKind::Input(name.into()));
        Wire { node: id, port: 0 }
    }

    /// Adds a constant and returns its wire.
    pub fn constant(&mut self, value: i64) -> Wire {
        let id = self.graph.add_node(NodeKind::Const(value));
        Wire { node: id, port: 0 }
    }

    /// Adds a named graph output driven by `value`.
    pub fn output(&mut self, name: impl Into<String>, value: Wire) -> NodeId {
        let id = self.graph.add_node(NodeKind::Output(name.into()));
        self.graph
            .connect(value.node, value.port, id, 0)
            .expect("builder wires are always valid");
        id
    }

    /// Adds a binary operation.
    pub fn binop(&mut self, op: BinOp, a: Wire, b: Wire) -> Wire {
        let id = self.graph.add_node(NodeKind::BinOp(op));
        self.graph
            .connect(a.node, a.port, id, 0)
            .expect("builder wires are always valid");
        self.graph
            .connect(b.node, b.port, id, 1)
            .expect("builder wires are always valid");
        Wire { node: id, port: 0 }
    }

    /// Adds an addition.
    pub fn add(&mut self, a: Wire, b: Wire) -> Wire {
        self.binop(BinOp::Add, a, b)
    }

    /// Adds a subtraction.
    pub fn sub(&mut self, a: Wire, b: Wire) -> Wire {
        self.binop(BinOp::Sub, a, b)
    }

    /// Adds a multiplication.
    pub fn mul(&mut self, a: Wire, b: Wire) -> Wire {
        self.binop(BinOp::Mul, a, b)
    }

    /// Adds a unary operation.
    pub fn unop(&mut self, op: UnOp, a: Wire) -> Wire {
        let id = self.graph.add_node(NodeKind::UnOp(op));
        self.graph
            .connect(a.node, a.port, id, 0)
            .expect("builder wires are always valid");
        Wire { node: id, port: 0 }
    }

    /// Adds a `Copy` wire node forwarding `a` (a placeholder with no
    /// semantics; copy propagation removes it).
    pub fn copy(&mut self, a: Wire) -> Wire {
        let id = self.graph.add_node(NodeKind::Copy);
        self.graph
            .connect(a.node, a.port, id, 0)
            .expect("builder wires are always valid");
        Wire { node: id, port: 0 }
    }

    /// Adds a multiplexer selecting `if_true` when `cond` is non-zero.
    pub fn mux(&mut self, cond: Wire, if_true: Wire, if_false: Wire) -> Wire {
        let id = self.graph.add_node(NodeKind::Mux);
        for (port, w) in [cond, if_true, if_false].into_iter().enumerate() {
            self.graph
                .connect(w.node, w.port, id, port)
                .expect("builder wires are always valid");
        }
        Wire { node: id, port: 0 }
    }

    /// Adds a `ST` statespace store; returns the new statespace wire.
    pub fn store(&mut self, state: Wire, address: Wire, data: Wire) -> Wire {
        let id = self.graph.add_node(NodeKind::Store);
        for (port, w) in [state, address, data].into_iter().enumerate() {
            self.graph
                .connect(w.node, w.port, id, port)
                .expect("builder wires are always valid");
        }
        Wire { node: id, port: 0 }
    }

    /// Adds a `FE` statespace fetch; returns the fetched data wire.
    pub fn fetch(&mut self, state: Wire, address: Wire) -> Wire {
        let id = self.graph.add_node(NodeKind::Fetch);
        self.graph
            .connect(state.node, state.port, id, 0)
            .expect("builder wires are always valid");
        self.graph
            .connect(address.node, address.port, id, 1)
            .expect("builder wires are always valid");
        Wire { node: id, port: 0 }
    }

    /// Adds a `DEL` statespace delete; returns the new statespace wire.
    pub fn delete(&mut self, state: Wire, address: Wire) -> Wire {
        let id = self.graph.add_node(NodeKind::Delete);
        self.graph
            .connect(state.node, state.port, id, 0)
            .expect("builder wires are always valid");
        self.graph
            .connect(address.node, address.port, id, 1)
            .expect("builder wires are always valid");
        Wire { node: id, port: 0 }
    }

    /// Adds a structured loop node; `initial[i]` drives loop variable `i`.
    ///
    /// Returns one wire per loop-carried variable holding its final value.
    pub fn loop_node(&mut self, spec: LoopSpec, initial: &[Wire]) -> Vec<Wire> {
        let arity = spec.arity();
        assert_eq!(
            initial.len(),
            arity,
            "loop expects {arity} initial values, got {}",
            initial.len()
        );
        let id = self.graph.add_node(NodeKind::Loop(Box::new(spec)));
        for (port, w) in initial.iter().enumerate() {
            self.graph
                .connect(w.node, w.port, id, port)
                .expect("builder wires are always valid");
        }
        (0..arity).map(|port| Wire { node: id, port }).collect()
    }

    /// Read-only access to the graph under construction.
    pub fn graph(&self) -> &Cdfg {
        &self.graph
    }

    /// Finishes construction, validating the graph.
    ///
    /// # Errors
    /// Propagates validation failures (unconnected ports, cycles, duplicate
    /// interface names, malformed loops).
    pub fn finish(self) -> Result<Cdfg, CdfgError> {
        validate::validate(&self.graph)?;
        Ok(self.graph)
    }

    /// Finishes construction without validating (for deliberately malformed
    /// test graphs).
    pub fn finish_unchecked(self) -> Cdfg {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::statespace::StateSpace;
    use crate::value::Value;

    #[test]
    fn builds_and_validates_expression() {
        let mut b = CdfgBuilder::new("expr");
        let x = b.input("x");
        let y = b.input("y");
        let two = b.constant(2);
        let t = b.mul(x, two);
        let r = b.add(t, y);
        b.output("r", r);
        let g = b.finish().unwrap();

        let mut interp = Interpreter::new(&g);
        interp.bind("x", Value::Word(5)).bind("y", Value::Word(1));
        assert_eq!(interp.run().unwrap().word("r"), Some(11));
    }

    #[test]
    fn builds_statespace_pipeline() {
        let mut b = CdfgBuilder::new("mem");
        let mem = b.input("mem");
        let addr = b.constant(3);
        let data = b.fetch(mem, addr);
        let double = b.add(data, data);
        let mem2 = b.store(mem, addr, double);
        b.output("mem", mem2);
        let g = b.finish().unwrap();

        let mut interp = Interpreter::new(&g);
        interp.bind("mem", Value::State(StateSpace::from_tuples([(3, 21)])));
        let result = interp.run().unwrap();
        assert_eq!(result.state("mem").unwrap().fetch(3), Some(42));
    }

    #[test]
    fn mux_and_unop() {
        let mut b = CdfgBuilder::new("sel");
        let x = b.input("x");
        let zero = b.constant(0);
        let is_neg = b.binop(BinOp::Lt, x, zero);
        let neg = b.unop(UnOp::Neg, x);
        let abs = b.mux(is_neg, neg, x);
        b.output("abs", abs);
        let g = b.finish().unwrap();

        for (input, expected) in [(-7, 7), (4, 4), (0, 0)] {
            let mut interp = Interpreter::new(&g);
            interp.bind("x", Value::Word(input));
            assert_eq!(interp.run().unwrap().word("abs"), Some(expected));
        }
    }

    #[test]
    fn finish_rejects_unconnected_graph() {
        let mut b = CdfgBuilder::new("bad");
        let _dangling = b.graph.add_node(NodeKind::BinOp(BinOp::Add));
        assert!(b.finish().is_err());
    }

    #[test]
    fn finish_unchecked_allows_malformed_graphs() {
        let mut b = CdfgBuilder::new("bad");
        let _dangling = b.graph.add_node(NodeKind::BinOp(BinOp::Add));
        let g = b.finish_unchecked();
        assert_eq!(g.node_count(), 1);
    }
}
