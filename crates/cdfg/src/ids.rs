//! Strongly typed identifiers for graph entities.

use std::fmt;
use std::ops::Index;

/// Identifier of a node inside a [`Cdfg`](crate::Cdfg).
///
/// `NodeId`s are only meaningful for the graph that created them.  By
/// default an id is never reused after a node has been removed; a graph
/// opted into [`Cdfg::enable_id_reuse`](crate::Cdfg::enable_id_reuse) hands
/// freed ids out again.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge inside a [`Cdfg`](crate::Cdfg).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Raw index of this node (useful for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index.
    ///
    /// Intended for dense side tables and tests; a `NodeId` fabricated for an
    /// index that does not exist in the graph will be rejected by graph
    /// accessors.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl EdgeId {
    /// Raw index of this edge (useful for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a raw index.
    pub fn from_index(index: usize) -> Self {
        EdgeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Sentinel for an unmapped [`NodeRemap`] slot.  Arena indices are bounded
/// by the live node count, so `u32::MAX` can never name a real node.
const UNMAPPED: NodeId = NodeId(u32::MAX);

/// A dense old-id → new-id mapping, as returned by
/// [`Cdfg::compact`](crate::Cdfg::compact) and
/// [`Cdfg::splice`](crate::Cdfg::splice).
///
/// Node ids are dense arena indices, so the remap is a flat `Vec` indexed by
/// [`NodeId::index`] instead of a hash map: lookups are a bounds check and a
/// load.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeRemap {
    map: Vec<NodeId>,
    mapped: usize,
}

impl NodeRemap {
    /// An empty remap sized for source ids below `bound`.
    pub(crate) fn with_bound(bound: usize) -> Self {
        NodeRemap {
            map: vec![UNMAPPED; bound],
            mapped: 0,
        }
    }

    /// Records `old → new`, growing the table if `old` is beyond the
    /// presized bound.
    pub(crate) fn insert(&mut self, old: NodeId, new: NodeId) {
        if old.index() >= self.map.len() {
            self.map.resize(old.index() + 1, UNMAPPED);
        }
        let slot = &mut self.map[old.index()];
        if *slot == UNMAPPED {
            self.mapped += 1;
        }
        *slot = new;
    }

    /// The new id of `old`, if `old` was remapped.
    pub fn get(&self, old: NodeId) -> Option<NodeId> {
        self.map
            .get(old.index())
            .copied()
            .filter(|id| *id != UNMAPPED)
    }

    /// Number of remapped ids.
    pub fn len(&self) -> usize {
        self.mapped
    }

    /// `true` when no id was remapped.
    pub fn is_empty(&self) -> bool {
        self.mapped == 0
    }

    /// Iterates over `(old, new)` pairs in old-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.map
            .iter()
            .enumerate()
            .filter(|(_, new)| **new != UNMAPPED)
            .map(|(old, new)| (NodeId::from_index(old), *new))
    }
}

impl Index<NodeId> for NodeRemap {
    type Output = NodeId;

    /// The new id of `old`.
    ///
    /// # Panics
    /// When `old` was not remapped.
    fn index(&self, old: NodeId) -> &NodeId {
        let slot = self.map.get(old.index()).unwrap_or(&UNMAPPED);
        assert!(*slot != UNMAPPED, "node {old} was not remapped");
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn edge_id_round_trip() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "e7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }

    #[test]
    fn remap_records_and_looks_up() {
        let mut remap = NodeRemap::with_bound(2);
        assert!(remap.is_empty());
        remap.insert(NodeId::from_index(0), NodeId::from_index(7));
        // Inserting beyond the presized bound grows the table.
        remap.insert(NodeId::from_index(5), NodeId::from_index(1));
        assert_eq!(remap.len(), 2);
        assert_eq!(
            remap.get(NodeId::from_index(0)),
            Some(NodeId::from_index(7))
        );
        assert_eq!(remap.get(NodeId::from_index(1)), None);
        assert_eq!(remap[NodeId::from_index(5)], NodeId::from_index(1));
        let pairs: Vec<_> = remap.iter().collect();
        assert_eq!(
            pairs,
            vec![
                (NodeId::from_index(0), NodeId::from_index(7)),
                (NodeId::from_index(5), NodeId::from_index(1)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "was not remapped")]
    fn remap_index_panics_on_unmapped() {
        let remap = NodeRemap::with_bound(4);
        let _ = remap[NodeId::from_index(1)];
    }
}
