//! Strongly typed identifiers for graph entities.

use std::fmt;

/// Identifier of a node inside a [`Cdfg`](crate::Cdfg).
///
/// `NodeId`s are only meaningful for the graph that created them; they are
/// never reused after a node has been removed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge inside a [`Cdfg`](crate::Cdfg).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Raw index of this node (useful for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index.
    ///
    /// Intended for dense side tables and tests; a `NodeId` fabricated for an
    /// index that does not exist in the graph will be rejected by graph
    /// accessors.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl EdgeId {
    /// Raw index of this edge (useful for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a raw index.
    pub fn from_index(index: usize) -> Self {
        EdgeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn edge_id_round_trip() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "e7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }
}
