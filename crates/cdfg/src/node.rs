//! CDFG node kinds: operations, statespace primitives and structured loops.

use crate::graph::Cdfg;
use std::fmt;

/// Binary word operations supported by the CDFG (and by the FPFA ALU).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division (traps on division by zero).
    Div,
    /// Signed remainder (traps on division by zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Equality comparison (result 0/1).
    Eq,
    /// Inequality comparison (result 0/1).
    Ne,
    /// Signed less-than (result 0/1).
    Lt,
    /// Signed less-or-equal (result 0/1).
    Le,
    /// Signed greater-than (result 0/1).
    Gt,
    /// Signed greater-or-equal (result 0/1).
    Ge,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl BinOp {
    /// All binary operators, useful for exhaustive testing.
    pub const ALL: [BinOp; 18] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::Min,
        BinOp::Max,
    ];

    /// `true` for operators where swapping the operands does not change the
    /// result (used by common-subexpression elimination).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::Min
                | BinOp::Max
        )
    }

    /// `true` for comparison operators whose result is always 0 or 1.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Evaluates the operator on two words using wrapping arithmetic.
    ///
    /// Returns `None` for division or remainder by zero.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Eq => i64::from(a == b),
            BinOp::Ne => i64::from(a != b),
            BinOp::Lt => i64::from(a < b),
            BinOp::Le => i64::from(a <= b),
            BinOp::Gt => i64::from(a > b),
            BinOp::Ge => i64::from(a >= b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        })
    }

    /// Short mnemonic used in DOT dumps and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Unary word operations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`0` becomes `1`, everything else `0`).
    Not,
    /// Bitwise complement.
    BitNot,
}

impl UnOp {
    /// All unary operators.
    pub const ALL: [UnOp; 3] = [UnOp::Neg, UnOp::Not, UnOp::BitNot];

    /// Evaluates the operator on a word.
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => i64::from(a == 0),
            UnOp::BitNot => !a,
        }
    }

    /// Short mnemonic used in DOT dumps and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A structured loop: `while cond(vars) { vars = body(vars) }`.
///
/// The frontend lowers C `while`/`for` loops to a single [`NodeKind::Loop`]
/// node carrying this specification. The loop node has one input and one
/// output port per loop-carried variable, in the order of [`LoopSpec::vars`].
/// The condition and body are separate CDFGs whose `Input`/`Output` nodes are
/// named after the loop-carried variables; the condition graph has a single
/// word output named `%cond`.
///
/// The loop-unrolling transformation removes these nodes; the mapper only
/// accepts acyclic, loop-free graphs (the paper lists loop support inside the
/// mapping phases as future work).
#[derive(Clone, PartialEq, Debug)]
pub struct LoopSpec {
    /// Names of the loop-carried variables; port `i` of the loop node carries
    /// `vars[i]` on both the input and the output side.
    pub vars: Vec<String>,
    /// Condition graph: inputs named after `vars`, single output `%cond`.
    pub cond: Cdfg,
    /// Body graph: inputs and outputs named after `vars`.
    pub body: Cdfg,
}

impl LoopSpec {
    /// Name of the condition output inside the condition graph.
    pub const COND_OUTPUT: &'static str = "%cond";

    /// Number of loop-carried variables (== input and output arity of the
    /// loop node).
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// Port index of a loop-carried variable, if present.
    pub fn port_of(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }
}

/// The operation performed by a CDFG node.
#[derive(Clone, PartialEq, Debug)]
pub enum NodeKind {
    /// A compile-time constant word.
    Const(i64),
    /// A named external input of the graph (no input ports, one output port).
    Input(String),
    /// A named external output of the graph (one input port, no output port).
    Output(String),
    /// A binary word operation (two input ports, one output port).
    BinOp(BinOp),
    /// A unary word operation (one input port, one output port).
    UnOp(UnOp),
    /// Multiplexer: port 0 selects (non-zero → port 1, zero → port 2).
    ///
    /// The paper uses MUXes to encode selection and iteration control in the
    /// dataflow graph.
    Mux,
    /// `ST` statespace primitive: ports `(state, address, data) → state`.
    Store,
    /// `FE` statespace primitive: ports `(state, address) → data`.
    Fetch,
    /// `DEL` statespace primitive: ports `(state, address) → state`.
    Delete,
    /// Identity / wire node (one input port, one output port). Used as a
    /// temporary placeholder by transformations.
    Copy,
    /// A structured loop over loop-carried variables; see [`LoopSpec`].
    Loop(Box<LoopSpec>),
}

impl NodeKind {
    /// Number of input ports this kind of node exposes.
    pub fn input_arity(&self) -> usize {
        match self {
            NodeKind::Const(_) | NodeKind::Input(_) => 0,
            NodeKind::Output(_) | NodeKind::UnOp(_) | NodeKind::Copy => 1,
            NodeKind::BinOp(_) | NodeKind::Fetch | NodeKind::Delete => 2,
            NodeKind::Mux | NodeKind::Store => 3,
            NodeKind::Loop(spec) => spec.arity(),
        }
    }

    /// Number of output ports this kind of node exposes.
    pub fn output_arity(&self) -> usize {
        match self {
            NodeKind::Output(_) => 0,
            NodeKind::Const(_)
            | NodeKind::Input(_)
            | NodeKind::BinOp(_)
            | NodeKind::UnOp(_)
            | NodeKind::Mux
            | NodeKind::Store
            | NodeKind::Fetch
            | NodeKind::Delete
            | NodeKind::Copy => 1,
            NodeKind::Loop(spec) => spec.arity(),
        }
    }

    /// `true` for the three statespace primitives (`ST`, `FE`, `DEL`).
    pub fn is_statespace_primitive(&self) -> bool {
        matches!(self, NodeKind::Store | NodeKind::Fetch | NodeKind::Delete)
    }

    /// `true` when the node represents real computation that must be executed
    /// by an ALU (as opposed to graph interface or constant nodes).
    pub fn is_computation(&self) -> bool {
        matches!(
            self,
            NodeKind::BinOp(_)
                | NodeKind::UnOp(_)
                | NodeKind::Mux
                | NodeKind::Store
                | NodeKind::Fetch
                | NodeKind::Delete
        )
    }

    /// Short label used in DOT dumps, reports and error messages.
    pub fn label(&self) -> String {
        match self {
            NodeKind::Const(c) => format!("const {c}"),
            NodeKind::Input(n) => format!("in {n}"),
            NodeKind::Output(n) => format!("out {n}"),
            NodeKind::BinOp(op) => op.mnemonic().to_string(),
            NodeKind::UnOp(op) => op.mnemonic().to_string(),
            NodeKind::Mux => "mux".to_string(),
            NodeKind::Store => "ST".to_string(),
            NodeKind::Fetch => "FE".to_string(),
            NodeKind::Delete => "DEL".to_string(),
            NodeKind::Copy => "copy".to_string(),
            NodeKind::Loop(spec) => format!("loop[{}]", spec.vars.join(",")),
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), Some(5));
        assert_eq!(BinOp::Sub.eval(2, 3), Some(-1));
        assert_eq!(BinOp::Mul.eval(4, 3), Some(12));
        assert_eq!(BinOp::Div.eval(7, 2), Some(3));
        assert_eq!(BinOp::Div.eval(7, 0), None);
        assert_eq!(BinOp::Rem.eval(7, 0), None);
        assert_eq!(BinOp::Lt.eval(1, 2), Some(1));
        assert_eq!(BinOp::Ge.eval(1, 2), Some(0));
        assert_eq!(BinOp::Min.eval(-1, 4), Some(-1));
        assert_eq!(BinOp::Max.eval(-1, 4), Some(4));
        assert_eq!(BinOp::Shl.eval(1, 3), Some(8));
        assert_eq!(BinOp::Shr.eval(-8, 1), Some(-4));
    }

    #[test]
    fn binop_wrapping_does_not_panic() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), Some(i64::MIN));
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), Some(-2));
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), Some(i64::MIN));
    }

    #[test]
    fn commutativity_flags() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
        for op in BinOp::ALL {
            if op.is_commutative() {
                assert_eq!(op.eval(13, 7), op.eval(7, 13), "{op} claims commutative");
            }
        }
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), 1);
        assert_eq!(UnOp::Not.eval(3), 0);
        assert_eq!(UnOp::BitNot.eval(0), -1);
    }

    #[test]
    fn arities_match_kind() {
        assert_eq!(NodeKind::Const(1).input_arity(), 0);
        assert_eq!(NodeKind::Const(1).output_arity(), 1);
        assert_eq!(NodeKind::Store.input_arity(), 3);
        assert_eq!(NodeKind::Store.output_arity(), 1);
        assert_eq!(NodeKind::Fetch.input_arity(), 2);
        assert_eq!(NodeKind::Delete.input_arity(), 2);
        assert_eq!(NodeKind::Mux.input_arity(), 3);
        assert_eq!(NodeKind::Output("x".into()).output_arity(), 0);
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(NodeKind::Store.label(), "ST");
        assert_eq!(NodeKind::Fetch.label(), "FE");
        assert_eq!(NodeKind::Delete.label(), "DEL");
        assert_eq!(NodeKind::BinOp(BinOp::Mul).label(), "*");
        assert_eq!(NodeKind::Const(4).label(), "const 4");
    }
}
