//! Canonical structural form of a graph, independent of node-id numbering.
//!
//! Two graphs that differ only in the order their nodes were created (and
//! therefore in their [`NodeId`] numbering) are *structurally identical*:
//! they describe the same computation.  [`canonical_signature`] renders a
//! graph into a string that is invariant under such renumbering, so
//! structural identity reduces to string equality.  The incremental rewrite
//! engine is validated against the legacy full-scan pipeline this way: both
//! must minimise every graph to the same canonical form.
//!
//! The canonical numbering is anchored at the graph interface: `Output`
//! nodes sorted by name are walked backwards (inputs in port order,
//! depth-first), then `Input` nodes sorted by name.  Every node reachable
//! backwards from the interface receives a deterministic number.  Nodes
//! outside that cone (dead code) have no canonical position; they are
//! summarised by an order-insensitive multiset of labels, so the signature
//! is only a complete structural fingerprint for graphs without dead code —
//! which is exactly the state both engines leave behind after dead-code
//! elimination.

use crate::graph::Cdfg;
use crate::ids::NodeId;
use crate::node::NodeKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders the canonical structural signature of a graph.
///
/// See the module documentation for the guarantees. Loop nodes embed the
/// canonical signatures of their condition and body sub-graphs, so loops
/// compare structurally too.
pub fn canonical_signature(graph: &Cdfg) -> String {
    let mut numbering: HashMap<NodeId, usize> = HashMap::new();
    let mut order: Vec<NodeId> = Vec::new();

    // Anchor the traversal at the interface, names sorted for determinism.
    let mut outputs = graph.outputs();
    outputs.sort();
    let mut inputs = graph.inputs();
    inputs.sort();

    let roots = outputs
        .iter()
        .map(|(_, id)| *id)
        .chain(inputs.iter().map(|(_, id)| *id));
    for root in roots {
        // Iterative depth-first pre-order walk over input edges: the numbers
        // only depend on structure, never on NodeId values.
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if numbering.contains_key(&id) {
                continue;
            }
            numbering.insert(id, order.len());
            order.push(id);
            let Ok(node) = graph.node(id) else { continue };
            // Push in reverse port order so port 0 is visited first.
            for port in (0..node.input_count()).rev() {
                if let Some(src) = graph.input_source(id, port) {
                    if !numbering.contains_key(&src.node) {
                        stack.push(src.node);
                    }
                }
            }
        }
    }

    let mut text = String::new();
    let _ = writeln!(text, "graph {}", graph.name());
    for id in &order {
        let Ok(node) = graph.node(*id) else { continue };
        let label = node_label(graph, node.kind);
        let _ = write!(text, "  #{} {label} <-", numbering[id]);
        for port in 0..node.input_count() {
            match graph.input_source(*id, port) {
                Some(src) => {
                    let _ = write!(text, " #{}:{}", numbering[&src.node], src.port_index());
                }
                None => {
                    let _ = write!(text, " _");
                }
            }
        }
        let _ = writeln!(text);
    }

    // Dead nodes (not backward-reachable from the interface) have no stable
    // position; record them as a sorted label multiset.
    let mut unreached: Vec<String> = graph
        .nodes()
        .filter(|(id, _)| !numbering.contains_key(id))
        .map(|(_, n)| node_label(graph, n.kind))
        .collect();
    if !unreached.is_empty() {
        unreached.sort();
        let _ = writeln!(text, "  unreached: {}", unreached.join(", "));
    }
    text
}

fn node_label(_graph: &Cdfg, kind: &NodeKind) -> String {
    match kind {
        NodeKind::Loop(spec) => {
            let cond = canonical_signature(&spec.cond);
            let body = canonical_signature(&spec.body);
            format!(
                "loop[{}] cond{{{}}} body{{{}}}",
                spec.vars.join(","),
                cond.replace('\n', ";"),
                body.replace('\n', ";")
            )
        }
        other => other.label(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BinOp;

    /// `out = (a * b) + c`, built with a configurable creation order.
    fn mac(order_swapped: bool) -> Cdfg {
        let mut g = Cdfg::new("mac");
        let (mul, add) = if order_swapped {
            let add = g.add_node(NodeKind::BinOp(BinOp::Add));
            let mul = g.add_node(NodeKind::BinOp(BinOp::Mul));
            (mul, add)
        } else {
            let mul = g.add_node(NodeKind::BinOp(BinOp::Mul));
            let add = g.add_node(NodeKind::BinOp(BinOp::Add));
            (mul, add)
        };
        let a = g.add_node(NodeKind::Input("a".into()));
        let b = g.add_node(NodeKind::Input("b".into()));
        let c = g.add_node(NodeKind::Input("c".into()));
        let out = g.add_node(NodeKind::Output("out".into()));
        g.connect(a, 0, mul, 0).unwrap();
        g.connect(b, 0, mul, 1).unwrap();
        g.connect(mul, 0, add, 0).unwrap();
        g.connect(c, 0, add, 1).unwrap();
        g.connect(add, 0, out, 0).unwrap();
        g
    }

    #[test]
    fn signature_is_invariant_under_node_renumbering() {
        assert_eq!(
            canonical_signature(&mac(false)),
            canonical_signature(&mac(true))
        );
    }

    #[test]
    fn signature_distinguishes_different_structures() {
        let plain = mac(false);
        let mut swapped = mac(false);
        // Swap the operands of the multiply: structurally different.
        let mul = swapped
            .nodes()
            .find(|(_, n)| matches!(n.kind, NodeKind::BinOp(BinOp::Mul)))
            .map(|(id, _)| id)
            .unwrap();
        let e0 = swapped.node(mul).unwrap().input_edge(0).unwrap();
        let e1 = swapped.node(mul).unwrap().input_edge(1).unwrap();
        let a = swapped.edge(e0).unwrap().from;
        let b = swapped.edge(e1).unwrap().from;
        swapped.disconnect(e0).unwrap();
        swapped.disconnect(e1).unwrap();
        swapped.connect(b.node, b.port_index(), mul, 0).unwrap();
        swapped.connect(a.node, a.port_index(), mul, 1).unwrap();
        assert_ne!(canonical_signature(&plain), canonical_signature(&swapped));
    }

    #[test]
    fn dead_nodes_are_reported_order_insensitively() {
        let mut g1 = mac(false);
        let mut g2 = mac(true);
        g1.add_node(NodeKind::Const(1));
        g1.add_node(NodeKind::Const(2));
        g2.add_node(NodeKind::Const(2));
        g2.add_node(NodeKind::Const(1));
        assert_eq!(canonical_signature(&g1), canonical_signature(&g2));
        assert!(canonical_signature(&g1).contains("unreached"));
    }
}
