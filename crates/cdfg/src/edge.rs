//! CDFG edges: directed, port-indexed dataflow connections.

use crate::ids::NodeId;
use std::fmt;

/// One end of an edge: a node plus the index of the port on that node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Endpoint {
    /// The node this endpoint attaches to.
    pub node: NodeId,
    /// The port index on that node (output port for sources, input port for
    /// destinations).
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(node: NodeId, port: usize) -> Self {
        Endpoint {
            node,
            port: port as u16,
        }
    }

    /// The port index as a `usize`.
    pub fn port_index(&self) -> usize {
        self.port as usize
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.node, self.port)
    }
}

/// A directed dataflow edge from an output port to an input port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Producing endpoint (an output port).
    pub from: Endpoint,
    /// Consuming endpoint (an input port).
    pub to: Endpoint,
}

impl Edge {
    /// Creates an edge between two endpoints.
    pub fn new(from: Endpoint, to: Endpoint) -> Self {
        Edge { from, to }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn endpoint_display() {
        let e = Endpoint::new(NodeId::from_index(3), 1);
        assert_eq!(e.to_string(), "n3.1");
        assert_eq!(e.port_index(), 1);
    }

    #[test]
    fn edge_display() {
        let e = Edge::new(
            Endpoint::new(NodeId::from_index(0), 0),
            Endpoint::new(NodeId::from_index(1), 2),
        );
        assert_eq!(e.to_string(), "n0.0 -> n1.2");
    }
}
