//! The *statespace* abstraction of the C memory model.
//!
//! Section IV of the paper models C's linear random-access memory as a set of
//! `(ad, da)` tuples — the **statespace** — manipulated by three primitive
//! hypergraph operations:
//!
//! * `ST` — store a tuple into the statespace,
//! * `FE` — fetch the data stored at an address,
//! * `DEL` — delete the tuple at an address.
//!
//! [`StateSpace`] is the concrete realisation used by the reference
//! interpreter and the tile simulator. Addresses and data are machine words.

use std::collections::BTreeMap;
use std::fmt;

/// A set of `(address, data)` tuples representing the abstract C memory.
///
/// The statespace flows through the CDFG as a token along dedicated edges, so
/// that the partial order of memory operations is explicit in the graph: a
/// `ST`/`DEL` node consumes one statespace token and produces a new one, while
/// `FE` only consumes one (fetching does not modify memory).
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct StateSpace {
    tuples: BTreeMap<i64, i64>,
}

impl StateSpace {
    /// Creates an empty statespace (no tuples).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a statespace from `(address, data)` pairs.
    ///
    /// Later pairs overwrite earlier pairs with the same address, matching the
    /// semantics of repeated `ST` operations.
    pub fn from_tuples<I: IntoIterator<Item = (i64, i64)>>(tuples: I) -> Self {
        let mut ss = Self::new();
        for (ad, da) in tuples {
            ss.store(ad, da);
        }
        ss
    }

    /// `ST`: stores `data` at `address`, overwriting any existing tuple.
    pub fn store(&mut self, address: i64, data: i64) {
        self.tuples.insert(address, data);
    }

    /// `FE`: fetches the data stored at `address`.
    ///
    /// Returns `None` when no tuple with that address exists; the interpreter
    /// turns this into an *unbound address* error because reading
    /// uninitialised memory is undefined behaviour in the source program.
    pub fn fetch(&self, address: i64) -> Option<i64> {
        self.tuples.get(&address).copied()
    }

    /// `DEL`: removes the tuple at `address`, returning the deleted data.
    pub fn delete(&mut self, address: i64) -> Option<i64> {
        self.tuples.remove(&address)
    }

    /// `true` when a tuple with `address` exists.
    pub fn contains(&self, address: i64) -> bool {
        self.tuples.contains_key(&address)
    }

    /// Number of tuples currently stored.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when no tuple is stored.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the `(address, data)` tuples in address order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.tuples.iter().map(|(a, d)| (*a, *d))
    }

    /// Returns the stored tuples as a vector in address order.
    pub fn to_tuples(&self) -> Vec<(i64, i64)> {
        self.iter().collect()
    }

    /// Loads a contiguous array starting at `base`, element `i` at `base + i`.
    ///
    /// This is the convention the frontend uses to place C arrays in the
    /// statespace.
    pub fn store_array(&mut self, base: i64, values: &[i64]) {
        for (i, v) in values.iter().enumerate() {
            // Address arithmetic wraps, matching `BinOp::eval`'s semantics,
            // so a pathological base cannot trap in debug builds.
            self.store(base.wrapping_add(i as i64), *v);
        }
    }

    /// Reads `len` consecutive words starting at `base`; missing addresses
    /// yield `None`.
    pub fn fetch_array(&self, base: i64, len: usize) -> Vec<Option<i64>> {
        (0..len as i64)
            .map(|i| self.fetch(base.wrapping_add(i)))
            .collect()
    }
}

impl FromIterator<(i64, i64)> for StateSpace {
    fn from_iter<I: IntoIterator<Item = (i64, i64)>>(iter: I) -> Self {
        Self::from_tuples(iter)
    }
}

impl Extend<(i64, i64)> for StateSpace {
    fn extend<I: IntoIterator<Item = (i64, i64)>>(&mut self, iter: I) {
        for (ad, da) in iter {
            self.store(ad, da);
        }
    }
}

impl fmt::Display for StateSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (ad, da)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({ad}, {da})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_fetch() {
        let mut ss = StateSpace::new();
        assert!(ss.is_empty());
        ss.store(10, 42);
        assert_eq!(ss.fetch(10), Some(42));
        assert_eq!(ss.fetch(11), None);
        assert_eq!(ss.len(), 1);
        assert!(ss.contains(10));
    }

    #[test]
    fn store_overwrites() {
        let mut ss = StateSpace::new();
        ss.store(5, 1);
        ss.store(5, 2);
        assert_eq!(ss.fetch(5), Some(2));
        assert_eq!(ss.len(), 1);
    }

    #[test]
    fn delete_removes_tuple() {
        let mut ss = StateSpace::from_tuples([(1, 10), (2, 20)]);
        assert_eq!(ss.delete(1), Some(10));
        assert_eq!(ss.delete(1), None);
        assert_eq!(ss.fetch(1), None);
        assert_eq!(ss.len(), 1);
    }

    #[test]
    fn array_helpers() {
        let mut ss = StateSpace::new();
        ss.store_array(100, &[1, 2, 3]);
        assert_eq!(
            ss.fetch_array(100, 4),
            vec![Some(1), Some(2), Some(3), None]
        );
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut ss: StateSpace = [(0, 7), (1, 8)].into_iter().collect();
        ss.extend([(2, 9)]);
        assert_eq!(ss.to_tuples(), vec![(0, 7), (1, 8), (2, 9)]);
    }

    #[test]
    fn display_is_tuple_set() {
        let ss = StateSpace::from_tuples([(3, 4), (1, 2)]);
        assert_eq!(ss.to_string(), "{(1, 2), (3, 4)}");
    }

    #[test]
    fn negative_addresses_are_allowed() {
        let mut ss = StateSpace::new();
        ss.store(-5, 99);
        assert_eq!(ss.fetch(-5), Some(99));
    }
}
