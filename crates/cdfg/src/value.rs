//! Runtime values flowing along CDFG edges.

use crate::statespace::StateSpace;
use std::fmt;

/// A value produced by a CDFG node during interpretation.
///
/// Edges of the CDFG either carry machine words (the FPFA is a word-level
/// reconfigurable architecture) or a *statespace* token representing the whole
/// abstract C memory (Section IV of the paper).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// A signed machine word. Booleans are encoded as `0` / `1`.
    Word(i64),
    /// A statespace token: the abstract set of `(address, data)` tuples.
    State(StateSpace),
}

impl Value {
    /// Returns the contained word, if this value is a word.
    pub fn as_word(&self) -> Option<i64> {
        match self {
            Value::Word(w) => Some(*w),
            Value::State(_) => None,
        }
    }

    /// Returns a reference to the contained statespace, if any.
    pub fn as_state(&self) -> Option<&StateSpace> {
        match self {
            Value::Word(_) => None,
            Value::State(s) => Some(s),
        }
    }

    /// Consumes the value and returns the statespace, if any.
    pub fn into_state(self) -> Option<StateSpace> {
        match self {
            Value::Word(_) => None,
            Value::State(s) => Some(s),
        }
    }

    /// `true` when the value is a word and non-zero (C truthiness).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Word(w) if *w != 0)
    }

    /// Short human-readable tag used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Word(_) => "word",
            Value::State(_) => "statespace",
        }
    }
}

impl From<i64> for Value {
    fn from(w: i64) -> Self {
        Value::Word(w)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Word(i64::from(b))
    }
}

impl From<StateSpace> for Value {
    fn from(s: StateSpace) -> Self {
        Value::State(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Word(w) => write!(f, "{w}"),
            Value::State(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_conversions() {
        let v = Value::from(12);
        assert_eq!(v.as_word(), Some(12));
        assert!(v.as_state().is_none());
        assert!(v.is_truthy());
        assert!(!Value::from(0).is_truthy());
        assert_eq!(Value::from(true), Value::Word(1));
        assert_eq!(Value::from(false), Value::Word(0));
    }

    #[test]
    fn state_conversions() {
        let mut ss = StateSpace::new();
        ss.store(3, 9);
        let v = Value::from(ss.clone());
        assert_eq!(v.as_state(), Some(&ss));
        assert!(v.as_word().is_none());
        assert!(!v.is_truthy());
        assert_eq!(v.kind_name(), "statespace");
        assert_eq!(v.into_state(), Some(ss));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Word(-4).to_string(), "-4");
        let mut ss = StateSpace::new();
        ss.store(1, 2);
        assert!(Value::State(ss).to_string().contains("(1, 2)"));
    }
}
