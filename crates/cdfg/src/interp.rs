//! Reference interpreter for CDFGs.
//!
//! The interpreter executes a CDFG directly on [`Value`]s, including the
//! statespace primitives and structured loops. It is the behavioural oracle
//! used throughout the workspace:
//!
//! * the transformation engine checks that every pass preserves the
//!   interpreter's results;
//! * the tile simulator checks that a mapped program computes the same
//!   outputs as the original graph.

use crate::error::CdfgError;
use crate::graph::Cdfg;
use crate::ids::NodeId;
use crate::node::{LoopSpec, NodeKind};
use crate::statespace::StateSpace;
use crate::value::Value;
use std::collections::HashMap;

/// Default maximum number of iterations the interpreter will execute for a
/// single structured loop before reporting [`CdfgError::LoopBudgetExceeded`].
pub const DEFAULT_LOOP_BUDGET: usize = 1 << 16;

/// The outputs produced by one interpreter run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RunResult {
    values: HashMap<String, Value>,
    /// Number of node evaluations performed (including loop body re-runs).
    pub evaluations: usize,
}

impl RunResult {
    /// Value of the named output, if produced.
    pub fn value(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Word value of the named output, if produced and a word.
    pub fn word(&self, name: &str) -> Option<i64> {
        self.values.get(name).and_then(Value::as_word)
    }

    /// Statespace value of the named output, if produced and a statespace.
    pub fn state(&self, name: &str) -> Option<&StateSpace> {
        self.values.get(name).and_then(Value::as_state)
    }

    /// All `(name, value)` pairs sorted by name.
    pub fn sorted(&self) -> Vec<(&str, &Value)> {
        let mut v: Vec<_> = self
            .values
            .iter()
            .map(|(k, val)| (k.as_str(), val))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Number of outputs produced.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no output was produced.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Interpreter over a borrowed CDFG.
#[derive(Debug)]
pub struct Interpreter<'g> {
    graph: &'g Cdfg,
    bindings: HashMap<String, Value>,
    loop_budget: usize,
}

impl<'g> Interpreter<'g> {
    /// Creates an interpreter for `graph` with no input bindings.
    pub fn new(graph: &'g Cdfg) -> Self {
        Interpreter {
            graph,
            bindings: HashMap::new(),
            loop_budget: DEFAULT_LOOP_BUDGET,
        }
    }

    /// Binds a named graph input to a value.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) -> &mut Self {
        self.bindings.insert(name.into(), value);
        self
    }

    /// Binds several inputs at once.
    pub fn bind_all<I, S>(&mut self, bindings: I) -> &mut Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        for (name, value) in bindings {
            self.bind(name, value);
        }
        self
    }

    /// Overrides the per-loop iteration budget.
    pub fn with_loop_budget(mut self, budget: usize) -> Self {
        self.loop_budget = budget;
        self
    }

    /// Executes the graph and collects its outputs.
    ///
    /// # Errors
    /// Returns [`CdfgError`] for unbound inputs, cycles, type mismatches,
    /// division by zero, unbound statespace addresses or exhausted loop
    /// budgets.
    pub fn run(&mut self) -> Result<RunResult, CdfgError> {
        let mut evaluations = 0usize;
        let values = eval_graph(
            self.graph,
            &self.bindings,
            self.loop_budget,
            &mut evaluations,
        )?;
        Ok(RunResult {
            values,
            evaluations,
        })
    }
}

/// Evaluates `graph` with the given input bindings and returns the values of
/// its `Output` nodes keyed by name.
pub fn eval_graph(
    graph: &Cdfg,
    bindings: &HashMap<String, Value>,
    loop_budget: usize,
    evaluations: &mut usize,
) -> Result<HashMap<String, Value>, CdfgError> {
    let order = graph.topo_order()?;
    // Value produced at each (node, output port).
    let mut produced: HashMap<(NodeId, usize), Value> = HashMap::new();
    let mut outputs = HashMap::new();

    for id in order {
        let node = graph.node(id)?;
        *evaluations += 1;
        // Gather input values.
        let mut ins: Vec<Value> = Vec::with_capacity(node.input_count());
        for port in 0..node.input_count() {
            let src = graph
                .input_source(id, port)
                .ok_or(CdfgError::PortUnconnected { node: id, port })?;
            let value = produced
                .get(&(src.node, src.port_index()))
                .cloned()
                .ok_or_else(|| CdfgError::Invalid(format!("value for {src} not yet produced")))?;
            ins.push(value);
        }

        match &node.kind {
            NodeKind::Const(c) => {
                produced.insert((id, 0), Value::Word(*c));
            }
            NodeKind::Input(name) => {
                let value = bindings
                    .get(name)
                    .cloned()
                    .ok_or_else(|| CdfgError::UnboundInput(name.clone()))?;
                produced.insert((id, 0), value);
            }
            NodeKind::Output(name) => {
                outputs.insert(name.clone(), ins.remove(0));
            }
            NodeKind::BinOp(op) => {
                let a = expect_word(id, &ins[0])?;
                let b = expect_word(id, &ins[1])?;
                let r = op.eval(a, b).ok_or(CdfgError::DivisionByZero(id))?;
                produced.insert((id, 0), Value::Word(r));
            }
            NodeKind::UnOp(op) => {
                let a = expect_word(id, &ins[0])?;
                produced.insert((id, 0), Value::Word(op.eval(a)));
            }
            NodeKind::Mux => {
                let cond = expect_word(id, &ins[0])?;
                let chosen = if cond != 0 {
                    ins[1].clone()
                } else {
                    ins[2].clone()
                };
                produced.insert((id, 0), chosen);
            }
            NodeKind::Store => {
                let mut state = expect_state(id, &ins[0])?.clone();
                let address = expect_word(id, &ins[1])?;
                let data = expect_word(id, &ins[2])?;
                state.store(address, data);
                produced.insert((id, 0), Value::State(state));
            }
            NodeKind::Fetch => {
                let state = expect_state(id, &ins[0])?;
                let address = expect_word(id, &ins[1])?;
                let data = state
                    .fetch(address)
                    .ok_or(CdfgError::UnboundAddress { node: id, address })?;
                produced.insert((id, 0), Value::Word(data));
            }
            NodeKind::Delete => {
                let mut state = expect_state(id, &ins[0])?.clone();
                let address = expect_word(id, &ins[1])?;
                if state.delete(address).is_none() {
                    return Err(CdfgError::UnboundAddress { node: id, address });
                }
                produced.insert((id, 0), Value::State(state));
            }
            NodeKind::Copy => {
                produced.insert((id, 0), ins.remove(0));
            }
            NodeKind::Loop(spec) => {
                let results = eval_loop(id, spec, ins, loop_budget, evaluations)?;
                for (port, value) in results.into_iter().enumerate() {
                    produced.insert((id, port), value);
                }
            }
        }
    }
    Ok(outputs)
}

fn eval_loop(
    id: NodeId,
    spec: &LoopSpec,
    initial: Vec<Value>,
    loop_budget: usize,
    evaluations: &mut usize,
) -> Result<Vec<Value>, CdfgError> {
    if initial.len() != spec.arity() {
        return Err(CdfgError::MalformedLoop {
            node: id,
            reason: format!(
                "loop has {} carried variables but received {} inputs",
                spec.arity(),
                initial.len()
            ),
        });
    }
    let mut vars: Vec<Value> = initial;
    for _ in 0..loop_budget {
        // Evaluate the condition graph on the current variable values.
        let cond_bindings: HashMap<String, Value> = spec
            .vars
            .iter()
            .cloned()
            .zip(vars.iter().cloned())
            .collect();
        let cond_out = eval_graph(&spec.cond, &cond_bindings, loop_budget, evaluations)?;
        let cond = cond_out
            .get(LoopSpec::COND_OUTPUT)
            .ok_or_else(|| CdfgError::MalformedLoop {
                node: id,
                reason: format!("condition graph has no `{}` output", LoopSpec::COND_OUTPUT),
            })?;
        if !cond.is_truthy() {
            return Ok(vars);
        }
        // Evaluate the body and collect the next values of the carried vars.
        let body_bindings: HashMap<String, Value> = spec
            .vars
            .iter()
            .cloned()
            .zip(vars.iter().cloned())
            .collect();
        let body_out = eval_graph(&spec.body, &body_bindings, loop_budget, evaluations)?;
        let mut next = Vec::with_capacity(spec.arity());
        for var in &spec.vars {
            let value = body_out
                .get(var)
                .cloned()
                .ok_or_else(|| CdfgError::MalformedLoop {
                    node: id,
                    reason: format!("body graph does not produce output `{var}`"),
                })?;
            next.push(value);
        }
        vars = next;
    }
    Err(CdfgError::LoopBudgetExceeded {
        node: id,
        budget: loop_budget,
    })
}

fn expect_word(node: NodeId, value: &Value) -> Result<i64, CdfgError> {
    value.as_word().ok_or(CdfgError::TypeMismatch {
        node,
        expected: "word",
        found: value.kind_name(),
    })
}

fn expect_state(node: NodeId, value: &Value) -> Result<&StateSpace, CdfgError> {
    value.as_state().ok_or(CdfgError::TypeMismatch {
        node,
        expected: "statespace",
        found: value.kind_name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{BinOp, UnOp};

    fn word(v: i64) -> Value {
        Value::Word(v)
    }

    #[test]
    fn evaluates_arithmetic_dag() {
        let mut g = Cdfg::new("t");
        let a = g.add_node(NodeKind::Input("a".into()));
        let b = g.add_node(NodeKind::Input("b".into()));
        let add = g.add_node(NodeKind::BinOp(BinOp::Add));
        let neg = g.add_node(NodeKind::UnOp(UnOp::Neg));
        let out = g.add_node(NodeKind::Output("r".into()));
        g.connect(a, 0, add, 0).unwrap();
        g.connect(b, 0, add, 1).unwrap();
        g.connect(add, 0, neg, 0).unwrap();
        g.connect(neg, 0, out, 0).unwrap();

        let mut interp = Interpreter::new(&g);
        interp.bind("a", word(3)).bind("b", word(4));
        let result = interp.run().unwrap();
        assert_eq!(result.word("r"), Some(-7));
        assert_eq!(result.len(), 1);
        assert!(result.evaluations >= 5);
    }

    #[test]
    fn unbound_input_is_reported() {
        let mut g = Cdfg::new("t");
        let a = g.add_node(NodeKind::Input("a".into()));
        let out = g.add_node(NodeKind::Output("r".into()));
        g.connect(a, 0, out, 0).unwrap();
        let err = Interpreter::new(&g).run().unwrap_err();
        assert_eq!(err, CdfgError::UnboundInput("a".into()));
    }

    #[test]
    fn mux_selects_by_condition() {
        let mut g = Cdfg::new("t");
        let c = g.add_node(NodeKind::Input("c".into()));
        let t = g.add_node(NodeKind::Const(10));
        let e = g.add_node(NodeKind::Const(20));
        let mux = g.add_node(NodeKind::Mux);
        let out = g.add_node(NodeKind::Output("r".into()));
        g.connect(c, 0, mux, 0).unwrap();
        g.connect(t, 0, mux, 1).unwrap();
        g.connect(e, 0, mux, 2).unwrap();
        g.connect(mux, 0, out, 0).unwrap();

        let run = |cv: i64| {
            let mut interp = Interpreter::new(&g);
            interp.bind("c", word(cv));
            interp.run().unwrap().word("r").unwrap()
        };
        assert_eq!(run(1), 10);
        assert_eq!(run(0), 20);
        assert_eq!(run(-3), 10);
    }

    #[test]
    fn statespace_primitives_round_trip() {
        // ss' = ST(ss, 5, 99); r = FE(ss', 5); ss'' = DEL(ss', 5)
        let mut g = Cdfg::new("t");
        let ss = g.add_node(NodeKind::Input("mem".into()));
        let ad = g.add_node(NodeKind::Const(5));
        let da = g.add_node(NodeKind::Const(99));
        let st = g.add_node(NodeKind::Store);
        let fe = g.add_node(NodeKind::Fetch);
        let del = g.add_node(NodeKind::Delete);
        let out_r = g.add_node(NodeKind::Output("r".into()));
        let out_mem = g.add_node(NodeKind::Output("mem".into()));
        g.connect(ss, 0, st, 0).unwrap();
        g.connect(ad, 0, st, 1).unwrap();
        g.connect(da, 0, st, 2).unwrap();
        g.connect(st, 0, fe, 0).unwrap();
        g.connect(ad, 0, fe, 1).unwrap();
        g.connect(st, 0, del, 0).unwrap();
        g.connect(ad, 0, del, 1).unwrap();
        g.connect(fe, 0, out_r, 0).unwrap();
        g.connect(del, 0, out_mem, 0).unwrap();

        let mut interp = Interpreter::new(&g);
        interp.bind("mem", Value::State(StateSpace::new()));
        let result = interp.run().unwrap();
        assert_eq!(result.word("r"), Some(99));
        assert!(result.state("mem").unwrap().is_empty());
    }

    #[test]
    fn fetch_of_missing_address_fails() {
        let mut g = Cdfg::new("t");
        let ss = g.add_node(NodeKind::Input("mem".into()));
        let ad = g.add_node(NodeKind::Const(7));
        let fe = g.add_node(NodeKind::Fetch);
        let out = g.add_node(NodeKind::Output("r".into()));
        g.connect(ss, 0, fe, 0).unwrap();
        g.connect(ad, 0, fe, 1).unwrap();
        g.connect(fe, 0, out, 0).unwrap();
        let mut interp = Interpreter::new(&g);
        interp.bind("mem", Value::State(StateSpace::new()));
        let err = interp.run().unwrap_err();
        assert_eq!(
            err,
            CdfgError::UnboundAddress {
                node: fe,
                address: 7
            }
        );
    }

    #[test]
    fn division_by_zero_is_reported() {
        let mut g = Cdfg::new("t");
        let a = g.add_node(NodeKind::Const(10));
        let z = g.add_node(NodeKind::Const(0));
        let div = g.add_node(NodeKind::BinOp(BinOp::Div));
        let out = g.add_node(NodeKind::Output("r".into()));
        g.connect(a, 0, div, 0).unwrap();
        g.connect(z, 0, div, 1).unwrap();
        g.connect(div, 0, out, 0).unwrap();
        let err = Interpreter::new(&g).run().unwrap_err();
        assert_eq!(err, CdfgError::DivisionByZero(div));
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mut g = Cdfg::new("t");
        let ss = g.add_node(NodeKind::Input("mem".into()));
        let one = g.add_node(NodeKind::Const(1));
        let add = g.add_node(NodeKind::BinOp(BinOp::Add));
        let out = g.add_node(NodeKind::Output("r".into()));
        g.connect(ss, 0, add, 0).unwrap();
        g.connect(one, 0, add, 1).unwrap();
        g.connect(add, 0, out, 0).unwrap();
        let mut interp = Interpreter::new(&g);
        interp.bind("mem", Value::State(StateSpace::new()));
        let err = interp.run().unwrap_err();
        assert!(matches!(err, CdfgError::TypeMismatch { .. }));
    }

    /// Builds the loop node for `while (i < n) { acc = acc + i; i = i + 1 }`.
    fn counting_loop() -> (Cdfg, NodeId) {
        // Condition graph: %cond = i < n
        let mut cond = Cdfg::new("cond");
        let i = cond.add_node(NodeKind::Input("i".into()));
        let n = cond.add_node(NodeKind::Input("n".into()));
        let _acc_in = cond.add_node(NodeKind::Input("acc".into()));
        let lt = cond.add_node(NodeKind::BinOp(BinOp::Lt));
        let c = cond.add_node(NodeKind::Output(LoopSpec::COND_OUTPUT.into()));
        cond.connect(i, 0, lt, 0).unwrap();
        cond.connect(n, 0, lt, 1).unwrap();
        cond.connect(lt, 0, c, 0).unwrap();

        // Body graph: acc = acc + i; i = i + 1; n = n
        let mut body = Cdfg::new("body");
        let bi = body.add_node(NodeKind::Input("i".into()));
        let bn = body.add_node(NodeKind::Input("n".into()));
        let bacc = body.add_node(NodeKind::Input("acc".into()));
        let one = body.add_node(NodeKind::Const(1));
        let addi = body.add_node(NodeKind::BinOp(BinOp::Add));
        let addacc = body.add_node(NodeKind::BinOp(BinOp::Add));
        let oi = body.add_node(NodeKind::Output("i".into()));
        let on = body.add_node(NodeKind::Output("n".into()));
        let oacc = body.add_node(NodeKind::Output("acc".into()));
        body.connect(bi, 0, addi, 0).unwrap();
        body.connect(one, 0, addi, 1).unwrap();
        body.connect(bacc, 0, addacc, 0).unwrap();
        body.connect(bi, 0, addacc, 1).unwrap();
        body.connect(addi, 0, oi, 0).unwrap();
        body.connect(bn, 0, on, 0).unwrap();
        body.connect(addacc, 0, oacc, 0).unwrap();

        let spec = LoopSpec {
            vars: vec!["i".into(), "n".into(), "acc".into()],
            cond,
            body,
        };

        let mut g = Cdfg::new("sum");
        let i0 = g.add_node(NodeKind::Const(0));
        let n_in = g.add_node(NodeKind::Input("n".into()));
        let acc0 = g.add_node(NodeKind::Const(0));
        let lp = g.add_node(NodeKind::Loop(Box::new(spec)));
        let out = g.add_node(NodeKind::Output("sum".into()));
        g.connect(i0, 0, lp, 0).unwrap();
        g.connect(n_in, 0, lp, 1).unwrap();
        g.connect(acc0, 0, lp, 2).unwrap();
        g.connect(lp, 2, out, 0).unwrap();
        (g, lp)
    }

    #[test]
    fn structured_loop_executes() {
        let (g, _lp) = counting_loop();
        let mut interp = Interpreter::new(&g);
        interp.bind("n", word(5));
        let result = interp.run().unwrap();
        // 0 + 1 + 2 + 3 + 4 = 10
        assert_eq!(result.word("sum"), Some(10));
    }

    #[test]
    fn loop_with_zero_iterations() {
        let (g, _lp) = counting_loop();
        let mut interp = Interpreter::new(&g);
        interp.bind("n", word(0));
        assert_eq!(interp.run().unwrap().word("sum"), Some(0));
    }

    #[test]
    fn loop_budget_is_enforced() {
        let (g, lp) = counting_loop();
        let mut interp = Interpreter::new(&g).with_loop_budget(3);
        interp.bind("n", word(100));
        let err = interp.run().unwrap_err();
        assert_eq!(
            err,
            CdfgError::LoopBudgetExceeded {
                node: lp,
                budget: 3
            }
        );
    }
}
