//! Graphviz (DOT) export of CDFGs for inspection and debugging.

use crate::graph::Cdfg;
use crate::node::NodeKind;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax.
///
/// Statespace edges are drawn dashed, interface nodes are boxed, and
/// statespace primitives (`ST`, `FE`, `DEL`) are filled, mirroring the visual
/// conventions of Figs. 2–3 of the paper.
pub fn to_dot(graph: &Cdfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(graph.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for (id, node) in graph.nodes() {
        let (shape, style) = match &node.kind {
            NodeKind::Input(_) | NodeKind::Output(_) => ("box", "rounded"),
            NodeKind::Const(_) => ("plaintext", "solid"),
            NodeKind::Store | NodeKind::Fetch | NodeKind::Delete => ("box", "filled"),
            NodeKind::Loop(_) => ("box3d", "solid"),
            _ => ("ellipse", "solid"),
        };
        let _ = writeln!(
            out,
            "  {} [label=\"{}\", shape={}, style={}];",
            id,
            sanitize(&node.kind.label()),
            shape,
            style
        );
    }
    for (_, edge) in graph.edges() {
        let is_state = graph
            .kind(edge.from.node)
            .map(|k| {
                matches!(
                    k,
                    NodeKind::Store | NodeKind::Delete
                ) || matches!(k, NodeKind::Input(name) if name.contains("mem") || name.contains("state"))
            })
            .unwrap_or(false);
        let style = if is_state { " [style=dashed]" } else { "" };
        let _ = writeln!(
            out,
            "  {} -> {} [taillabel=\"{}\", headlabel=\"{}\"]{};",
            edge.from.node, edge.to.node, edge.from.port, edge.to.port, style
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn sanitize(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BinOp;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = Cdfg::new("fir");
        let a = g.add_node(NodeKind::Input("mem".into()));
        let c = g.add_node(NodeKind::Const(3));
        let fe = g.add_node(NodeKind::Fetch);
        let mul = g.add_node(NodeKind::BinOp(BinOp::Mul));
        let out = g.add_node(NodeKind::Output("r".into()));
        g.connect(a, 0, fe, 0).unwrap();
        g.connect(c, 0, fe, 1).unwrap();
        g.connect(fe, 0, mul, 0).unwrap();
        g.connect(c, 0, mul, 1).unwrap();
        g.connect(mul, 0, out, 0).unwrap();

        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"fir\""));
        assert!(dot.contains("label=\"FE\""));
        assert!(dot.contains("label=\"*\""));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
        // One line per node and edge plus wrapper lines.
        assert!(dot.lines().count() >= g.node_count() + g.edge_count() + 2);
    }

    #[test]
    fn dot_escapes_quotes() {
        let g = Cdfg::new("weird\"name");
        let dot = to_dot(&g);
        assert!(dot.contains("weird\\\"name"));
    }
}
