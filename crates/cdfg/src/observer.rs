//! Rewrite observation: a change journal recording which nodes the graph
//! mutation primitives touched.
//!
//! The incremental rewrite engine of `fpfa-transform` needs to know *which*
//! nodes changed so that a pass only re-examines the neighbourhood of recent
//! rewrites instead of rescanning the whole graph.  Every mutation primitive
//! of [`Cdfg`](crate::Cdfg) ([`add_node`](crate::Cdfg::add_node),
//! [`connect`](crate::Cdfg::connect), [`disconnect`](crate::Cdfg::disconnect),
//! [`remove_node`](crate::Cdfg::remove_node),
//! [`replace_uses`](crate::Cdfg::replace_uses),
//! [`splice`](crate::Cdfg::splice)) reports a [`RewriteEvent`] to the graph's
//! optional [`ChangeJournal`].
//!
//! The graph hosts the concrete [`ChangeJournal`] (a plain value type, so
//! the graph stays `Clone`/`PartialEq`); drivers drain its events with
//! [`Cdfg::drain_events`](crate::Cdfg::drain_events) after every rewrite
//! step.  The [`RewriteObserver`] trait is the consumer-side integration
//! point: anything downstream of the journal — a dirty-set builder, a
//! statistics collector, a replay log — implements it and is fed either
//! event by event or wholesale via [`ChangeJournal::drain_into`].

use crate::ids::NodeId;

/// One observable change to the graph.
///
/// Events are reported at the granularity of nodes: edge insertions and
/// removals surface as [`RewriteEvent::NodeTouched`] for both endpoints, so a
/// consumer that tracks dirty nodes needs no edge bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RewriteEvent {
    /// A node was created ([`Cdfg::add_node`](crate::Cdfg::add_node) or
    /// [`Cdfg::splice`](crate::Cdfg::splice)).
    NodeAdded(NodeId),
    /// A node was deleted; its id will never refer to a live node again.
    NodeRemoved(NodeId),
    /// A node's connectivity changed (an edge on one of its ports was added
    /// or removed).
    NodeTouched(NodeId),
}

impl RewriteEvent {
    /// The node the event concerns.
    pub fn node(self) -> NodeId {
        match self {
            RewriteEvent::NodeAdded(id)
            | RewriteEvent::NodeRemoved(id)
            | RewriteEvent::NodeTouched(id) => id,
        }
    }
}

/// A sink for [`RewriteEvent`]s.
pub trait RewriteObserver {
    /// Called by the graph after every observable mutation.
    fn on_event(&mut self, event: RewriteEvent);
}

/// The default observer: an append-only log of rewrite events.
///
/// Install with [`Cdfg::enable_journal`](crate::Cdfg::enable_journal) and
/// drain with [`Cdfg::drain_events`](crate::Cdfg::drain_events).  The journal
/// deliberately performs no deduplication — consumers fold the event stream
/// into whatever dirty-set representation they need.
#[derive(Clone, Debug, Default)]
pub struct ChangeJournal {
    events: Vec<RewriteEvent>,
}

impl ChangeJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        ChangeJournal::default()
    }

    /// Number of recorded (undrained) events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Removes and returns all recorded events in emission order.
    pub fn drain(&mut self) -> Vec<RewriteEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains every pending event into another observer, in emission order.
    pub fn drain_into(&mut self, observer: &mut dyn RewriteObserver) {
        for event in self.events.drain(..) {
            observer.on_event(event);
        }
    }

    /// Drains the touched node of every pending event into `out`, in
    /// emission order — the allocation-free variant of
    /// [`ChangeJournal::drain`] for dirty-set builders that only need node
    /// ids.
    pub fn drain_nodes_into(&mut self, out: &mut Vec<NodeId>) {
        out.extend(self.events.drain(..).map(RewriteEvent::node));
    }

    /// Read-only view of the pending events.
    pub fn events(&self) -> &[RewriteEvent] {
        &self.events
    }
}

impl RewriteObserver for ChangeJournal {
    fn on_event(&mut self, event: RewriteEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_into_feeds_a_custom_observer() {
        /// A custom observer counting removals.
        #[derive(Default)]
        struct Removals(usize);
        impl RewriteObserver for Removals {
            fn on_event(&mut self, event: RewriteEvent) {
                if matches!(event, RewriteEvent::NodeRemoved(_)) {
                    self.0 += 1;
                }
            }
        }
        let mut journal = ChangeJournal::new();
        journal.on_event(RewriteEvent::NodeAdded(NodeId::from_index(0)));
        journal.on_event(RewriteEvent::NodeRemoved(NodeId::from_index(0)));
        journal.on_event(RewriteEvent::NodeRemoved(NodeId::from_index(1)));
        let mut removals = Removals::default();
        journal.drain_into(&mut removals);
        assert_eq!(removals.0, 2);
        assert!(journal.is_empty());
    }

    #[test]
    fn journal_records_and_drains() {
        let mut journal = ChangeJournal::new();
        assert!(journal.is_empty());
        journal.on_event(RewriteEvent::NodeAdded(NodeId::from_index(1)));
        journal.on_event(RewriteEvent::NodeTouched(NodeId::from_index(2)));
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.events()[0].node(), NodeId::from_index(1));
        let events = journal.drain();
        assert_eq!(events.len(), 2);
        assert!(journal.is_empty());
        assert!(journal.drain().is_empty());
    }
}
